"""X1 -- extension benches: the Section 6 future-work features, measured.

Not tied to a table in the paper's evaluation; these quantify the
Section 6 applications this reproduction implements beyond the paper:

* paired-table signing (the Broder-flavoured tuning of Section 6.1);
* chunked signing and O(chunk) incremental re-signing;
* the signature-validated client cache (Section 6.2);
* signature-cheap bucket eviction ([LSS02], Section 6.2).
"""

import time

import numpy as np
from repro.backup import BackupEngine, EvictionManager, serialize_bucket
from repro.sdds import Bucket, CachedClient, LHFile, Record
from repro.sig import ChunkedSigner, PairedTableSigner, make_scheme
from repro.sim import SimDisk
from repro.workloads import make_page, make_records


def _best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_paired_table_signer(benchmark):
    scheme = make_scheme(f=8, n=2)
    signer = PairedTableSigner(scheme)
    page = scheme.to_symbols(make_page("random", 254))
    benchmark(signer.sign, page)


def test_x1_fast_signers_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    scheme8 = make_scheme(f=8, n=2)
    paired = PairedTableSigner(scheme8)
    page8 = scheme8.to_symbols(make_page("random", 254))
    t_plain8 = _best_of(lambda: scheme8.sign(page8), repeats=30)
    t_paired = _best_of(lambda: paired.sign(page8), repeats=30)

    scheme16 = make_scheme(f=16, n=2)
    chunked = ChunkedSigner(scheme16, chunk_symbols=8192)
    big = scheme16.to_symbols(make_page("random", 256 * 1024))
    t_whole = _best_of(lambda: scheme16.sign(big, False), repeats=5)
    t_chunked = _best_of(lambda: chunked.sign(big), repeats=5)
    chunks = chunked.chunk_signatures(big)
    new_chunk = np.arange(8192, dtype=np.int64) % (1 << 16)
    t_rechunk = _best_of(lambda: chunked.resign(chunks, 3, new_chunk), repeats=5)

    rows = [
        ["GF(2^8) plain, 254 B page", round(t_plain8 * 1e6, 2)],
        ["GF(2^8) paired-table, 254 B page", round(t_paired * 1e6, 2)],
        ["GF(2^16) whole-page sign, 256 KB", round(t_whole * 1e6, 1)],
        ["GF(2^16) chunked sign, 256 KB", round(t_chunked * 1e6, 1)],
        ["GF(2^16) re-sign 1 of 16 chunks", round(t_rechunk * 1e6, 1)],
    ]
    report_table(
        "X1a: fast-signing extensions (us)",
        ["path", "us"],
        rows,
        notes="paired tables halve gathers (Broder-style, Sec. 6.1); "
              "chunk caches make localized edits O(chunk)",
    )
    # The incremental chunk path must beat re-signing everything.
    assert t_rechunk < t_whole


def test_x1_cache_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    scheme = make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=256)
    loader = file.client("loader")
    records = make_records(100, 2048, seed=31)
    for record in records:
        loader.insert(record)

    plain = file.client("plain")
    cached = CachedClient(file.client("cached"), capacity=256)
    # Warm the cache.
    for record in records:
        cached.get(record.key)

    file.network.reset_stats()
    for record in records:
        plain.search(record.key)
    plain_bytes = file.network.stats.bytes

    file.network.reset_stats()
    for record in records:
        cached.get(record.key)
    cached_bytes = file.network.stats.bytes

    rows = [
        ["plain client, 100 re-reads of 2 KB records", plain_bytes],
        ["signature-validated cache, same reads", cached_bytes],
        ["bytes saved", plain_bytes - cached_bytes],
    ]
    report_table(
        "X1b: client cache coherence by 4 B signatures (network bytes)",
        ["scenario", "bytes"],
        rows,
        notes=f"hit rate {cached.stats.hits}/{cached.stats.validations}; "
              "every hit exchanged ~44 B instead of a 2 KB record",
    )
    assert cached_bytes < plain_bytes / 10
    assert cached.stats.hits == cached.stats.validations  # nothing changed


def test_x1_eviction_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    scheme = make_scheme(f=16, n=2)
    engine = BackupEngine(scheme, SimDisk(), page_bytes=1024)
    manager = EvictionManager(engine, ram_budget_bytes=1 << 22)
    bucket = Bucket(1)
    for i in range(200):
        bucket.insert(Record(i, make_page("ascii", 200, seed=i)))
    image_pages = (len(serialize_bucket(bucket)) + 1023) // 1024
    manager.add(bucket)
    manager.evict(1)
    cold_writes = manager.stats.pages_written
    restored = manager.access(1)
    manager.evict(1)  # unchanged: free
    clean_writes = manager.stats.pages_written - cold_writes
    restored = manager.access(1)
    restored.update(5, b"z" * 200)
    manager.evict(1)
    dirty_writes = manager.stats.pages_written - cold_writes - clean_writes
    rows = [
        ["first eviction (cold)", cold_writes, image_pages],
        ["re-eviction, unchanged bucket", clean_writes, image_pages],
        ["re-eviction after 1 record update", dirty_writes, image_pages],
    ]
    report_table(
        "X1c: bucket eviction page writes ([LSS02] via signature maps)",
        ["event", "pages written", "bucket pages"],
        rows,
        notes="signatures make repeated evictions of mostly-clean "
              "buckets nearly free",
    )
    assert clean_writes == 0
    assert 0 < dirty_writes <= 2
