"""E5 -- bucket backup: pages written, page-size trade-off, time model.

Paper (Sections 2.1, 5.2): backups should move only the changed parts;
page size trades signature-map size and calculus overhead (smaller
pages) against transfer volume (bigger pages), with the practical range
512 B - 64 KB.  The decisive constants: signature calculus 20-30 ms/MB
vs RAM-to-disk transfer ~300 ms/MB.

Sweeps:

* dirty-fraction sweep at the paper's 16 KB pages -- pages written and
  modeled total time for the signature engine vs full copy vs dirty-bit;
* page-size sweep at a fixed 2% dirty fraction -- bytes written and map
  size per page size (the Section 2.1 trade-off).
"""

import numpy as np
from repro.backup import BackupEngine
from repro.sig import make_scheme
from repro.sim import DiskModel, SimClock, SimDisk
from repro.workloads import make_page

MB = 1 << 20
BUCKET_BYTES = 4 * MB


def make_engine(page_bytes):
    scheme = make_scheme(f=16, n=2)
    clock = SimClock()
    disk = SimDisk(clock, model=DiskModel(seek_time=0.0))
    return BackupEngine(scheme, disk, page_bytes=page_bytes)


def dirty_some(image, fraction, rng, page_bytes):
    """Flip one byte in ``fraction`` of the pages."""
    pages = len(image) // page_bytes
    n_dirty = max(0, int(round(pages * fraction)))
    chosen = rng.choice(pages, size=n_dirty, replace=False) if n_dirty else []
    for page in chosen:
        image[page * page_bytes + 7] ^= 0xFF
    return n_dirty


def test_incremental_backup_16kb(benchmark):
    engine = make_engine(16 * 1024)
    image = bytearray(make_page("random", BUCKET_BYTES, seed=5))
    engine.backup("vol", bytes(image))
    rng = np.random.default_rng(6)
    dirty_some(image, 0.02, rng, 16 * 1024)
    frozen = bytes(image)
    benchmark(engine.backup, "vol", frozen)


def test_e5_dirty_fraction_sweep(benchmark, report_table):
    engine = make_engine(16 * 1024)
    image = bytearray(make_page("random", BUCKET_BYTES, seed=5))
    first = engine.backup("vol", bytes(image))
    benchmark.pedantic(lambda: None, rounds=1)  # register with the harness

    full_copy_seconds = first.write_seconds
    rows = []
    rng = np.random.default_rng(7)
    for fraction in (0.0, 0.01, 0.05, 0.25, 1.0):
        fresh = bytearray(make_page("random", BUCKET_BYTES, seed=5))
        engine.backup("vol", bytes(fresh))  # resync the map
        expected_dirty = dirty_some(fresh, fraction, rng, 16 * 1024)
        report = engine.backup("vol", bytes(fresh))
        assert report.pages_written == expected_dirty
        rows.append([
            f"{fraction:.0%}",
            report.pages_written,
            report.pages_total,
            round(report.sig_seconds * 1e3, 1),
            round(report.write_seconds * 1e3, 1),
            round(report.total_seconds * 1e3, 1),
            round(full_copy_seconds * 1e3, 1),
        ])
    report_table(
        "E5a: 4 MB bucket, 16 KB pages -- dirty-fraction sweep (model time)",
        ["dirty", "written", "pages", "sig ms", "write ms", "total ms",
         "full-copy ms"],
        rows,
        notes="paper constants: sig 25 ms/MB vs disk 300 ms/MB -- "
              "signatures win whenever < ~92% of pages changed",
    )
    # Shape: at low dirty fractions the signature pass beats a full copy.
    low_dirty_total = float(rows[1][5])
    assert low_dirty_total < full_copy_seconds * 1e3 / 5


def test_e5_page_size_sweep(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    rng = np.random.default_rng(8)
    for page_bytes in (512, 2048, 16 * 1024, 64 * 1024):
        engine = make_engine(page_bytes)
        image = bytearray(make_page("random", BUCKET_BYTES, seed=9))
        engine.backup("vol", bytes(image))
        # A fixed set of 40 scattered byte changes, independent of page size.
        positions = rng.choice(BUCKET_BYTES, size=40, replace=False)
        for position in positions:
            image[position] ^= 1
        report = engine.backup("vol", bytes(image))
        smap = engine.signature_map("vol")
        rows.append([
            f"{page_bytes // 1024}K" if page_bytes >= 1024 else f"{page_bytes}B",
            report.pages_written,
            f"{report.bytes_written // 1024} KB",
            f"{smap.map_bytes} B",
            round(report.total_seconds * 1e3, 1),
        ])
        rng = np.random.default_rng(8)  # same positions for every size
    report_table(
        "E5b: 40 scattered byte changes in 4 MB -- page-size trade-off",
        ["page size", "pages written", "bytes written", "map size",
         "total ms"],
        rows,
        notes="Section 2.1: smaller pages minimize transfer but grow the "
              "map and per-page overhead; 512 B - 64 KB is the practical range",
    )
    # Shape: smaller pages write fewer bytes for scattered changes.
    assert int(rows[0][2].split()[0]) <= int(rows[-1][2].split()[0])
