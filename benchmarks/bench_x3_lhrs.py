"""X3 -- LH*RS availability economics and the stored-signature ablation.

Two design studies DESIGN.md calls out:

* the cost structure of the LH*RS reliability group (Section 6.2):
  parity maintenance per update (delta shipping), the 4-byte signature
  audit, and full k-failure recovery;
* the Section 2.2 stored-signature variant: storing 4 B per record
  moves all signature computation to the clients -- measured as the
  server-side signature computations per blind update.
"""

import numpy as np

from repro.parity import LHRSStore
from repro.sdds import LHFile, UpdateStatus
from repro.sig import make_scheme
from repro.workloads import make_records

RECORD_BYTES = 256


def build_store(records=120, seed=4):
    store = LHRSStore(make_scheme(f=16, n=2), 4, 2, record_bytes=RECORD_BYTES)
    rng = np.random.default_rng(seed)
    for key in range(records):
        store.insert(key, bytes(
            rng.integers(0, 256, RECORD_BYTES - 4, dtype=np.uint8)
        ))
    return store


def test_lhrs_update(benchmark):
    store = build_store()
    counter = {"i": 0}

    def run():
        counter["i"] += 1
        store.update(7, bytes([counter["i"] % 256]) * (RECORD_BYTES - 4))

    benchmark(run)


def test_lhrs_recovery(benchmark):
    def run():
        store = build_store(records=60)
        store.fail_bucket(1)
        store.fail_bucket(3)
        return store.recover()

    restored = benchmark.pedantic(run, rounds=3)
    assert restored == 30  # keys of two of four buckets


def test_x3_report(benchmark, report_table):
    import time

    benchmark.pedantic(lambda: None, rounds=1)
    store = build_store()

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best * 1e3

    t_update = best_of(lambda: store.update(
        3, bytes([7]) * (RECORD_BYTES - 4)
    ))
    t_audit = best_of(lambda: store.audit_rank(0))

    def recover_two():
        fresh = build_store(records=60)
        fresh.fail_bucket(0)
        fresh.fail_bucket(2)
        fresh.recover()

    t_recover = best_of(recover_two, repeats=3)
    rows = [
        ["record update incl. 2 parity deltas", round(t_update, 3)],
        ["signature audit of one rank (6 sigs)", round(t_audit, 3)],
        ["full recovery of 2 of 4+2 buckets (60 recs)", round(t_recover, 2)],
    ]
    report_table(
        "X3a: LH*RS reliability-group operation costs (ms, wall clock)",
        ["operation", "ms"],
        rows,
        notes="parity servers receive only coefficient-scaled deltas; "
              "the audit exchanges 4 B signatures, never records",
    )
    assert store.audit() == []


def test_x3_stored_signature_ablation(benchmark, report_table):
    """The Section 2.2 variant ablation: 4 B/record buys zero server-side
    signature computations on blind updates."""
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for stored in (False, True):
        scheme = make_scheme(f=16, n=2)
        file = LHFile(scheme, capacity_records=256, store_signatures=stored)
        client = file.client()
        records = make_records(100, 1024, seed=5)
        for record in records:
            client.insert(record)
        before = sum(s.stats.sig_computations for s in file.servers)
        for record in records:
            result = client.update_blind(record.key, b"Z" * 1024)
            assert result.status == UpdateStatus.APPLIED
        server_sigs = sum(
            s.stats.sig_computations for s in file.servers
        ) - before
        rows.append([
            "stored (4 B/record)" if stored else "computed on the fly",
            server_sigs,
            100,
        ])
    report_table(
        "X3b: server signature computations for 100 blind updates",
        ["variant", "server sig computations", "updates"],
        rows,
        notes="storing the signature moves the calculus entirely to the "
              "clients -- 'entirely parallel among the concurrent clients'",
    )
    assert rows[1][1] == 0      # stored: zero server-side computations
    assert rows[0][1] >= 100    # on the fly: at least one per update
