"""E3 -- GF(2^16) vs GF(2^8): the field-choice experiment.

Paper (Section 5.2): GF(2^16) taxes the cache more (larger tables) but
halves the number of field operations per byte; measurements showed
GF(2^16) "slightly faster", which decided the production configuration.

We sign the same bytes with equal-strength schemes -- both yield 4-byte
signatures and 2^-32 collision probability:

* GF(2^16), n = 2 (two double-byte components), and
* GF(2^8),  n = 4 (four byte components).

Shape check: GF(2^16) is at least as fast (in the vectorized kernel the
effect is stronger than the paper's "slightly": half the gather volume).
"""

import time

from repro.sig import make_scheme
from repro.workloads import make_page

DATA = make_page("random", 64 * 1024, seed=3)


def _ms_per_mb(scheme, data, repeats=30):
    # Pages must respect each field's certainty bound.
    page_symbols = min(scheme.max_page_symbols, 8192)
    symbols = scheme.to_symbols(data)
    pages = [symbols[i:i + page_symbols]
             for i in range(0, symbols.size, page_symbols)]
    start = time.perf_counter()
    for _ in range(repeats):
        for page in pages:
            scheme.sign(page)
    elapsed = time.perf_counter() - start
    return elapsed / repeats / (len(data) / (1 << 20)) * 1e3


def test_gf16_n2(benchmark):
    scheme = make_scheme(f=16, n=2)
    symbols = scheme.to_symbols(DATA[:16 * 1024])
    benchmark(scheme.sign, symbols)


def test_gf8_n4(benchmark):
    scheme = make_scheme(f=8, n=4)
    symbols = scheme.to_symbols(DATA[:254])  # within the f=8 page bound
    benchmark(scheme.sign, symbols)


def test_e3_report(benchmark, report_table):
    gf16 = make_scheme(f=16, n=2)
    gf8 = make_scheme(f=8, n=4)
    benchmark(gf16.sign, gf16.to_symbols(DATA[:16 * 1024]))

    ms16 = _ms_per_mb(gf16, DATA)
    ms8 = _ms_per_mb(gf8, DATA)
    rows = [
        ["GF(2^16), n=2", 2, "128 KiB", round(ms16, 2)],
        ["GF(2^8),  n=4", 4, "0.75 KiB", round(ms8, 2)],
    ]
    report_table(
        "E3: same 4-byte signature strength, different symbol width (ms/MB)",
        ["field", "components", "table size", "ms/MB"],
        rows,
        notes=f"GF(2^16)/GF(2^8) speed ratio: {ms8 / ms16:.2f}x "
              "(paper: GF(2^16) slightly faster; vectorized Python "
              "amplifies the per-symbol-count effect)",
    )
    # Shape: GF(2^16) at least as fast as GF(2^8) for equal strength.
    assert ms16 <= ms8 * 1.1
