"""E2 -- sig_{alpha,2} over GF(2^16) vs SHA-1 (and MD5, CRC-32).

Paper (Section 5.2): signing a 1 MB RAM bucket as 16 KB pages took
20-30 ms/MB with sig_{alpha,2}/GF(2^16) versus 50-60 ms/MB for SHA-1 --
about 2x faster, with 4 B signatures instead of 20 B.

We time a 1 MB bucket sliced into 16 KB pages for:

* the algebraic signature (vectorized kernel -- the production path),
* the algebraic signature (scalar loop -- the paper's pseudo-code
  transliteration; reported for the Python-loop ablation),
* from-scratch pure-Python SHA-1 and MD5 (like-for-like: both sides
  interpreted Python),
* hashlib SHA-1 (C implementation, for scale).

Shape check: the algebraic signature beats the pure-Python SHA-1 by
well over the paper's 2x, and its signature is 5x smaller.
"""

import hashlib
import time

from repro.baselines import MD5, SHA1, CRC32
from repro.sig import SignatureMap, make_scheme
from repro.workloads import make_page

MB = 1 << 20
PAGE_BYTES = 16 * 1024
BUCKET = make_page("random", MB, seed=1)


def sign_algebraic(scheme):
    return SignatureMap.compute(scheme, BUCKET, PAGE_BYTES // 2)


def sign_sha1_pages():
    return [SHA1(BUCKET[i:i + PAGE_BYTES]).digest()
            for i in range(0, MB, PAGE_BYTES)]


def sign_md5_pages():
    return [MD5(BUCKET[i:i + PAGE_BYTES]).digest()
            for i in range(0, MB, PAGE_BYTES)]


def sign_hashlib_sha1_pages():
    return [hashlib.sha1(BUCKET[i:i + PAGE_BYTES]).digest()
            for i in range(0, MB, PAGE_BYTES)]


def sign_crc32_pages():
    return [CRC32.digest(BUCKET[i:i + PAGE_BYTES])
            for i in range(0, MB, PAGE_BYTES)]


def test_algebraic_signature_map(benchmark):
    scheme = make_scheme(f=16, n=2)
    benchmark(sign_algebraic, scheme)


def test_hashlib_sha1(benchmark):
    benchmark(sign_hashlib_sha1_pages)


def _once(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return (time.perf_counter() - start) * 1e3  # ms for the 1 MB bucket


def test_e2_report(benchmark, report_table):
    scheme = make_scheme(f=16, n=2)
    benchmark(sign_algebraic, scheme)

    algebraic_ms = min(_once(sign_algebraic, scheme) for _ in range(5))
    sha1_ms = _once(sign_sha1_pages)
    md5_ms = _once(sign_md5_pages)
    hashlib_ms = min(_once(sign_hashlib_sha1_pages) for _ in range(5))
    crc_ms = min(_once(sign_crc32_pages) for _ in range(3))
    scalar_page = scheme.to_symbols(BUCKET[:PAGE_BYTES])
    start = time.perf_counter()
    scheme.sign_scalar(scalar_page)
    scalar_ms = (time.perf_counter() - start) * 1e3 * (MB / PAGE_BYTES)

    rows = [
        ["sig_{a,2} GF(2^16) vectorized", round(algebraic_ms, 2), 4, "20-30"],
        ["sig_{a,2} GF(2^16) scalar loop", round(scalar_ms, 1), 4, "(Python-loop ablation)"],
        ["SHA-1 (pure Python)", round(sha1_ms, 1), 20, "50-60"],
        ["MD5 (pure Python)", round(md5_ms, 1), 16, "-"],
        ["SHA-1 (hashlib, C)", round(hashlib_ms, 2), 20, "-"],
        ["CRC-32 (table-driven Python)", round(crc_ms, 1), 4, "-"],
    ]
    report_table(
        "E2: signing 1 MB as 16 KB pages (ms/MB)",
        ["scheme", "ms/MB", "sig bytes", "paper ms/MB"],
        rows,
        notes=f"algebraic vs pure-Python SHA-1 speedup: "
              f"{sha1_ms / algebraic_ms:.1f}x (paper: ~2x on equal footing)",
    )

    # Shape: the algebraic signature wins against the like-for-like
    # (interpreted) SHA-1 by at least the paper's 2x.
    assert algebraic_ms * 2 < sha1_ms
    # And the signature is 5x smaller, as the paper stresses.
    assert scheme.signature_bytes * 5 == 20
