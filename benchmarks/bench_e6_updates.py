"""E6 -- record updates: true vs pseudo, normal vs blind, 100 B vs 1 KB.

Paper (Section 5.2 / [H03]), 1.8 GHz P4, per record:

| record | operation            | true update | pseudo-update | savings |
|--------|----------------------|-------------|---------------|---------|
| 1 KB   | normal (excl. net)   | 0.614 ms    | 0.043 ms      | ~90%    |
| 1 KB   | normal (incl. 0.237 ms transfer) |      |        | ~70%    |
| 1 KB   | blind  (incl. net)   | 0.8372 ms   | 0.2707 ms     | ~70%    |
| 100 B  | normal (incl. 0.22 ms search)    | 0.63 ms | 0.25 ms | ~50% |
| 100 B  | blind                | 0.51 ms     | 0.24 ms       | ~50%    |

We run the same protocol over the simulated SDDS with the network model
calibrated to the paper's transfer times, and report modeled ms per
operation plus the measured savings.  Shape checks: pseudo-updates save
60-95% on 1 KB records and 30-70% on 100 B records; blind pseudo-updates
ship no record in either direction.
"""

from repro.sdds import LHFile, UpdateStatus
from repro.sig import make_scheme
from repro.sim import NetworkModel, SimNetwork
from repro.workloads import make_records

#: Calibrated so one 1 KB record transfer costs ~0.237 ms (paper).
NETWORK = dict(latency=150e-6, bandwidth=100e6 / 8)


def build(value_bytes, n_records=200, store_signatures=False):
    scheme = make_scheme(f=16, n=2)
    network = SimNetwork(model=NetworkModel(**NETWORK))
    file = LHFile(scheme, capacity_records=max(64, n_records),
                  network=network, store_signatures=store_signatures)
    client = file.client()
    records = make_records(n_records, value_bytes, seed=13)
    for record in records:
        client.insert(record)
    return file, client, records


def _measure(client, records, values, operation):
    """Average modeled ms per op (clock delta), values prefetched.

    The application already holds the before-image / new value
    (prefetched outside the timed region), matching the paper's setup
    where the update legs are timed separately from the key search.
    """
    clock = client.network.clock
    total = 0.0
    for record in records:
        start = clock.now
        operation(client, record, values)
        total += clock.now - start
    return total / len(records) * 1e3


def true_normal(client, record, values):
    before = values[record.key]
    after = bytes([(before[0] + 1) % 256]) + before[1:]
    result = client.update_normal(record.key, before, after)
    assert result.status == UpdateStatus.APPLIED
    values[record.key] = after


def pseudo_normal(client, record, values):
    before = values[record.key]
    result = client.update_normal(record.key, before, before)
    assert result.status == UpdateStatus.PSEUDO


def true_blind(client, record, values):
    current = values[record.key]
    after = bytes([(current[0] + 1) % 256]) + current[1:]
    result = client.update_blind(record.key, after)
    assert result.status == UpdateStatus.APPLIED
    values[record.key] = after


def pseudo_blind(client, record, values):
    result = client.update_blind(record.key, values[record.key])
    assert result.status == UpdateStatus.PSEUDO


def test_true_normal_update_1kb(benchmark):
    file, client, records = build(1024, n_records=50)
    state = {"value": client.search(records[0].key).record.value}

    def run():
        after = bytes([(state["value"][0] + 1) % 256]) + state["value"][1:]
        client.update_normal(records[0].key, state["value"], after)
        state["value"] = after

    benchmark(run)


def test_pseudo_normal_update_1kb(benchmark):
    file, client, records = build(1024, n_records=50)
    value = client.search(records[0].key).record.value
    benchmark(client.update_normal, records[0].key, value, value)


def test_e6_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    shapes = {}
    for value_bytes, label in ((1024, "1 KB"), (100, "100 B")):
        file, client, records = build(value_bytes)
        sample = records[:100]
        values = {r.key: client.search(r.key).record.value for r in sample}
        # 'excl. search': the update legs alone (the paper's numbers
        # excluding the 0.237/0.22 ms network access to the record).
        excl_true = _measure(client, sample, values, true_normal)
        excl_pseudo = _measure(client, sample, values, pseudo_normal)
        t_true_blind = _measure(client, sample, values, true_blind)
        t_pseudo_blind = _measure(client, sample, values, pseudo_blind)
        clock = client.network.clock
        start = clock.now
        for record in sample:
            client.search(record.key)
        t_search = (clock.now - start) / len(sample) * 1e3
        incl_true = excl_true + t_search
        incl_pseudo = excl_pseudo + t_search
        savings_excl = 1 - excl_pseudo / excl_true
        savings_incl = 1 - incl_pseudo / incl_true
        savings_blind = 1 - t_pseudo_blind / t_true_blind
        shapes[label] = (savings_excl, savings_incl, savings_blind)
        rows += [
            [label, "normal excl. search", round(excl_true, 3),
             round(excl_pseudo, 3), f"{savings_excl:.0%}",
             "0.614/0.043 ms, ~90%" if label == "1 KB" else "-"],
            [label, "normal incl. search", round(incl_true, 3),
             round(incl_pseudo, 3), f"{savings_incl:.0%}",
             "~70%" if label == "1 KB" else "0.63/0.25 ms, ~50%"],
            [label, "blind", round(t_true_blind, 3),
             round(t_pseudo_blind, 3), f"{savings_blind:.0%}",
             "0.8372/0.2707 ms, ~70%" if label == "1 KB"
             else "0.51/0.24 ms, ~50%"],
        ]
    report_table(
        "E6: update timings (modeled ms/op, network calibrated to the paper)",
        ["record", "operation", "true", "pseudo", "savings", "paper"],
        rows,
    )
    # Shape: pseudo-update savings largest for big records excl. search,
    # smaller for 100 B records -- the paper's ordering.
    excl_1k, incl_1k, blind_1k = shapes["1 KB"]
    excl_100, incl_100, blind_100 = shapes["100 B"]
    assert excl_1k > 0.60                  # paper: ~90%
    assert incl_1k > 0.30                  # paper: ~70%
    assert blind_1k > 0.30                 # paper: ~70%
    assert incl_100 > 0.15                 # paper: ~50%
    assert excl_1k > incl_1k               # adding fixed costs dilutes savings
    assert incl_1k > incl_100              # bigger records save more


def test_e6_traffic_accounting(benchmark, report_table, obs_registry):
    """Bytes shipped per operation: the mechanism behind the savings.

    Byte counts come from the obs metrics registry (``net.bytes``
    series), not the network's own TrafficStats -- the two must agree.
    """
    benchmark.pedantic(lambda: None, rounds=1)
    file, client, records = build(1024, n_records=20)
    record = records[0]
    value = client.search(record.key).record.value

    def bytes_of(operation):
        before = obs_registry.total("net.bytes")
        operation()
        after = obs_registry.total("net.bytes")
        assert after == file.network.stats.bytes  # registry mirrors stats
        return after - before

    rows = [
        ["normal pseudo", bytes_of(
            lambda: client.update_normal(record.key, value, value))],
        ["blind pseudo", bytes_of(
            lambda: client.update_blind(record.key, value))],
        ["normal true", bytes_of(
            lambda: client.update_normal(record.key, value, b"X" * 1024))],
        ["blind true", bytes_of(
            lambda: client.update_blind(record.key, b"Y" * 1024))],
    ]
    report_table(
        "E6b: network bytes per update operation (1 KB record)",
        ["operation", "bytes shipped"],
        rows,
        notes="normal pseudo = 0 (terminates at the client); "
              "blind pseudo ships one 4 B signature instead of 1 KB",
    )
    assert rows[0][1] == 0
    assert rows[1][1] < 100
    assert rows[2][1] > 1024
