"""Benchmark-harness plumbing: collect result tables, print them at the end.

Each E* benchmark registers the rows/series the paper reports through
:func:`report`; pytest's terminal summary then prints every table after
the pytest-benchmark timing output, so ``pytest benchmarks/
--benchmark-only`` yields both wall-clock numbers and the paper-shaped
tables in one run.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table

_TABLES: list[str] = []


def report(title: str, headers, rows, notes: str | None = None) -> None:
    """Register one experiment table for the end-of-run summary."""
    text = format_table(headers, rows, title=title)
    if notes:
        text += f"\n  {notes}"
    _TABLES.append(text)


@pytest.fixture(scope="session")
def report_table():
    """Fixture handle for the table registry."""
    return report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
