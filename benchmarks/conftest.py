"""Benchmark-harness plumbing: collect result tables, print them at the end.

Each E* benchmark registers the rows/series the paper reports through
:func:`report`; pytest's terminal summary then prints every table after
the pytest-benchmark timing output, so ``pytest benchmarks/
--benchmark-only`` yields both wall-clock numbers and the paper-shaped
tables in one run.

Every benchmark also runs under a fresh :class:`~repro.obs.MetricsRegistry`
(the autouse :func:`obs_registry` fixture), so instrumented subsystems
emit into a per-test registry; non-empty snapshots are printed as one
``obs`` JSON block per test in the summary, comparable across runs.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import format_table
from repro.obs import MetricsRegistry, set_registry

_TABLES: list[str] = []
_OBS: dict[str, dict] = {}


@pytest.fixture(autouse=True)
def obs_registry(request):
    """Fresh per-test metrics registry; its snapshot joins the summary."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)
    snapshot = registry.snapshot()
    if snapshot:
        _OBS[request.node.name] = snapshot


def report(title: str, headers, rows, notes: str | None = None) -> None:
    """Register one experiment table for the end-of-run summary."""
    text = format_table(headers, rows, title=title)
    if notes:
        text += f"\n  {notes}"
    _TABLES.append(text)


@pytest.fixture(scope="session")
def report_table():
    """Fixture handle for the table registry."""
    return report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _TABLES:
        terminalreporter.write_sep("=", "paper reproduction tables")
        for text in _TABLES:
            terminalreporter.write_line("")
            for line in text.splitlines():
                terminalreporter.write_line(line)
        terminalreporter.write_line("")
    if _OBS:
        terminalreporter.write_sep("=", "obs metric snapshots")
        for name, snapshot in _OBS.items():
            terminalreporter.write_line(
                f"obs {name} {json.dumps(snapshot, sort_keys=True)}"
            )
        terminalreporter.write_line("")
