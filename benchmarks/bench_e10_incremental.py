"""E10 -- the signature algebra as an accelerator, plus tuning ablations.

Three design choices the paper calls out, measured:

* Proposition 3 -- re-signing an updated page from the delta's
  signature: O(|delta|) field work instead of O(|page|).  This backs the
  record-update fast path and the RAID-5 log verification of Sec. 4.1.
* Proposition 6 tuning -- interpreting page symbols as logarithms saves
  a table lookup per symbol (Sec. 5.1; the paper's Broder-style
  follow-up promises 2-3x more).
* Scalar vs vectorized -- the Python-specific ablation: the paper's
  symbol-at-a-time loop transliterated vs the numpy kernels, quantifying
  the "easy but slow GF loops" caveat of this reproduction.
"""

import time

import numpy as np
from repro.gf import GF
from repro.sig import apply_update, log_interpretation_scheme, make_scheme
from repro.sig.twisted import sign_log_interpreted_fast
from repro.workloads import make_page

SCHEME = make_scheme(f=16, n=2)


def make_case(page_bytes, delta_bytes, seed=0):
    rng = np.random.default_rng(seed)
    page = bytearray(make_page("random", page_bytes, seed=seed))
    offset = int(rng.integers(0, (page_bytes - delta_bytes) // 2)) * 2
    before_region = bytes(page[offset:offset + delta_bytes])
    after_region = bytes(rng.integers(0, 256, delta_bytes, dtype=np.uint8))
    updated = bytes(page[:offset]) + after_region + bytes(page[offset + delta_bytes:])
    return bytes(page), updated, before_region, after_region, offset


def test_incremental_resign_64kb(benchmark):
    page, updated, before, after, offset = make_case(64 * 1024, 16)
    base_sig = SCHEME.sign(page, strict=False)
    result = benchmark(apply_update, SCHEME, base_sig, before, after, offset // 2)
    assert result == SCHEME.sign(updated, strict=False)


def test_full_rescan_64kb(benchmark):
    _page, updated, *_ = make_case(64 * 1024, 16)
    benchmark(SCHEME.sign, updated, False)


def _best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e10_prop3_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for page_bytes in (1024, 16 * 1024, 64 * 1024):
        page, updated, before, after, offset = make_case(page_bytes, 16)
        base_sig = SCHEME.sign(page, strict=False)
        t_incremental = _best_of(
            lambda: apply_update(SCHEME, base_sig, before, after, offset // 2)
        )
        t_rescan = _best_of(lambda: SCHEME.sign(updated, strict=False))
        assert apply_update(SCHEME, base_sig, before, after, offset // 2) == \
            SCHEME.sign(updated, strict=False)
        rows.append([
            f"{page_bytes // 1024} KB", 16,
            round(t_incremental * 1e6, 2),
            round(t_rescan * 1e6, 2),
            round(t_rescan / t_incremental, 1),
        ])
    report_table(
        "E10a: Prop 3 incremental re-sign vs full rescan (16 B delta)",
        ["page", "delta B", "incremental us", "rescan us", "speedup"],
        rows,
        notes="incremental cost is O(|delta|): independent of page size",
    )
    # Shape: the speedup grows with page size and is large for 64 KB.
    assert rows[-1][4] > 5
    assert rows[-1][4] > rows[0][4]


def test_e10_twisted_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    gf16 = GF(16)
    twisted = log_interpretation_scheme(gf16, n=2)
    page = twisted.to_symbols  # noqa: F841  (document the phi path exists)
    symbols = np.asarray(
        np.random.default_rng(1).integers(0, gf16.size, 32768), dtype=np.int64
    )
    t_plain = _best_of(lambda: SCHEME.sign(symbols))
    t_fast = _best_of(lambda: sign_log_interpreted_fast(twisted, symbols))
    rows = [
        ["plain table mult (log + antilog gathers)", round(t_plain * 1e6, 1)],
        ["log-interpretation (antilog gather only)", round(t_fast * 1e6, 1)],
    ]
    report_table(
        "E10b: Proposition 6 tuning on a 64 KB page (us)",
        ["path", "us/page"],
        rows,
        notes=f"speedup {t_plain / t_fast:.2f}x -- one gather per symbol "
              "saved (Sec. 5.1; Broder-style tuning promises 2-3x more)",
    )
    assert t_fast < t_plain * 1.15  # at least not slower


def test_e10_scalar_vs_vectorized(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    page = make_page("random", 16 * 1024, seed=2)
    symbols = SCHEME.to_symbols(page)
    t_vec = _best_of(lambda: SCHEME.sign(symbols))
    start = time.perf_counter()
    SCHEME.sign_scalar(symbols)
    t_scalar = time.perf_counter() - start
    rows = [
        ["paper's loop, transliterated (pure Python)",
         round(t_scalar * 1e3, 2), round(t_scalar / (16 / 1024) * 1e3, 1)],
        ["numpy gather/XOR-reduce kernel",
         round(t_vec * 1e3, 3), round(t_vec / (16 / 1024) * 1e3, 2)],
    ]
    report_table(
        "E10c: scalar vs vectorized signing, 16 KB page (ablation)",
        ["implementation", "ms/page", "ms/MB"],
        rows,
        notes="the Python-loop penalty the reproduction band warned about: "
              f"{t_scalar / t_vec:.0f}x; all timing comparisons in E1-E7 "
              "therefore use the vectorized path on both sides",
    )
    assert t_vec * 10 < t_scalar
