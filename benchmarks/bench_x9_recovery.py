"""X9 -- parallel certified recovery and group-commit log writes.

PR 9's tentpole: the certification scan of :class:`repro.store.SegmentedLog`
is sharded by segment across the shared-memory process signing backend
(:mod:`repro.store.recovery`) -- Proposition 1's per-frame seal checks
are embarrassingly parallel because each seal is independent of batch
composition -- and the log's write path gains a group-commit mode that
coalesces bursts of frames into one OS write + one flush.

Two sweeps:

* **scan workers** -- a multi-segment faulted log (mid-log bit rot,
  torn tail) is scanned with 1/2/4 workers; every worker count must
  produce a byte-identical partition (certified frames, corrupt
  regions, torn-tail start) before it is timed.  Speedup appears only
  on multi-core hosts; exactness is asserted everywhere.
* **flush mode** -- bursts of pre-sealed frames are appended under
  ``flush="frame"`` vs ``flush="group"``; both modes must lay down
  byte-identical segment files at identical offsets, and the grouped
  path must beat the per-frame path at large bursts.
"""

import os
import shutil
import time

import numpy as np

from repro.sig import make_scheme
from repro.store import SegmentedLog
from repro.store import frames as fr

SEED = 20040301
VOLUME = "x9"
SEGMENT_BYTES = 256 * 1024
SCAN_FRAME_BYTES = 16 * 1024
SCAN_FRAMES = 256                # ~4 MiB log, ~17 segments
SCAN_WORKERS = (1, 2, 4)
GROUP_FRAME_BYTES = 256
GROUP_FRAMES = 512
GROUP_BURSTS = (1, 8, 32, 128)


def _build_faulted_log(directory) -> SegmentedLog:
    """A multi-segment log with mid-log rot and a torn tail."""
    rng = np.random.default_rng(SEED)
    log = SegmentedLog(directory, make_scheme(),
                       segment_bytes=SEGMENT_BYTES, flush="group")
    log.append_many([
        fr.Frame(fr.KIND_PAGE, seq, VOLUME,
                 rng.integers(0, 256, size=SCAN_FRAME_BYTES,
                              dtype=np.uint8).tobytes())
        for seq in range(SCAN_FRAMES)
    ])
    log.corrupt_bytes(log.total_bytes // 2, b"\xff")
    log.crash_cut(log.total_bytes - SCAN_FRAME_BYTES // 4)
    return log


def _fingerprint(result) -> tuple:
    """Every observable coordinate of a scan's partition."""
    return (
        tuple((f.start, f.end, f.frame.seq, bytes(f.frame.payload))
              for f in result.frames),
        tuple((r.start, r.end, r.reason) for r in result.corrupt),
        result.torn_start, result.total_bytes,
    )


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_x9_scan_workers(benchmark, report_table, tmp_path):
    """Exactness across worker counts, then the timing sweep."""
    log = _build_faulted_log(tmp_path / "log")
    reference = _fingerprint(log.scan(verify_workers=1))
    rows = []
    seconds = {}
    for workers in SCAN_WORKERS:
        assert _fingerprint(log.scan(verify_workers=workers)) == reference
        seconds[workers] = _best(
            lambda workers=workers: log.scan(verify_workers=workers))
        rows.append([f"{workers} worker(s)",
                     round(seconds[workers] * 1e3, 2),
                     round(log.total_bytes / (1 << 20)
                           / seconds[workers], 1)])
    benchmark(lambda: log.scan(verify_workers=1))
    log.close()
    report_table(
        "X9: segment-sharded certification scan "
        f"({log.total_bytes / (1 << 20):.1f} MiB, "
        f"{log.segment_count} segments, {os.cpu_count()} core(s))",
        ["workers", "scan ms", "log MiB/s"],
        rows,
        notes="every worker count is verified byte-identical to the "
              "sequential partition before timing; the speedup needs "
              "real cores (BENCH_pr9.json records the ratio)",
    )


def test_x9_group_commit(benchmark, report_table, tmp_path):
    """Identical bytes in both flush modes, then the burst sweep."""
    scheme = make_scheme()
    rng = np.random.default_rng(SEED + 1)
    batch = [
        fr.Frame(fr.KIND_DELTA, seq, VOLUME,
                 rng.integers(0, 256, size=GROUP_FRAME_BYTES,
                              dtype=np.uint8).tobytes())
        for seq in range(GROUP_FRAMES)
    ]
    encoded = fr.encode_many(scheme, batch)
    kinds = [frame.kind for frame in batch]

    def write_all(flush: str, burst: int, directory) -> list[int]:
        log = SegmentedLog(directory, scheme, flush=flush)
        offsets = []
        for at in range(0, len(encoded), burst):
            offsets += log.append_encoded(encoded[at:at + burst],
                                          kinds[at:at + burst])
        log.close()
        return offsets

    images, offsets = {}, {}
    for flush in ("frame", "group"):
        directory = tmp_path / f"exact-{flush}"
        offsets[flush] = write_all(flush, 32, directory)
        images[flush] = b"".join(path.read_bytes() for path
                                 in sorted(directory.glob("seg-*.log")))
    assert images["frame"] == images["group"]
    assert offsets["frame"] == offsets["group"]

    rows = []
    for burst in GROUP_BURSTS:
        seconds = {}
        for flush in ("frame", "group"):
            best = float("inf")
            for repeat in range(5):
                directory = tmp_path / f"run-{flush}-{burst}-{repeat}"
                directory.mkdir()
                log = SegmentedLog(directory, scheme, flush=flush)
                start = time.perf_counter()
                for at in range(0, len(encoded), burst):
                    log.append_encoded(encoded[at:at + burst],
                                       kinds[at:at + burst])
                log.close()
                best = min(best, time.perf_counter() - start)
            seconds[flush] = best
        rows.append([f"burst {burst}",
                     round(seconds["frame"] * 1e3, 3),
                     round(seconds["group"] * 1e3, 3),
                     round(seconds["frame"] / seconds["group"], 2)])
    def anchor():
        directory = tmp_path / "anchor"
        write_all("group", 32, directory)
        shutil.rmtree(directory)

    benchmark(anchor)
    report_table(
        f"X9: group commit vs per-frame flush ({GROUP_FRAMES} frames of "
        f"{GROUP_FRAME_BYTES} B)",
        ["burst", "frame ms", "group ms", "speedup"],
        rows,
        notes="group commit lands a burst as one write + one flush; "
              "per-frame flush pays the syscall pair per frame",
    )
    assert rows[-1][3] > 1.0, rows
