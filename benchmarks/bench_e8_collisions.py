"""E8 -- collision experiments: Propositions 1, 2, 4 measured.

The paper proves (Sec. 4.1):

* Proposition 1 -- changes of <= n symbols: detected with certainty;
* Proposition 2 -- random distinct pages collide with probability 2^-nf;
* Proposition 4 -- cut-and-paste collides with probability 2^-nf when
  every base coordinate is primitive (sig', or sig with n <= 2).

A 2^-32 rate is unobservable, so the rate experiments run in GF(2^4)
(predictions 2^-4 and 2^-8 -- measurable), while the certainty claims
are checked exhaustively in GF(2^4) and sampled in GF(2^8)/GF(2^16).
Also reports the paper's deployment arithmetic: at one backup per
second, a 2^-32 collision is expected once in ~135 years.
"""

from repro.analysis import (
    prop1_exhaustive,
    prop1_sampled,
    prop2_random_pairs,
    prop4_adversarial_switches,
    prop4_switches,
    sha1_small_change_detection,
)
from repro.sig import PRIMITIVE, STANDARD, make_scheme


def test_prop2_measurement(benchmark):
    scheme = make_scheme(f=4, n=1)
    benchmark.pedantic(
        prop2_random_pairs, args=(scheme, 8, 2000), kwargs={"seed": 3},
        rounds=3,
    )


def test_e8_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []

    # Proposition 1: certainty.
    exhaustive = prop1_exhaustive(make_scheme(f=4, n=2), page_symbols=8)
    rows.append(["Prop 1 exhaustive, GF(2^4) n=2",
                 exhaustive.trials, exhaustive.collisions, "0 (certain)", "0"])
    sampled8 = prop1_sampled(make_scheme(f=8, n=3), 100, trials=3000)
    rows.append(["Prop 1 sampled, GF(2^8) n=3",
                 sampled8.trials, sampled8.collisions, "0 (certain)", "0"])
    sampled16 = prop1_sampled(make_scheme(f=16, n=2), 500, trials=1000)
    rows.append(["Prop 1 sampled, GF(2^16) n=2",
                 sampled16.trials, sampled16.collisions, "0 (certain)", "0"])

    # Proposition 2: collision rate 2^-nf.
    for n in (1, 2):
        scheme = make_scheme(f=4, n=n)
        report = prop2_random_pairs(scheme, 8, trials=120_000, seed=5)
        rows.append([f"Prop 2 random pairs, GF(2^4) n={n}",
                     report.trials, report.collisions,
                     f"{report.observed_rate:.5f}",
                     f"{report.predicted_rate:.5f}"])

    # Proposition 4: switches, standard vs all-primitive base.
    for variant, tag in ((STANDARD, "sig"), (PRIMITIVE, "sig'")):
        scheme = make_scheme(f=4, n=2, variant=variant)
        report = prop4_switches(scheme, 12, 3, trials=120_000, seed=6)
        rows.append([f"Prop 4 switches, GF(2^4) {tag}_2",
                     report.trials, report.collisions,
                     f"{report.observed_rate:.5f}",
                     f"{report.predicted_rate:.5f}"])

    # The sig-vs-sig' separation the paper motivates for n > 2: an
    # adversarial switch whose distance and block length hit the order
    # of the non-primitive coordinate alpha^3 (ord 5 in GF(2^4)).
    for variant, tag in ((STANDARD, "sig"), (PRIMITIVE, "sig'")):
        scheme = make_scheme(f=4, n=3, variant=variant)
        adversarial = prop4_adversarial_switches(
            scheme, page_symbols=14, block_symbols=5, move_distance=5,
            trials=120_000, seed=8,
        )
        rows.append([f"Prop 4 adversarial d=t=5, {tag}_3",
                     adversarial.trials, adversarial.collisions,
                     f"{adversarial.observed_rate:.6f}",
                     f"{adversarial.predicted_rate:.6f}"])

    # SHA-1 control: no guarantee, but no observable collisions either.
    sha = sha1_small_change_detection(trials=2000, page_bytes=128)
    rows.append(["SHA-1 1-byte changes (control)",
                 sha.trials, sha.collisions, "~0 (no guarantee)", "2^-160"])

    report_table(
        "E8: collision experiments (observed vs predicted rates)",
        ["experiment", "trials", "collisions", "observed", "predicted"],
        rows,
        notes="paper deployment: 4 B signature -> collision odds 2^-32; "
              "at 1 backup/s that is one expected collision per ~135 years",
    )

    # Hard assertions: certainty is certainty.
    assert exhaustive.collisions == 0
    assert sampled8.collisions == 0
    assert sampled16.collisions == 0
    # Rate experiments within 4 binomial sigmas of 2^-nf.
    for scheme_n, row in ((1, rows[3]), (2, rows[4])):
        predicted = 2.0 ** (-scheme_n * 4)
        observed = float(row[3])
        sigma = (predicted * (1 - predicted) / row[1]) ** 0.5
        assert abs(observed - predicted) < 4 * sigma + 1e-9

    # The adversarial switch must show the degradation for sig but not
    # sig': the rationale of the sig' family (Section 4.1 discussion).
    sig_row = next(row for row in rows if "adversarial" in row[0] and "sig_3" in row[0])
    sigp_row = next(row for row in rows if "adversarial" in row[0] and "sig'_3" in row[0])
    assert float(sig_row[3]) > 5 * float(sigp_row[3])
    assert abs(float(sig_row[3]) - 2 ** -8) < 2 ** -8
    assert abs(float(sigp_row[3]) - 2 ** -12) < 2 ** -12

    # The paper's 135-year arithmetic.
    seconds_per_year = 365.25 * 24 * 3600
    years = (1 / 2.0 ** -32) / seconds_per_year
    assert 130 < years < 140
