"""X6 -- incremental O(|delta|) maintenance vs full map rescans.

PR 4's tentpole: a :class:`repro.sig.WriteJournal` of ``(offset,
before, after)`` regions folded into a warm
:class:`repro.sig.IncrementalSignatureMap` through one batched
Proposition-3 kernel pass.  The work is proportional to the journaled
bytes, not the image -- so the speedup over a full batched rescan
should scale inversely with the dirty fraction.  This benchmark sweeps
the dirty fraction over one 3 MiB image and reports the crossover.

Acceptance asserted here:

* every fold is byte-identical to ``SignatureMap.compute`` over the
  mutated image (exactness before timing), and
* at <= 1% dirty bytes the fold beats the full rescan by >= 5x in this
  quick sweep (the committed full harness run in ``BENCH_pr4.json``
  shows >= 10x).
"""

import time

import numpy as np

from repro.sig import (IncrementalSignatureMap, SignatureMap,
                       get_batch_signer, make_scheme)

IMAGE_BYTES = 3 * 1024 * 1024
PAGE_SYMBOLS = 32 * 1024          # 64 KiB pages under GF(2^16)
REGION_BYTES = 64
FRACTIONS = (0.0005, 0.001, 0.01, 0.05, 0.25)
SEED = 20040301


def _image() -> bytes:
    rng = np.random.default_rng(SEED)
    return rng.integers(0, 256, size=IMAGE_BYTES, dtype=np.uint8).tobytes()


def _dirty(buffer: bytes, fraction: float) -> tuple[bytes, list]:
    """Scatter ``fraction`` of the buffer as journaled region writes."""
    rng = np.random.default_rng(SEED + int(fraction * 1e6))
    slots = len(buffer) // REGION_BYTES
    count = max(1, int(len(buffer) * fraction) // REGION_BYTES)
    offsets = rng.choice(slots, size=min(count, slots), replace=False)
    mutated = bytearray(buffer)
    entries = []
    for slot in sorted(int(o) for o in offsets):
        at = slot * REGION_BYTES
        before = bytes(mutated[at:at + REGION_BYTES])
        after = rng.integers(0, 256, size=REGION_BYTES,
                             dtype=np.uint8).tobytes()
        mutated[at:at + REGION_BYTES] = after
        entries.append((at, before, after))
    return bytes(mutated), entries


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_x6_fold_one_percent(benchmark):
    scheme = make_scheme(f=16, n=2)
    buffer = _image()
    mutated, entries = _dirty(buffer, 0.01)
    base = SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS)

    def fold():
        warm = IncrementalSignatureMap(SignatureMap(
            scheme, PAGE_SYMBOLS, list(base.signatures), base.total_symbols))
        journal = warm.new_journal()
        for offset, before, after in entries:
            journal.record(offset, before, after)
        warm.apply_journal(journal, total_bytes=len(mutated))
        return warm.map

    expected = SignatureMap.compute(scheme, mutated, PAGE_SYMBOLS)
    assert fold().signatures == expected.signatures
    benchmark(fold)


def test_x6_report(benchmark, report_table):
    scheme = make_scheme(f=16, n=2)
    signer = get_batch_signer(scheme)
    buffer = _image()
    base = SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS)

    rows = []
    speedup_at = {}
    for fraction in FRACTIONS:
        mutated, entries = _dirty(buffer, fraction)

        def fold(mutated=mutated, entries=entries):
            warm = IncrementalSignatureMap(SignatureMap(
                scheme, PAGE_SYMBOLS, list(base.signatures),
                base.total_symbols))
            journal = warm.new_journal()
            for offset, before, after in entries:
                journal.record(offset, before, after)
            warm.apply_journal(journal, total_bytes=len(mutated))
            return warm.map

        def rescan(mutated=mutated):
            return signer.sign_map(mutated, PAGE_SYMBOLS)

        # Exactness before timing: fold == from-scratch rescan.
        expected = rescan()
        produced = fold()
        assert produced.signatures == expected.signatures
        assert produced.total_symbols == expected.total_symbols

        fold_s, rescan_s = _best(fold), _best(rescan)
        speedup = rescan_s / max(fold_s, 1e-9)
        speedup_at[fraction] = speedup
        rows.append([f"{fraction:.2%}",
                     sum(len(a) for _o, _b, a in entries),
                     round(fold_s * 1e3, 3), round(rescan_s * 1e3, 3),
                     round(speedup, 1)])

    benchmark(lambda: _dirty(buffer, 0.01))
    report_table(
        "X6: incremental fold vs full rescan, 3 MiB image (GF(2^16) n=2)",
        ["dirty", "dirty bytes", "fold ms", "rescan ms", "speedup"],
        rows,
        notes="fold cost tracks |delta|; the rescan pays O(image) "
              "regardless of how little changed",
    )
    assert speedup_at[0.01] >= 5.0, speedup_at
