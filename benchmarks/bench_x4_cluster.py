"""X4 -- cluster goodput vs fault rate (extension, not in the paper).

Sweeps the per-link message-drop probability over a 4-server
fault-injected cluster and reports goodput (operations completed per
simulated second), retry amplification, and corruption-detection
accounting.  The interesting shape: goodput degrades smoothly with the
fault rate because retries absorb the loss, and the signature seal
detects every injected corruption at every rate -- the paper's detection
guarantee costs 4 bytes per message regardless of how hostile the
network is.
"""

from repro.cluster import Cluster, FaultPlan, RetryPolicy
from repro.obs import MetricsRegistry, use_registry

SERVERS = 4
OPS = 60
CORRUPT = 0.01


def run_workload(drop: float, corrupt: float = CORRUPT, seed: int = 7):
    """Run a fixed workload at one drop rate; returns (registry, cluster)."""
    with use_registry(MetricsRegistry()) as registry:
        plan = FaultPlan.lossy(drop=drop, corrupt=corrupt, jitter=100e-6)
        cluster = Cluster(servers=SERVERS, seed=seed, plan=plan,
                          retry=RetryPolicy.patient())
        client = cluster.client()
        results = [client.insert(key, f"record {key}".encode() * 4)
                   for key in range(OPS)]
        results += [client.search(key) for key in range(0, OPS, 3)]
        cluster.settle()
        assert all(result.ok for result in results)
        return registry, cluster, len(results)


def test_clean_network_goodput(benchmark):
    registry, cluster, operations = benchmark.pedantic(
        lambda: run_workload(drop=0.0, corrupt=0.0), rounds=3)[:3]
    assert registry.total("cluster.retries") == 0
    assert cluster.converged()


def test_x4_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    for drop in (0.0, 0.05, 0.10, 0.20, 0.30):
        registry, cluster, operations = run_workload(drop)
        elapsed = cluster.clock.now
        goodput = operations / elapsed
        injected = cluster.faulty_network.injected
        detected = int(registry.total("cluster.corruptions_detected"))
        assert injected.get("corrupt", 0) == detected
        rows.append([
            f"{drop:.0%}",
            operations,
            int(registry.total("cluster.retries")),
            f"{elapsed * 1e3:.1f}",
            f"{goodput:,.0f}",
            f"{injected.get('corrupt', 0)}/{detected}",
            cluster.converged(),
        ])
    report_table(
        "X4: 4-server cluster goodput vs message-drop rate",
        ["drop", "ops", "retries", "sim ms", "ops/s",
         "corrupt inj/det", "converged"],
        rows,
        notes="every operation succeeds at every fault rate; retries "
              "absorb the loss and the 4-byte seal catches every "
              "corruption",
    )
    # Shape: goodput monotonically suffers as the network degrades, but
    # nothing ever fails and every run converges.
    goodputs = [float(row[4].replace(",", "")) for row in rows]
    assert goodputs[0] > goodputs[-1]
    assert all(row[6] for row in rows)
