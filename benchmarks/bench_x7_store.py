"""X7 -- certified crash recovery: checkpoint+fold vs full log rescan.

PR 5's tentpole: a :class:`repro.store.PageStore` recovers by loading
the sealed checkpoint (warm signature map + tree) and folding only the
post-checkpoint log tail (Proposition 3), instead of re-verifying and
re-signing the whole history.  This benchmark sweeps the two knobs the
recovery cost depends on:

* **log length** (pre-checkpoint churn rounds) -- the rescan pays for
  every frame ever written; checkpoint recovery pays only the tail, so
  the gap should widen as the log grows, and
* **dirty fraction** (post-checkpoint delta bytes) -- the tail-verify
  path's cost tracks the tail, so its advantage shrinks as the dirty
  fraction grows.

Acceptance asserted here:

* every recovery path materializes the same bytes and a signature map
  byte-identical to ``SignatureMap.compute`` over them (exactness
  before timing), and
* at the longest log, checkpoint+tail-verify recovery beats the full
  rescan (the committed harness run in ``BENCH_pr5.json`` shows the
  full-scale ratios).
"""

import time

import numpy as np

from repro.sig import SignatureMap, make_scheme
from repro.store import PageStore

PAGE_BYTES = 32 * 1024
PAGES = 48                       # 1.5 MiB image
REGION_BYTES = 512
VOLUME = "x7"
SEED = 20040301
CHURN_ROUNDS = (1, 2, 4)         # log length sweep at 1% dirty
FRACTIONS = (0.01, 0.05, 0.25)   # dirty-fraction sweep at 1 churn round


def _build(directory, churn_rounds: int, fraction: float) -> bytes:
    """Build a churned, checkpointed store; returns the final image."""
    rng = np.random.default_rng(SEED + churn_rounds * 7
                                + int(fraction * 1e6))
    store = PageStore(make_scheme(), directory)
    image = bytearray(rng.integers(
        0, 256, size=PAGES * PAGE_BYTES, dtype=np.uint8).tobytes())
    store.write_image(VOLUME, bytes(image), PAGE_BYTES)
    for _ in range(churn_rounds):
        for index in rng.permutation(PAGES):
            index = int(index)
            page = rng.integers(0, 256, size=PAGE_BYTES,
                                dtype=np.uint8).tobytes()
            store.write_page(VOLUME, index, page)
            image[index * PAGE_BYTES:(index + 1) * PAGE_BYTES] = page
    store.checkpoint()
    slots = len(image) // REGION_BYTES
    count = max(1, int(len(image) * fraction) // REGION_BYTES)
    for slot in sorted(int(o) for o in rng.choice(
            slots, size=min(count, slots), replace=False)):
        at = slot * REGION_BYTES
        before = bytes(image[at:at + REGION_BYTES])
        after = rng.integers(0, 256, size=REGION_BYTES,
                             dtype=np.uint8).tobytes()
        image[at:at + REGION_BYTES] = after
        store.record_extent(VOLUME, at, before, after, len(image))
    store.close()
    return bytes(image)


def _check(directory, image: bytes, **kwargs) -> None:
    """One recovery must reproduce the bytes and a from-scratch map."""
    scheme = make_scheme()
    store, report = PageStore.recover(scheme, directory, **kwargs)
    try:
        assert store.image(VOLUME) == image
        expected = SignatureMap.compute(
            scheme, image, PAGE_BYTES // scheme.scheme_id.symbol_bytes)
        produced = store.signature_map(VOLUME)
        assert produced.signatures == expected.signatures
        assert produced.total_symbols == expected.total_symbols
        assert report.clean, report
    finally:
        store.close()


def _time(directory, repeats: int = 3, **kwargs) -> float:
    scheme = make_scheme()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        store, _report = PageStore.recover(scheme, directory, **kwargs)
        store.close()
        best = min(best, time.perf_counter() - start)
    return best


def test_x7_recover_tail(benchmark, tmp_path):
    """Timing anchor: the production tail-verify recovery path."""
    directory = tmp_path / "store"
    image = _build(directory, churn_rounds=1, fraction=0.01)
    for kwargs in ({"use_checkpoint": False}, {"verify": "full"},
                   {"verify": "tail"}):
        _check(directory, image, **kwargs)

    scheme = make_scheme()

    def recover_tail():
        store, report = PageStore.recover(scheme, directory, verify="tail")
        store.close()
        return report

    assert recover_tail().used_checkpoint
    benchmark(recover_tail)


def test_x7_report(benchmark, report_table, tmp_path):
    rows = []
    ratio_at_longest = 0.0
    for label, churn, fraction in (
            [(f"churn x{c}, 1% dirty", c, 0.01) for c in CHURN_ROUNDS]
            + [(f"churn x1, {f:.0%} dirty", 1, f) for f in FRACTIONS[1:]]):
        directory = tmp_path / f"store-{churn}-{int(fraction * 1e6)}"
        image = _build(directory, churn, fraction)
        for kwargs in ({"use_checkpoint": False}, {"verify": "full"},
                       {"verify": "tail"}):
            _check(directory, image, **kwargs)
        rescan_s = _time(directory, use_checkpoint=False)
        fold_s = _time(directory, verify="full")
        tail_s = _time(directory, verify="tail")
        log_bytes = PageStore.recover(make_scheme(), directory)[1].log_bytes
        if churn == max(CHURN_ROUNDS) and fraction == 0.01:
            ratio_at_longest = rescan_s / max(tail_s, 1e-9)
        rows.append([label, f"{log_bytes / (1 << 20):.1f}",
                     round(rescan_s * 1e3, 2), round(fold_s * 1e3, 2),
                     round(tail_s * 1e3, 2),
                     round(rescan_s / max(tail_s, 1e-9), 1)])

    quick = tmp_path / "store-quick"
    quick_image = _build(quick, 1, 0.01)
    _check(quick, quick_image, verify="tail")
    benchmark(lambda: _time(quick, repeats=1, verify="tail"))
    report_table(
        "X7: certified recovery, 1.5 MiB volume (GF(2^16) n=2)",
        ["workload", "log MiB", "rescan ms", "fold ms", "tail ms",
         "tail speedup"],
        rows,
        notes="rescan re-verifies and re-signs the whole log; "
              "checkpoint+fold pays only for the post-checkpoint tail",
    )
    assert ratio_at_longest > 1.0, ratio_at_longest
