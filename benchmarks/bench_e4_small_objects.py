"""E4 -- small-object signatures: records, index pages, large pages.

Paper (Section 5.2): "it took in the order of dozens of microseconds to
calculate sig_{alpha,2} for an index page or for a record.  The time
grew linear with the bucket or record size" and "calculating the
signature of a 64 KB page is relatively faster than the one of a 16 KB
page" (better cache amortization -- in our case, numpy setup
amortization).

Objects timed: the paper's 100 B record, its 128 B index page, a 1 KB
record, and 16/64 KB bucket pages.
"""

import time

import pytest

from repro.sig import make_scheme
from repro.workloads import make_page

SIZES = [
    ("100 B record", 100),
    ("128 B index page", 128),
    ("1 KB record", 1024),
    ("16 KB page", 16 * 1024),
    ("64 KB page", 64 * 1024),
]


@pytest.mark.parametrize("label,size", SIZES)
def test_sign_object(benchmark, label, size):
    scheme = make_scheme(f=16, n=2)
    symbols = scheme.to_symbols(make_page("ascii", size))
    benchmark(scheme.sign, symbols)


def test_e4_report(benchmark, report_table):
    scheme = make_scheme(f=16, n=2)
    benchmark(scheme.sign, scheme.to_symbols(make_page("ascii", 100)))

    rows = []
    per_kb = {}
    for label, size in SIZES:
        symbols = scheme.to_symbols(make_page("ascii", size))
        repeats = max(20, (1 << 21) // size)
        start = time.perf_counter()
        for _ in range(repeats):
            scheme.sign(symbols)
        micros = (time.perf_counter() - start) / repeats * 1e6
        per_kb[label] = micros / (size / 1024)
        rows.append([label, round(micros, 2), round(per_kb[label], 2)])
    report_table(
        "E4: sig_{alpha,2}/GF(2^16) on small objects",
        ["object", "us/object", "us/KB"],
        rows,
        notes="paper: dozens of us for records/index pages; "
              "64 KB relatively faster than 16 KB",
    )
    # Shape checks: record/index-page signatures are tens of us at most,
    # and the per-KB rate improves with object size.
    assert rows[0][1] < 1000  # far below the paper's 0.1 ms search time x10
    assert per_kb["64 KB page"] < per_kb["1 KB record"]
    assert per_kb["16 KB page"] < per_kb["1 KB record"]
