"""E9 -- signature trees: change localization vs the flat map (Fig. 3).

Paper (Sections 2.1, 4.2): organizing the signature map as a tree --
each parent computed *algebraically* from its children via
Proposition 5 -- "speeds up the identification of the portions of the
map where the signatures have changed".

We compare, for maps of m pages with k dirty pages:

* flat comparison: m signature comparisons, always;
* tree diff: node comparisons visited (O(fanout * log m) per change);
* incremental leaf maintenance: re-signing the root path vs rebuilding.
"""

import time

import numpy as np
from repro.sig import SignatureMap, SignatureTree, make_scheme
from repro.workloads import make_page

SCHEME = make_scheme(f=16, n=2)
PAGE_SYMBOLS = 512


def build_map_and_tree(nbytes, seed, fanout=16):
    data = make_page("random", nbytes, seed=seed)
    smap = SignatureMap.compute(SCHEME, data, PAGE_SYMBOLS)
    return data, smap, SignatureTree.from_map(smap, fanout)


def test_tree_diff_one_change(benchmark):
    data, smap, tree = build_map_and_tree(1 << 20, seed=1)
    changed = bytearray(data)
    changed[500_000] ^= 1
    smap2 = SignatureMap.compute(SCHEME, bytes(changed), PAGE_SYMBOLS)
    tree2 = SignatureTree.from_map(smap2, 16)
    benchmark(tree.diff, tree2)


def test_flat_diff_one_change(benchmark):
    data, smap, _tree = build_map_and_tree(1 << 20, seed=1)
    changed = bytearray(data)
    changed[500_000] ^= 1
    smap2 = SignatureMap.compute(SCHEME, bytes(changed), PAGE_SYMBOLS)
    benchmark(smap.changed_pages, smap2)


def test_e9_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    rng = np.random.default_rng(2)
    nbytes = 4 << 20  # 4096 pages of 1 KB
    for dirty_pages in (1, 4, 16, 64):
        data, smap, tree = build_map_and_tree(nbytes, seed=3)
        changed = bytearray(data)
        pages = rng.choice(smap.page_count, size=dirty_pages, replace=False)
        for page in pages:
            changed[int(page) * PAGE_SYMBOLS * 2 + 3] ^= 0xFF
        smap2 = SignatureMap.compute(SCHEME, bytes(changed), PAGE_SYMBOLS)
        tree2 = SignatureTree.from_map(smap2, 16)
        diff = tree.diff(tree2)
        assert sorted(diff.changed_leaves) == sorted(int(p) for p in pages)
        rows.append([
            smap.page_count, dirty_pages,
            smap.page_count,          # flat comparisons
            diff.nodes_compared,      # tree comparisons
            round(smap.page_count / diff.nodes_compared, 1),
        ])
    report_table(
        "E9: locating k dirty pages among m page signatures (fanout 16)",
        ["pages m", "dirty k", "flat compares", "tree compares", "speedup"],
        rows,
        notes="tree built algebraically from children (Prop 5); "
              "a changed page changes every node on its root path (Fig. 3)",
    )
    # Shape: for few changes the tree visits far fewer nodes than flat.
    assert rows[0][3] < rows[0][2] / 20

    # Incremental maintenance: updating one leaf's path beats rebuilding.
    data, smap, tree = build_map_and_tree(nbytes, seed=4)
    new_leaf = SCHEME.sign(make_page("random", PAGE_SYMBOLS * 2, seed=5))
    start = time.perf_counter()
    tree.update_leaf(100, new_leaf)
    incremental = time.perf_counter() - start
    start = time.perf_counter()
    SignatureTree.from_map(smap, 16)
    rebuild = time.perf_counter() - start
    assert incremental < rebuild
