"""X5 -- batched signature engine vs the per-page paths.

PR 3's tentpole: :class:`repro.sig.BatchSigner` signs N pages in one
2-D kernel pass (one log gather + one antilog gather per base
coordinate for the whole batch) through a shared β-power-ladder cache.
This benchmark reruns the ``python -m repro bench --json`` harness in
quick mode and reports its table; the committed full run lives in
``BENCH_pr4.json``.

Acceptance asserted here:

* every timed path is byte-identical to ``scheme.sign`` (the harness
  verifies before timing; ``verified`` must be true), and
* single-thread batch signing is >= 5x the paper's scalar loop on
  64 KiB pages, both fields.
"""

from repro.bench import run
from repro.sig import get_batch_signer, make_scheme
from repro.workloads import make_page

PAGES = [make_page("random", 64 * 1024, seed=s) for s in range(8)]


def test_x5_batch_sign_many(benchmark):
    signer = get_batch_signer(make_scheme(f=16, n=2))
    benchmark(signer.sign_many, PAGES, strict=False)


def test_x5_report(benchmark, report_table):
    signer = get_batch_signer(make_scheme(f=16, n=2))
    benchmark(signer.sign_many, PAGES, strict=False)

    document = run(quick=True)
    assert document["verified"] is True
    rows = []
    for field in document["fields"]:
        for entry in field["results"]:
            rows.append([field["field"], entry["path"], entry["pages"],
                        entry["pages_per_s"], entry["mib_per_s"]])
    speedups = {field["field"]: field["speedups"]
                for field in document["fields"]}
    report_table(
        "X5: signing throughput, 64 KiB pages (quick harness)",
        ["field", "path", "pages", "pages/s", "MiB/s"],
        rows,
        notes="batch vs scalar loop: " + ", ".join(
            f"{name} {s['batch_vs_scalar']}x" for name, s in speedups.items()
        ),
    )
    # Acceptance: >= 5x over the paper's symbol-at-a-time scalar loop.
    for name, s in speedups.items():
        assert s["batch_vs_scalar"] >= 5.0, (name, s)
