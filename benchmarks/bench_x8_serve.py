"""X8 -- serving-plane saturation: goodput and tails vs offered load.

Steps an open-loop Poisson arrival process past the plane's modelled
capacity (buckets x service rate) while LH* buckets split under the
live traffic.  The interesting shape: goodput climbs with offered load,
plateaus at capacity instead of collapsing (admission control sheds the
excess with explicit replies clients back off on), p99/p999 stay
bounded by the deadline-shedding horizon, and the final bucket images
still signature-verify against the execution oracle -- the paper's
correctness guarantee is unchanged by the concurrency machinery.
"""

from repro.obs import MetricsRegistry, use_registry
from repro.serve import LoadGenerator, LoadMix, ServingPlane

RATES = (2000.0, 6000.0, 12000.0, 20000.0)
OPS_PER_STEP = 1500
SESSIONS = 600


def run_sweep(seed: int = 7):
    """Run the fixed sweep; returns the report document."""
    with use_registry(MetricsRegistry()):
        plane = ServingPlane(buckets=4, family="lh", seed=seed)
        generator = LoadGenerator(
            plane, LoadMix(sessions=SESSIONS, n_items=1000))
        return generator.sweep(list(RATES), OPS_PER_STEP)


def test_single_step_service(benchmark):
    def one_step():
        with use_registry(MetricsRegistry()):
            plane = ServingPlane(buckets=4, family="lh", seed=3)
            generator = LoadGenerator(
                plane, LoadMix(sessions=SESSIONS, n_items=1000))
            return generator.run_step(6000.0, OPS_PER_STEP)

    step = benchmark.pedantic(one_step, rounds=3)
    assert step["ops"] == OPS_PER_STEP
    assert step["failed_timeout"] == 0


def test_x8_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    report = run_sweep()
    rows = []
    for step in report["steps"]:
        rows.append([
            f"{step['offered_ops_per_s']:,.0f}",
            f"{step['goodput_ops_per_s']:,.0f}",
            f"{step['p50_ms']:.2f}",
            f"{step['p99_ms']:.2f}",
            f"{step['p999_ms']:.2f}",
            sum(step["server_sheds"].values()),
            step["coalesced"],
            step["splits"],
        ])
    summary = report["summary"]
    verify = report["verify"]
    report_table(
        "X8: serving-plane goodput and latency tails vs offered load",
        ["offered/s", "goodput/s", "p50 ms", "p99 ms", "p999 ms",
         "sheds", "coalesced", "splits"],
        rows,
        notes=f"{summary['sessions']} open-loop sessions; goodput "
              f"plateaus at capacity (floor "
              f"{summary['post_saturation_ratio']:.0%} of peak); "
              f"{verify['buckets_verified']}/{verify['buckets']} final "
              "bucket images signature-verified against the oracle",
    )
    assert summary["graceful"]
    assert verify["ok"]
    # Shape: the sweep actually crossed saturation -- the top offered
    # rate exceeds what the plane could serve.
    top = report["steps"][-1]
    assert top["offered_ops_per_s"] > top["goodput_ops_per_s"]
