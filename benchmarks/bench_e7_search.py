"""E7 -- string search in the non-key field (Section 5.2, last paragraph).

Paper setup: 8000 records with a 60 B non-key field, a 3 B needle in the
third-last record, GF(2^16) with the byte-alignment handling.  Paper
results: 1.516 s total, of which 0.5 s was bucket traversal; the
byte-XOR Karp-Rabin control took 1.504 s -- i.e. "most of the
calculation time is spent on memory transfers and very little on Galois
field arithmetic".

We time the algebraic scan, the byte-XOR control, the classical
modular Karp-Rabin, and the plain ``in`` scan over the same workload,
plus the traversal-only baseline, and check the paper's shape: the
algebraic and XOR scans are close (the GF arithmetic is not the
bottleneck), and all scanners agree on the hits.
"""

import time

from repro.search import (
    build_record_field,
    scan_naive,
    scan_with_karp_rabin,
    scan_with_signatures,
    scan_with_xor,
)
from repro.sig import make_scheme

RECORDS = 8000
FIELD_BYTES = 60
NEEDLE = b"zqj"
NEEDLE_RECORD = RECORDS - 3

FIELDS = build_record_field(RECORDS, FIELD_BYTES, NEEDLE, NEEDLE_RECORD,
                            seed=2004)
SCHEME = make_scheme(f=16, n=2)


def traversal_only():
    """Touch every record without any signature work (the 0.5 s leg)."""
    total = 0
    for value in FIELDS:
        total += len(value)
    return total


def test_algebraic_scan(benchmark):
    result = benchmark(scan_with_signatures, SCHEME, FIELDS, NEEDLE)
    assert NEEDLE_RECORD in result.record_indices


def test_xor_scan(benchmark):
    result = benchmark(scan_with_xor, FIELDS, NEEDLE)
    assert NEEDLE_RECORD in result.record_indices


def test_naive_scan(benchmark):
    result = benchmark(scan_naive, FIELDS, NEEDLE)
    assert NEEDLE_RECORD in result.record_indices


def _once(fn, *args):
    start = time.perf_counter()
    out = fn(*args)
    return time.perf_counter() - start, out


def test_e7_report(benchmark, report_table):
    benchmark.pedantic(traversal_only, rounds=3)

    t_traverse, _ = min(_once(traversal_only) for _ in range(3))
    t_algebraic, algebraic = min(
        (_once(scan_with_signatures, SCHEME, FIELDS, NEEDLE) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    t_xor, xor = min((_once(scan_with_xor, FIELDS, NEEDLE) for _ in range(3)),
                     key=lambda pair: pair[0])
    t_kr, kr = _once(scan_with_karp_rabin, FIELDS, NEEDLE)
    t_naive, naive = min((_once(scan_naive, FIELDS, NEEDLE) for _ in range(3)),
                         key=lambda pair: pair[0])

    mb = RECORDS * FIELD_BYTES / (1 << 20)
    rows = [
        ["bucket traversal only", round(t_traverse, 4), "-",
         "0.5 s (of 1.516 s)"],
        ["algebraic signature scan", round(t_algebraic, 4),
         round((t_algebraic - t_traverse) / mb, 3), "1.516 s total"],
        ["byte-XOR KR control", round(t_xor, 4),
         round((t_xor - t_traverse) / mb, 3), "1.504 s total"],
        ["modular Karp-Rabin (scalar)", round(t_kr, 4), "-", "-"],
        ["naive 'in' scan", round(t_naive, 4), "-", "-"],
    ]
    report_table(
        "E7: search 3 B needle in 8000 x 60 B records (seconds)",
        ["scanner", "seconds", "s/MB beyond traversal", "paper"],
        rows,
        notes=f"algebraic/XOR ratio: {t_algebraic / t_xor:.2f}x "
              "(paper: 1.516/1.504 = 1.01x -- GF arithmetic is not the "
              "bottleneck); all scanners agree on "
              f"{len(naive.record_indices)} hits",
    )
    # Shape and correctness checks.
    assert algebraic.record_indices == naive.record_indices
    assert xor.record_indices == naive.record_indices
    assert kr.record_indices == naive.record_indices
    # The algebraic scan is within a small factor of the XOR control
    # (the paper found them nearly identical; our XOR path does less
    # per-record work, so allow headroom).
    assert t_algebraic < 6 * t_xor
