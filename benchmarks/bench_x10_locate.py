"""X10 -- corruption localization via group-testing compound signatures.

PR 10's tentpole: :mod:`repro.sig.locate` folds the per-page signature
map into a :class:`~repro.sig.LocatorMap` of ``q^2`` Proposition-5
compound signatures arranged as a Kautz--Singleton d-cover-free family.
Comparing two locators localizes up to ``d`` damaged pages exactly --
page condemned iff every one of its ``q`` test groups fails -- from
state that is orders of magnitude smaller than the map and grows with
``q^2 = O((d log N)^2)`` rather than ``N``.

Two sweeps:

* **audit paths** -- inject ``d`` single-byte rot events, then localize
  through a full map rescan, a tree walk, and a locator decode.  Every
  path must return exactly the injected page set before it is timed;
  the table reports seconds plus the resident signature-state bytes of
  each structure.
* **anti-entropy exchange** -- reconcile a replica diverged at ``d``
  pages under ``sync_by_map`` / ``sync_by_tree`` / ``sync_by_locator``;
  each protocol must converge byte-identically, and the table reports
  the signature bytes shipped (deterministic, not timed).

Over-budget safety rides along: ``3*d`` damaged pages must decode to
OVERFLOW (or the exact set) -- never a silently wrong page list.
"""

import time

import numpy as np

from repro.sig import (LocateDesign, LocatorMap, OVERFLOW, SignatureTree,
                       decode, make_scheme)
from repro.sig.engine import get_batch_signer
from repro.sim.network import SimNetwork
from repro.sync import Replica, sync_by_locator, sync_by_map, sync_by_tree

SEED = 20040301
PAGE_BYTES = 16
D = 4
FANOUT = 16
VOLUMES = (4096, 65536)


def _image(count: int) -> bytes:
    return np.random.RandomState((SEED ^ count) & 0xFFFFFFFF).bytes(
        count * PAGE_BYTES)


def _rot(image: bytes, pages, seed: int) -> bytes:
    rng = np.random.RandomState(seed)
    rotted = bytearray(image)
    for page in pages:
        offset = page * PAGE_BYTES + int(rng.randint(PAGE_BYTES))
        rotted[offset] ^= int(rng.randint(1, 256))
    return bytes(rotted)


def _best(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_x10_audit_paths(benchmark, report_table):
    """Exactness per path, then the localization timing sweep."""
    scheme = make_scheme()
    signer = get_batch_signer(scheme)
    page_symbols = PAGE_BYTES // scheme.scheme_id.symbol_bytes
    sig_bytes = scheme.scheme_id.signature_bytes
    rows = []
    for count in VOLUMES:
        image = _image(count)
        design = LocateDesign.build(count, D, SEED)
        expected_map = signer.sign_map(image, page_symbols)
        expected_tree = SignatureTree.from_map(expected_map, FANOUT)
        expected_locator = LocatorMap.from_map(design, expected_map)
        damage = sorted(np.random.RandomState(SEED + count)
                        .choice(count, size=D, replace=False).tolist())
        rotted = _rot(image, damage, SEED + count)

        def audit_rescan():
            return expected_map.changed_pages(
                signer.sign_map(rotted, page_symbols))

        def audit_tree():
            actual = SignatureTree.from_map(
                signer.sign_map(rotted, page_symbols), FANOUT)
            return sorted(expected_tree.diff(actual).changed_leaves)

        def audit_locator():
            verdict = decode(expected_locator, LocatorMap.from_map(
                design, signer.sign_map(rotted, page_symbols)))
            return sorted(verdict.pages)

        paths = (("map_rescan", audit_rescan, count * sig_bytes),
                 ("tree_walk", audit_tree,
                  sum(len(level) for level in expected_tree.levels)
                  * sig_bytes),
                 ("locator", audit_locator,
                  expected_locator.locator_bytes))
        for name, audit, state_bytes in paths:
            assert audit() == damage, (name, count)
            rows.append([f"{count} pages / {name}",
                         round(_best(audit) * 1e3, 2), state_bytes])

        # Over-budget damage must never produce a wrong page list.
        over = sorted(np.random.RandomState(SEED - count)
                      .choice(count, size=3 * D, replace=False).tolist())
        verdict = decode(expected_locator, LocatorMap.from_map(
            design, signer.sign_map(_rot(image, over, SEED - count),
                                    page_symbols)))
        assert verdict.status == OVERFLOW or sorted(verdict.pages) == over

    count = VOLUMES[0]
    image = _image(count)
    design = LocateDesign.build(count, D, SEED)
    expected = LocatorMap.from_map(
        design, signer.sign_map(image, page_symbols))
    benchmark(lambda: decode(expected, LocatorMap.from_map(
        design, signer.sign_map(image, page_symbols))))
    report_table(
        f"X10: damage localization, d={D} single-byte rot events "
        f"({PAGE_BYTES} B pages)",
        ["volume / path", "audit ms", "state bytes"],
        rows,
        notes="every path is verified to return exactly the injected "
              "page set before timing; the locator's state is "
              "O((d log N)^2) compound signatures, not O(N)",
    )


def test_x10_exchange(report_table):
    """Signature bytes shipped per anti-entropy protocol."""
    scheme = make_scheme()
    rows = []
    for count in VOLUMES:
        image = _image(count)
        damage = sorted(np.random.RandomState(SEED + count)
                        .choice(count, size=D, replace=False).tolist())
        rotted = _rot(image, damage, SEED + count)
        network = SimNetwork()
        source = Replica("x10-src", scheme, image, PAGE_BYTES)
        shipped = {}
        protocols = (("map", sync_by_map), ("tree", sync_by_tree),
                     ("locator", lambda s, t, n: sync_by_locator(
                         s, t, n, d=D, seed=SEED)))
        for name, protocol in protocols:
            target = Replica("x10-tgt", scheme, rotted, PAGE_BYTES)
            report = protocol(source, target, network)
            assert bytes(target.data) == image, name
            shipped[name] = report.signature_bytes
        rows.append([f"{count} pages", shipped["map"], shipped["tree"],
                     shipped["locator"],
                     round(shipped["map"] / shipped["locator"], 1)])
    report_table(
        f"X10: anti-entropy signature bytes, {D} divergent pages",
        ["volume", "map B", "tree B", "locator B", "map/locator"],
        rows,
        notes="sync_by_locator ships q^2 compound signatures + the "
              "condemned page list; the map ships one signature per page",
    )
    assert all(row[4] >= 4.0 for row in rows if "65536" in row[0]), rows
