"""E1 -- signature calculation time: linear in n, data-type sensitivity.

Paper (Section 5.2): "For a given page size, the calculation times for
sig_{alpha,n} were linear in n" and "the calculation time depended to a
large degree on the type of data used" (random worst, structured best).

This bench times the vectorized kernel for n = 1..4 on 16 KB and 64 KB
pages over the paper's data spectrum and reports ms/MB per
configuration.  Shape checks: time grows monotonically with n and stays
within a loosely linear envelope.
"""

import time

import pytest

from repro.sig import make_scheme
from repro.workloads import make_page

PAGE_SIZES = {"16KB": 16 * 1024, "64KB": 64 * 1024}
KINDS = ("random", "ascii", "structured")


def _time_per_mb(scheme, page, repeats=30):
    symbols = scheme.to_symbols(page)
    start = time.perf_counter()
    for _ in range(repeats):
        scheme.sign(symbols)
    elapsed = time.perf_counter() - start
    return elapsed / repeats / (len(page) / (1 << 20)) * 1e3  # ms/MB


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_sign_16kb_by_n(benchmark, n):
    scheme = make_scheme(f=16, n=n)
    page = scheme.to_symbols(make_page("random", 16 * 1024))
    benchmark(scheme.sign, page)


@pytest.mark.parametrize("kind", KINDS)
def test_sign_by_data_kind(benchmark, kind):
    scheme = make_scheme(f=16, n=2)
    page = scheme.to_symbols(make_page(kind, 16 * 1024))
    benchmark(scheme.sign, page)


def test_e1_report(benchmark, report_table):
    scheme2 = make_scheme(f=16, n=2)
    page = scheme2.to_symbols(make_page("random", 16 * 1024))
    benchmark(scheme2.sign, page)  # anchor timing for the harness

    rows = []
    times_by_n = {}
    for label, size in PAGE_SIZES.items():
        for kind in KINDS:
            data = make_page(kind, size)
            for n in (1, 2, 3, 4):
                scheme = make_scheme(f=16, n=n)
                ms_per_mb = _time_per_mb(scheme, data)
                rows.append([label, kind, n, round(ms_per_mb, 3)])
                if (label, kind) not in times_by_n:
                    times_by_n[(label, kind)] = {}
                times_by_n[(label, kind)][n] = ms_per_mb

    report_table(
        "E1: sig_{alpha,n} calculation time (ms/MB), GF(2^16), vectorized",
        ["page", "data", "n", "ms/MB"],
        rows,
        notes="paper shape: linear in n; random data slowest, structured fastest",
    )

    # Shape assertions, noise-tolerant: per configuration n=4 must not
    # be faster than n=1 beyond jitter, and in aggregate the growth with
    # n is clear and loosely linear (the vectorized kernel amortizes a
    # per-call setup, so the slope is shallower than the paper's 1:1).
    for times in times_by_n.values():
        assert times[4] > times[1] * 0.8
        assert times[4] < 8 * times[1]

    def mean(n):
        return sum(t[n] for t in times_by_n.values()) / len(times_by_n)

    assert mean(4) > mean(1) * 1.2
    assert mean(2) < mean(4)
