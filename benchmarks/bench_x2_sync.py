"""X2 -- replica reconciliation economics (the Section 1 literature).

Sweeps the number of diverged pages in a 4 MB replicated file and
reports the traffic of the two signature protocols against recopying,
plus the crossover between map exchange (flat, 2 rounds) and tree probe
(hierarchical, log rounds).
"""

import numpy as np

from repro.sig import make_scheme
from repro.sim import SimNetwork
from repro.sync import Replica, sync_by_map, sync_by_tree
from repro.workloads import make_page

FILE_BYTES = 4 << 20
PAGE_BYTES = 1024


def diverged_pair(scheme, n_changes, seed):
    base = make_page("random", FILE_BYTES, seed=seed)
    stale = bytearray(base)
    rng = np.random.default_rng(seed + 1)
    for position in rng.choice(FILE_BYTES, size=n_changes, replace=False):
        stale[int(position)] ^= 0xFF
    return (Replica("src", scheme, base, PAGE_BYTES),
            Replica("dst", scheme, bytes(stale), PAGE_BYTES))


def test_map_sync_one_change(benchmark):
    scheme = make_scheme(f=16, n=2)

    def run():
        source, target = diverged_pair(scheme, 1, seed=1)
        return sync_by_map(source, target, SimNetwork())

    report = benchmark.pedantic(run, rounds=3)
    assert report.pages_shipped == 1


def test_x2_report(benchmark, report_table):
    benchmark.pedantic(lambda: None, rounds=1)
    scheme = make_scheme(f=16, n=2)
    rows = []
    for n_changes in (0, 1, 16, 256):
        src_m, dst_m = diverged_pair(scheme, n_changes, seed=2)
        map_report = sync_by_map(src_m, dst_m, SimNetwork())
        assert bytes(dst_m.data) == bytes(src_m.data)
        src_t, dst_t = diverged_pair(scheme, n_changes, seed=2)
        tree_report = sync_by_tree(src_t, dst_t, SimNetwork())
        assert bytes(dst_t.data) == bytes(src_t.data)
        rows.append([
            n_changes,
            map_report.pages_shipped,
            f"{map_report.total_bytes:,}",
            f"{tree_report.total_bytes:,}",
            tree_report.rounds,
            f"{FILE_BYTES:,}",
        ])
    report_table(
        "X2: reconciling a 4 MB replica (bytes on the wire)",
        ["changed bytes", "pages shipped", "map total", "tree total",
         "tree rounds", "full recopy"],
        rows,
        notes="the tree probe wins on bandwidth for sparse divergence; "
              "the flat map always finishes in 2 rounds",
    )
    # Shape: for sparse changes, both beat recopy by orders of magnitude
    # and the tree beats the map on signature bandwidth.
    sparse_map_total = int(rows[1][2].replace(",", ""))
    sparse_tree_total = int(rows[1][3].replace(",", ""))
    assert sparse_map_total < FILE_BYTES // 50
    assert sparse_tree_total < sparse_map_total
