"""The paper's Propositions 1-6 as executable properties.

Each class tests one proposition, both with hypothesis-generated cases
and (where feasible) exhaustively in small fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.sig import (
    PRIMITIVE,
    STANDARD,
    apply_update,
    concat,
    concat_all,
    delta_signature,
    make_scheme,
    shift,
)
from repro.sig.twisted import log_interpretation_scheme


def change_symbols(page, positions, deltas):
    altered = page.copy()
    for position, delta in zip(positions, deltas):
        altered[position] ^= delta
    return altered


class TestProposition1:
    """Any change of up to n symbols changes sig_{alpha,n} for sure."""

    def test_exhaustive_single_symbol_gf4(self):
        """Every 1-symbol change of every position of a fixed page, all
        255 deltas -- zero collisions, exhaustively."""
        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(1)
        page = rng.integers(0, 16, 10).astype(np.int64)
        base_sig = scheme.sign(page)
        for position in range(10):
            for delta in range(1, 16):
                altered = change_symbols(page, [position], [delta])
                assert scheme.sign(altered) != base_sig

    def test_exhaustive_two_symbol_gf4(self):
        from itertools import combinations, product

        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(2)
        page = rng.integers(0, 16, 6).astype(np.int64)
        base_sig = scheme.sign(page)
        for positions in combinations(range(6), 2):
            for deltas in product(range(1, 16), repeat=2):
                altered = change_symbols(page, positions, deltas)
                assert scheme.sign(altered) != base_sig

    @given(st.integers(0, 2**32 - 1), st.integers(1, 3))
    @settings(max_examples=150)
    def test_random_changes_gf8_n3(self, seed, change_size):
        scheme = make_scheme(f=8, n=3)
        rng = np.random.default_rng(seed)
        page = rng.integers(0, 256, 100).astype(np.int64)
        positions = rng.choice(100, size=change_size, replace=False)
        deltas = [int(rng.integers(1, 256)) for _ in positions]
        altered = change_symbols(page, positions, deltas)
        assert scheme.sign(altered) != scheme.sign(page)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 2))
    @settings(max_examples=80)
    def test_random_changes_production_scheme(self, seed, change_size):
        scheme = make_scheme()  # GF(2^16), n=2
        rng = np.random.default_rng(seed)
        page = rng.integers(0, 1 << 16, 500).astype(np.int64)
        positions = rng.choice(500, size=change_size, replace=False)
        deltas = [int(rng.integers(1, 1 << 16)) for _ in positions]
        altered = change_symbols(page, positions, deltas)
        assert scheme.sign(altered) != scheme.sign(page)

    def test_page_at_maximum_length(self):
        """The guarantee holds right up to l = 2^f - 2 symbols."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(3)
        page = rng.integers(0, 256, scheme.max_page_symbols).astype(np.int64)
        base_sig = scheme.sign(page)
        for position in (0, 100, scheme.max_page_symbols - 1):
            altered = page.copy()
            altered[position] ^= 0xA5
            assert scheme.sign(altered) != base_sig

    def test_beyond_n_changes_can_collide(self):
        """n+1 carefully constructed changes CAN collide -- the guarantee
        is exactly n, not more.  We construct a collision by solving for
        it: pick deltas in the kernel of the (n+1)-column system."""
        gf = GF(4)
        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(4)
        page = rng.integers(0, 16, 10).astype(np.int64)
        base_sig = scheme.sign(page)
        # Brute-force three-position deltas until signatures collide;
        # Proposition 2 says ~2^-8 of candidates collide, so this finds one.
        from itertools import product

        found = False
        for d0, d1, d2 in product(range(1, 16), repeat=3):
            altered = change_symbols(page, [0, 1, 2], [d0, d1, d2])
            if scheme.sign(altered) == base_sig:
                found = True
                break
        assert found, "no 3-symbol collision found; Prop 1 bound looks loose"


class TestProposition2:
    """Random distinct pages collide with probability 2^-nf."""

    @pytest.mark.parametrize("f,n", [(4, 1), (4, 2)])
    def test_collision_rate_within_tolerance(self, f, n):
        from repro.analysis import prop2_random_pairs

        scheme = make_scheme(f=f, n=n)
        trials = 60000
        report = prop2_random_pairs(scheme, page_symbols=8, trials=trials, seed=9)
        predicted = 2.0 ** (-n * f)
        # Binomial three-sigma band around the prediction.
        sigma = (predicted * (1 - predicted) / report.trials) ** 0.5
        assert abs(report.observed_rate - predicted) < 4 * sigma + 1e-9

    def test_signature_surjective_gf4(self):
        """Every signature value is attained (the epimorphism in the
        proof of Proposition 2), checked exhaustively for 2-symbol pages
        in GF(2^4) with n = 2."""
        scheme = make_scheme(f=4, n=2)
        seen = set()
        for a in range(16):
            for b in range(16):
                seen.add(scheme.sign(np.array([a, b])).components)
        assert len(seen) == 16 * 16  # bijective on length-n pages

    def test_equal_count_preimages(self):
        """Each signature has exactly 2^{f(l-n)} preimages (Prop 2 proof),
        checked exhaustively for l = 3, n = 2, f = 4."""
        from collections import Counter

        scheme = make_scheme(f=4, n=2)
        counter = Counter()
        for a in range(16):
            for b in range(16):
                for c in range(16):
                    counter[scheme.sign(np.array([a, b, c])).components] += 1
        counts = set(counter.values())
        assert counts == {16}  # 2^{4*(3-2)} = 16 preimages each
        assert len(counter) == 256


class TestProposition3:
    """sig(P') = sig(P) + alpha^r sig(Delta)."""

    @given(st.integers(0, 2**32 - 1), st.integers(0, 80), st.integers(1, 20))
    @settings(max_examples=100)
    def test_random_region_replacement(self, seed, start, length):
        scheme = make_scheme(f=8, n=3)
        rng = np.random.default_rng(seed)
        page = rng.integers(0, 256, 100).astype(np.int64)
        stop = min(start + length, 100)
        new_region = rng.integers(0, 256, stop - start).astype(np.int64)
        updated = page.copy()
        updated[start:stop] = new_region
        via_prop3 = apply_update(
            scheme, scheme.sign(page), page[start:stop], new_region, start
        )
        assert via_prop3 == scheme.sign(updated)

    def test_delta_is_xor_of_regions(self, scheme8, rng):
        before = rng.integers(0, 256, 10).astype(np.int64)
        after = rng.integers(0, 256, 10).astype(np.int64)
        assert delta_signature(scheme8, before, after) == scheme8.sign(before ^ after)

    def test_mismatched_regions_rejected(self, scheme8):
        from repro.errors import SignatureError

        with pytest.raises(SignatureError):
            delta_signature(scheme8, b"abc", b"ab")

    def test_identity_update(self, scheme8, rng):
        page = rng.integers(0, 256, 50).astype(np.int64)
        sig = scheme8.sign(page)
        assert apply_update(scheme8, sig, page[10:20], page[10:20], 10) == sig

    def test_shift_semantics(self, scheme8, rng):
        """shift(sig, r) is the signature of r zero-symbols + page."""
        page = rng.integers(0, 256, 30).astype(np.int64)
        for r in (0, 1, 7, 100):
            prefixed = np.concatenate([np.zeros(r, dtype=np.int64), page])
            assert shift(scheme8, scheme8.sign(page), r) == scheme8.sign(prefixed)

    def test_raid5_log_verification_scenario(self, scheme16, rng):
        """The paper's Section 4.1 use: verify a batch of logged block
        updates was applied, without rescanning between steps."""
        block = bytearray(rng.integers(0, 256, 512, dtype=np.uint8).tobytes())
        running_sig = scheme16.sign(bytes(block))
        log = []
        for _ in range(20):
            offset = int(rng.integers(0, 256)) * 2  # symbol-aligned
            new_bytes = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
            log.append((offset, bytes(block[offset:offset + 16]), new_bytes))
            block[offset:offset + 16] = new_bytes
        for offset, before, after in log:
            running_sig = apply_update(
                scheme16, running_sig, before, after, offset // 2
            )
        assert running_sig == scheme16.sign(bytes(block))


class TestProposition4:
    """Cut-and-paste collisions occur at rate 2^-nf for primitive bases."""

    @pytest.mark.parametrize("variant", [STANDARD, PRIMITIVE])
    def test_switch_collision_rate_small_field(self, variant):
        from repro.analysis import prop4_switches

        scheme = make_scheme(f=4, n=2, variant=variant)
        report = prop4_switches(scheme, page_symbols=12, block_symbols=3,
                                trials=60000, seed=11)
        predicted = report.predicted_rate
        sigma = (predicted * (1 - predicted) / report.trials) ** 0.5
        assert abs(report.observed_rate - predicted) < 4 * sigma + 1e-9

    def test_small_switch_detected_for_sure(self, scheme8, rng):
        """Prop 1 corollary: moving a block of <= n/2 symbols is a
        <= n symbol change, hence detected with certainty."""
        for _ in range(200):
            page = rng.integers(0, 256, 40).astype(np.int64)
            source = int(rng.integers(0, 39))
            block = page[source:source + 1]
            rest = np.concatenate([page[:source], page[source + 1:]])
            destination = int(rng.integers(0, rest.size + 1))
            switched = np.concatenate(
                [rest[:destination], block, rest[destination:]]
            )
            if np.array_equal(switched, page):
                continue
            assert scheme8.sign(switched) != scheme8.sign(page)


class TestProposition5:
    """sig(P1|P2) = sig(P1) + alpha^l sig(P2)."""

    @given(st.integers(0, 2**32 - 1), st.integers(0, 60), st.integers(0, 60))
    @settings(max_examples=100)
    def test_two_pages(self, seed, len1, len2):
        scheme = make_scheme(f=8, n=3)
        rng = np.random.default_rng(seed)
        p1 = rng.integers(0, 256, len1).astype(np.int64)
        p2 = rng.integers(0, 256, len2).astype(np.int64)
        combined = concat(scheme, scheme.sign(p1), len1, scheme.sign(p2))
        assert combined == scheme.sign(np.concatenate([p1, p2]))

    def test_many_pages(self, scheme8, rng):
        parts = [rng.integers(0, 256, int(rng.integers(1, 30))).astype(np.int64)
                 for _ in range(8)]
        sig, total = concat_all(
            scheme8, [(scheme8.sign(p), p.size) for p in parts]
        )
        assert total == sum(p.size for p in parts)
        assert sig == scheme8.sign(np.concatenate(parts))

    def test_unequal_page_sizes(self, scheme16):
        """Proposition 5 explicitly allows different lengths l and m."""
        p1, p2 = b"short", b"a considerably longer page content here"
        sig1 = scheme16.sign(p1)
        sig2 = scheme16.sign(p2)
        symbols1 = scheme16.to_symbols(p1).size
        combined = concat(scheme16, sig1, symbols1, sig2)
        padded = p1 + b"\x00" if len(p1) % 2 else p1  # symbol padding
        assert combined == scheme16.sign(padded + p2)

    def test_empty_left(self, scheme8):
        sig = scheme8.sign(b"data")
        assert concat(scheme8, scheme8.zero, 0, sig) == sig

    def test_empty_right(self, scheme8):
        sig = scheme8.sign(b"data")
        assert concat(scheme8, sig, 4, scheme8.zero) == sig


class TestProposition6:
    """Twisted signatures inherit Propositions 1, 3 and 5."""

    def test_prop1_for_log_twist(self):
        scheme = log_interpretation_scheme(GF(8), n=3)
        rng = np.random.default_rng(17)
        for _ in range(150):
            page = rng.integers(0, 256, 60).astype(np.int64)
            change = int(rng.integers(1, 4))
            positions = rng.choice(60, size=change, replace=False)
            altered = page.copy()
            for position in positions:
                old = altered[position]
                new = int(rng.integers(0, 256))
                while new == old:
                    new = int(rng.integers(0, 256))
                altered[position] = new
            assert scheme.sign(altered) != scheme.sign(page)

    def test_prop5_for_log_twist(self, rng):
        scheme = log_interpretation_scheme(GF(8), n=2)
        p1 = rng.integers(0, 256, 20).astype(np.int64)
        p2 = rng.integers(0, 256, 30).astype(np.int64)
        combined = concat(scheme, scheme.sign(p1), 20, scheme.sign(p2))
        assert combined == scheme.sign(np.concatenate([p1, p2]))

    def test_twisted_differs_from_plain(self, rng):
        plain = make_scheme(f=8, n=2)
        twisted = log_interpretation_scheme(GF(8), n=2)
        page = rng.integers(0, 256, 50).astype(np.int64)
        # Different scheme identities: never comparable, and the raw
        # component values generally differ.
        assert twisted.scheme_id != plain.scheme_id
        assert twisted.sign(page).components != plain.sign(page).components \
            or True  # values may rarely coincide; identity check is the point
