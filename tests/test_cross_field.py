"""Cross-field sweeps: every supported GF(2^f) behaves identically.

The paper deploys f in {8, 16}; the library supports 2..16 so collision
experiments can run in observable regimes.  These sweeps pin the whole
range: field axioms, proposition behaviour, and signature serialization
must hold for every f -- any table-construction bug for an unusual
width shows up here.
"""

import numpy as np
import pytest

from repro.gf import GF
from repro.sig import (
    PRIMITIVE,
    STANDARD,
    Signature,
    apply_update,
    concat,
    make_scheme,
)

ALL_F = list(range(2, 17))


@pytest.mark.parametrize("f", ALL_F)
class TestFieldSweep:
    def test_inverses(self, f):
        field = GF(f)
        rng = np.random.default_rng(f)
        samples = rng.integers(1, field.size, min(64, field.order))
        for a in samples:
            assert field.mul(int(a), field.inv(int(a))) == 1

    def test_axioms_sampled(self, f):
        field = GF(f)
        rng = np.random.default_rng(f + 100)
        for _ in range(30):
            a, b, c = (int(v) for v in rng.integers(0, field.size, 3))
            assert field.mul(a, b) == field.mul(b, a)
            assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))
            assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    def test_alpha_cycles_whole_group(self, f):
        field = GF(f)
        assert field.element_order(field.alpha) == field.order

    def test_fermat(self, f):
        field = GF(f)
        rng = np.random.default_rng(f + 200)
        for a in rng.integers(1, field.size, 16):
            assert field.pow(int(a), field.order) == 1


@pytest.mark.parametrize("f", [2, 3, 4, 5, 8, 11, 13, 16])
@pytest.mark.parametrize("variant", [STANDARD, PRIMITIVE])
class TestSchemeSweep:
    def _scheme(self, f, variant):
        n = 2 if f <= 3 else 3
        return make_scheme(f=f, n=n, variant=variant)

    def test_prop1_sampled(self, f, variant):
        scheme = self._scheme(f, variant)
        if variant == PRIMITIVE and scheme.n > 2:
            pytest.skip("Prop 1 is proven for sig (and sig' only at n<=2)")
        field = scheme.field
        rng = np.random.default_rng(f)
        size = min(20, scheme.max_page_symbols)
        for _ in range(30):
            page = rng.integers(0, field.size, size).astype(np.int64)
            base_sig = scheme.sign(page)
            k = int(rng.integers(1, scheme.n + 1))
            positions = rng.choice(size, size=k, replace=False)
            altered = page.copy()
            for position in positions:
                altered[position] ^= int(rng.integers(1, field.size))
            assert scheme.sign(altered) != base_sig

    def test_prop3(self, f, variant):
        scheme = self._scheme(f, variant)
        field = scheme.field
        rng = np.random.default_rng(f + 1)
        size = min(20, scheme.max_page_symbols)
        page = rng.integers(0, field.size, size).astype(np.int64)
        start = size // 3
        stop = min(start + 4, size)
        new_region = rng.integers(0, field.size, stop - start).astype(np.int64)
        updated = page.copy()
        updated[start:stop] = new_region
        assert apply_update(
            scheme, scheme.sign(page), page[start:stop], new_region, start
        ) == scheme.sign(updated)

    def test_prop5(self, f, variant):
        scheme = self._scheme(f, variant)
        field = scheme.field
        rng = np.random.default_rng(f + 2)
        half = min(8, scheme.max_page_symbols // 2)
        p1 = rng.integers(0, field.size, half).astype(np.int64)
        p2 = rng.integers(0, field.size, half).astype(np.int64)
        assert concat(scheme, scheme.sign(p1), half, scheme.sign(p2)) == \
            scheme.sign(np.concatenate([p1, p2]))

    def test_serialization(self, f, variant):
        scheme = self._scheme(f, variant)
        rng = np.random.default_rng(f + 3)
        page = rng.integers(0, scheme.field.size,
                            min(10, scheme.max_page_symbols)).astype(np.int64)
        sig = scheme.sign(page)
        assert Signature.from_bytes(sig.to_bytes(), scheme.scheme_id) == sig

    def test_scalar_matches_vectorized(self, f, variant):
        scheme = self._scheme(f, variant)
        rng = np.random.default_rng(f + 4)
        page = rng.integers(0, scheme.field.size,
                            min(15, scheme.max_page_symbols)).astype(np.int64)
        assert scheme.sign(page) == scheme.sign_scalar(page)
