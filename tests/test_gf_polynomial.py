"""Unit tests for binary polynomial arithmetic over GF(2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GaloisFieldError
from repro.gf import polynomial as P

polys = st.integers(min_value=0, max_value=(1 << 20) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 20) - 1)


class TestDegree:
    def test_zero_polynomial(self):
        assert P.degree(0) == -1

    def test_constant_one(self):
        assert P.degree(1) == 0

    def test_example_from_paper(self):
        # 101001 <-> x^5 + x^3 + 1 (Section 3).
        assert P.degree(0b101001) == 5

    def test_negative_rejected(self):
        with pytest.raises(GaloisFieldError):
            P.degree(-1)


class TestAddMul:
    def test_add_is_xor(self):
        assert P.add(0b1010, 0b0110) == 0b1100

    def test_add_self_cancels(self):
        assert P.add(0b1011, 0b1011) == 0

    def test_mul_by_zero(self):
        assert P.mul(0b1011, 0) == 0
        assert P.mul(0, 0b1011) == 0

    def test_mul_by_one(self):
        assert P.mul(0b1011, 1) == 0b1011

    def test_freshman_dream(self):
        # (x+1)^2 = x^2 + 1 in characteristic 2.
        assert P.mul(0b11, 0b11) == 0b101

    def test_mul_degrees_add(self):
        a, b = 0b1101, 0b101
        assert P.degree(P.mul(a, b)) == P.degree(a) + P.degree(b)

    @given(polys, polys)
    def test_mul_commutative(self, a, b):
        assert P.mul(a, b) == P.mul(b, a)

    @given(polys, polys, polys)
    @settings(max_examples=50)
    def test_mul_associative(self, a, b, c):
        assert P.mul(P.mul(a, b), c) == P.mul(a, P.mul(b, c))

    @given(polys, polys, polys)
    @settings(max_examples=50)
    def test_distributive(self, a, b, c):
        assert P.mul(a, b ^ c) == P.mul(a, b) ^ P.mul(a, c)


class TestDivMod:
    def test_division_by_zero(self):
        with pytest.raises(GaloisFieldError):
            P.divmod_poly(0b101, 0)

    @given(polys, nonzero_polys)
    def test_divmod_identity(self, a, b):
        q, r = P.divmod_poly(a, b)
        assert P.mul(q, b) ^ r == a
        assert P.degree(r) < P.degree(b)

    def test_mod_reduces(self):
        assert P.mod(0b100011101, 0b100011101) == 0

    @given(polys, nonzero_polys, nonzero_polys)
    @settings(max_examples=50)
    def test_mulmod_matches_mul_then_mod(self, a, b, m):
        assert P.mulmod(a, b, m) == P.mod(P.mul(a, b), m)


class TestPowmod:
    def test_power_zero(self):
        assert P.powmod(0b101, 0, 0b1011) == 1

    def test_power_one(self):
        assert P.powmod(0b101, 1, 0b1011) == P.mod(0b101, 0b1011)

    def test_negative_exponent_rejected(self):
        with pytest.raises(GaloisFieldError):
            P.powmod(0b101, -1, 0b1011)

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=40))
    @settings(max_examples=50)
    def test_matches_repeated_multiplication(self, base, exponent):
        modulus = 0b100011101  # degree-8 primitive
        expected = 1
        for _ in range(exponent):
            expected = P.mulmod(expected, base, modulus)
        assert P.powmod(base, exponent, modulus) == expected


class TestGcd:
    def test_gcd_with_zero(self):
        assert P.gcd(0b1011, 0) == 0b1011

    def test_gcd_of_multiples(self):
        a = 0b111
        assert P.gcd(P.mul(a, 0b1101), P.mul(a, 0b10)) % a == 0

    @given(nonzero_polys, nonzero_polys)
    @settings(max_examples=50)
    def test_gcd_divides_both(self, a, b):
        g = P.gcd(a, b)
        assert P.mod(a, g) == 0
        assert P.mod(b, g) == 0


class TestIrreducibility:
    def test_known_irreducible(self):
        assert P.is_irreducible(0b111)       # x^2+x+1
        assert P.is_irreducible(0b1011)      # x^3+x+1
        assert P.is_irreducible(0b100011101)  # the f=8 generator

    def test_known_reducible(self):
        assert not P.is_irreducible(P.mul(0b111, 0b11))
        assert not P.is_irreducible(0b101)   # x^2+1 = (x+1)^2

    def test_constants_not_irreducible(self):
        assert not P.is_irreducible(0)
        assert not P.is_irreducible(1)

    def test_degree_one_irreducible(self):
        assert P.is_irreducible(0b10)
        assert P.is_irreducible(0b11)

    def test_products_of_irreducibles_are_reducible(self):
        irreducibles = [p for p in range(2, 64) if P.is_irreducible(p)]
        for a in irreducibles[:5]:
            for b in irreducibles[:5]:
                assert not P.is_irreducible(P.mul(a, b))


class TestPrimitivity:
    def test_primitive_implies_irreducible(self):
        for poly in range(2, 1 << 10):
            if P.is_primitive(poly):
                assert P.is_irreducible(poly)

    def test_irreducible_but_not_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 divides x^5 - 1: order of x is 5, not 15.
        poly = 0b11111
        assert P.is_irreducible(poly)
        assert not P.is_primitive(poly)

    def test_paper_generators_primitive(self):
        assert P.is_primitive(0x11D)
        assert P.is_primitive(0x1002D)
        assert P.is_primitive(0x1100B)  # alternate f=16 generator


class TestSearch:
    @pytest.mark.parametrize("degree_f", range(1, 13))
    def test_found_polynomial_is_primitive(self, degree_f):
        poly = P.find_primitive_polynomial(degree_f)
        assert P.degree(poly) == degree_f
        assert P.is_primitive(poly)

    def test_smallest_is_found(self):
        # No primitive polynomial of degree 4 below x^4 + x + 1.
        found = P.find_primitive_polynomial(4)
        assert found == 0b10011
        for candidate in range(1 << 4, found):
            assert not P.is_primitive(candidate)

    def test_bad_degree_rejected(self):
        with pytest.raises(GaloisFieldError):
            P.find_primitive_polynomial(0)


class TestPolyStr:
    def test_zero(self):
        assert P.poly_str(0) == "0"

    def test_paper_example(self):
        assert P.poly_str(0b101001) == "x^5 + x^3 + 1"

    def test_linear(self):
        assert P.poly_str(0b11) == "x + 1"
