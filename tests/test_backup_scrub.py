"""Tests for verified restore and disk scrubbing (silent corruption)."""

import numpy as np
import pytest

from repro.backup import BackupEngine
from repro.errors import BackupError
from repro.sig import make_scheme
from repro.sim import SimDisk


def engine_with_volume(nbytes=8192, seed=0, page_bytes=512):
    engine = BackupEngine(make_scheme(f=16, n=2), SimDisk(),
                          page_bytes=page_bytes)
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()
    engine.backup("vol", image)
    return engine, image


class TestScrub:
    def test_clean_volume(self):
        engine, _image = engine_with_volume()
        assert engine.scrub("vol") == []

    def test_single_bit_rot_detected(self):
        """A one-bit flip is a 1-symbol change: certain detection."""
        engine, _image = engine_with_volume()
        engine.disk.corrupt_page("vol", 7, position=100, xor=0x01)
        assert engine.scrub("vol") == [7]

    def test_multiple_pages_rotted(self):
        engine, _image = engine_with_volume()
        for page in (1, 5, 11):
            engine.disk.corrupt_page("vol", page, position=3)
        assert engine.scrub("vol") == [1, 5, 11]

    def test_every_corruption_position_detected(self):
        """Exhaustive over positions within one page: a 1-byte rot is a
        <= 1-symbol change, so Proposition 1 guarantees detection at
        EVERY position -- no lucky byte."""
        engine, _image = engine_with_volume(nbytes=512, page_bytes=512)
        for position in range(0, 512, 7):
            engine.disk.corrupt_page("vol", 0, position=position, xor=0x5A)
            assert engine.scrub("vol") == [0], position
            engine.disk.corrupt_page("vol", 0, position=position, xor=0x5A)  # undo

    def test_unknown_volume(self):
        engine, _image = engine_with_volume()
        with pytest.raises(BackupError):
            engine.scrub("nope")


class TestVerifiedRestore:
    def test_clean_restore_passes(self):
        engine, image = engine_with_volume()
        assert engine.restore("vol", verify=True)[:len(image)] == image

    def test_corrupted_restore_raises(self):
        engine, _image = engine_with_volume()
        engine.disk.corrupt_page("vol", 2, position=9)
        with pytest.raises(BackupError, match="pages \\[2\\]"):
            engine.restore("vol", verify=True)

    def test_unverified_restore_returns_bad_data(self):
        """The contrast: without verify the rot flows through silently."""
        engine, image = engine_with_volume()
        engine.disk.corrupt_page("vol", 2, position=9)
        restored = engine.restore("vol")
        assert restored[:len(image)] != image

    def test_rewrite_heals(self):
        """A fresh backup pass rewrites the rotted page (its signature
        no longer matches the recomputed map entry is irrelevant -- the
        pass compares RAM to the map, so we heal by re-running backup
        after scrub flags the page)."""
        engine, image = engine_with_volume()
        engine.disk.corrupt_page("vol", 4, position=50)
        assert engine.scrub("vol") == [4]
        # Operator action: force a rewrite of the flagged page by
        # invalidating its map entry and re-running the backup.
        engine.signature_map("vol").signatures[4] = \
            engine.scheme.zero
        report = engine.backup("vol", image)
        assert report.pages_written >= 1
        assert engine.scrub("vol") == []
        assert engine.restore("vol", verify=True)[:len(image)] == image
