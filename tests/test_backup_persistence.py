"""Tests for signature-map persistence and cold-restart backups."""

import numpy as np
import pytest

from repro.backup import BackupEngine
from repro.errors import BackupError
from repro.sig import make_scheme
from repro.sim import SimClock, SimDisk


def random_image(nbytes, seed=0):
    rng = np.random.default_rng(seed)
    return bytearray(rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes())


class TestExportImport:
    def test_roundtrip_preserves_maps(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        engine.backup("a", bytes(random_image(4096, seed=1)))
        engine.backup("b", bytes(random_image(2048, seed=2)))
        archive = engine.export_maps()
        fresh = BackupEngine(scheme, SimDisk(), page_bytes=512)
        fresh.import_maps(archive)
        assert fresh.signature_map("a") == engine.signature_map("a")
        assert fresh.signature_map("b") == engine.signature_map("b")

    def test_cold_restart_skips_unchanged_pages(self):
        """A brand-new engine process resumes incremental backups: the
        map, not RAM state, carries the change knowledge."""
        scheme = make_scheme(f=16, n=2)
        disk = SimDisk(SimClock())
        first = BackupEngine(scheme, disk, page_bytes=512)
        image = random_image(8192, seed=3)
        first.backup("vol", bytes(image))
        archive = first.export_maps()

        second = BackupEngine(scheme, disk, page_bytes=512)  # "new process"
        second.import_maps(archive)
        report = second.backup("vol", bytes(image))
        assert report.pages_written == 0
        image[100] ^= 1
        report = second.backup("vol", bytes(image))
        assert report.pages_written == 1

    def test_tree_mode_rebuilds_trees(self):
        scheme = make_scheme(f=16, n=2)
        disk = SimDisk()
        first = BackupEngine(scheme, disk, page_bytes=512, use_tree=True)
        image = random_image(64 * 512, seed=4)
        first.backup("vol", bytes(image))
        second = BackupEngine(scheme, disk, page_bytes=512, use_tree=True)
        second.import_maps(first.export_maps())
        image[3000] ^= 1
        report = second.backup("vol", bytes(image))
        assert report.pages_written == 1
        assert report.tree_comparisons > 0  # the tree path was used

    def test_empty_archive(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        fresh = BackupEngine(scheme, SimDisk(), page_bytes=512)
        fresh.import_maps(engine.export_maps())
        with pytest.raises(BackupError):
            fresh.signature_map("anything")

    def test_truncated_archive_rejected(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        engine.backup("a", bytes(random_image(1024, seed=5)))
        archive = engine.export_maps()
        fresh = BackupEngine(scheme, SimDisk(), page_bytes=512)
        with pytest.raises(BackupError):
            fresh.import_maps(archive[:-3])

    def test_import_replaces_state(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        engine.backup("old", bytes(random_image(1024, seed=6)))
        other = BackupEngine(scheme, SimDisk(), page_bytes=512)
        other.backup("new", bytes(random_image(1024, seed=7)))
        engine.import_maps(other.export_maps())
        with pytest.raises(BackupError):
            engine.signature_map("old")
        assert engine.signature_map("new") is not None
