"""Tests for the operator-overloaded GFElement wrapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GaloisFieldError, NotInvertibleError
from repro.gf import GF, GFElement


@pytest.fixture(scope="module")
def gf():
    return GF(8)


class TestConstruction:
    def test_from_field_method(self, gf):
        element = gf.element(7)
        assert isinstance(element, GFElement)
        assert element.value == 7

    def test_out_of_range_rejected(self, gf):
        with pytest.raises(GaloisFieldError):
            GFElement(gf, 256)


class TestOperators:
    def test_add_is_xor(self, gf):
        assert (gf.element(0b1010) + gf.element(0b0110)).value == 0b1100

    def test_add_int_operand(self, gf):
        assert (gf.element(5) + 3).value == 6
        assert (3 + gf.element(5)).value == 6

    def test_sub_equals_add(self, gf):
        a, b = gf.element(77), gf.element(13)
        assert (a - b) == (a + b)

    def test_neg_is_identity(self, gf):
        a = gf.element(42)
        assert -a == a

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_mul_matches_field(self, x, y):
        gf = GF(8)
        assert (gf.element(x) * gf.element(y)).value == gf.mul(x, y)

    def test_mul_by_int(self, gf):
        assert (gf.element(3) * 2).value == gf.mul(3, 2)
        assert (2 * gf.element(3)).value == gf.mul(3, 2)

    def test_truediv(self, gf):
        a, b = gf.element(100), gf.element(7)
        assert ((a / b) * b) == a

    def test_rtruediv(self, gf):
        b = gf.element(7)
        assert ((100 / b) * b).value == 100

    def test_division_by_zero(self, gf):
        with pytest.raises(NotInvertibleError):
            gf.element(5) / gf.element(0)

    def test_pow(self, gf):
        a = gf.element(3)
        assert (a ** 5).value == gf.pow(3, 5)
        assert (a ** -1) == a.inverse()

    def test_inverse(self, gf):
        for value in (1, 2, 7, 200, 255):
            assert (gf.element(value) * gf.element(value).inverse()).value == 1


class TestMixedFields:
    def test_cross_field_addition_rejected(self):
        with pytest.raises(GaloisFieldError):
            GF(8).element(1) + GF(16).element(1)

    def test_cross_field_multiplication_rejected(self):
        with pytest.raises(GaloisFieldError):
            GF(8).element(2) * GF(4).element(2)


class TestProtocol:
    def test_equality_with_int(self, gf):
        assert gf.element(9) == 9
        assert gf.element(9) != 10

    def test_hashable(self, gf):
        assert len({gf.element(1), gf.element(1), gf.element(2)}) == 2

    def test_bool(self, gf):
        assert gf.element(1)
        assert not gf.element(0)

    def test_int_conversion(self, gf):
        assert int(gf.element(77)) == 77

    def test_log_and_order(self, gf):
        assert gf.element(2).log() == 1
        assert gf.element(2).order() == gf.order
        assert gf.element(2).is_primitive()
        assert not gf.element(1).is_primitive()

    def test_repr(self, gf):
        assert "2^8" in repr(gf.element(3))
