"""Protocol matrix: the same workout across every configuration axis.

The signature protocols claim independence from the substrate and the
scheme parameters.  This module runs one standardized workout --
inserts through splits, searches from a stale client, the full update
quartet (normal/blind x true/pseudo), a conflict, a scan, deletes --
against the cartesian product of:

* file family: LH* / RP*;
* signature scheme: GF(2^16) n=2 (paper), GF(2^8) n=3, sig' variant;
* stored-signature mode on/off.
"""

import random

import pytest

from repro.sdds import LHFile, Record, RPFile, UpdateStatus
from repro.sig import PRIMITIVE, STANDARD, make_scheme

SCHEMES = {
    "gf16-n2": dict(f=16, n=2, variant=STANDARD),
    "gf8-n3": dict(f=8, n=3, variant=STANDARD),
    "gf16-n2-prime": dict(f=16, n=2, variant=PRIMITIVE),
}

FILES = {
    "lh": lambda scheme, stored: LHFile(
        scheme, capacity_records=20, store_signatures=stored
    ),
    "rp": lambda scheme, stored: RPFile(
        scheme, capacity_records=20, store_signatures=stored
    ),
}


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("file_kind", sorted(FILES))
@pytest.mark.parametrize("stored", [False, True])
def test_full_workout(scheme_name, file_kind, stored):
    scheme = make_scheme(**SCHEMES[scheme_name])
    file = FILES[file_kind](scheme, stored)
    client = file.client()
    # hash() of strings is randomized per process (PYTHONHASHSEED), which
    # made each run draw a different workload; seed deterministically so a
    # failing draw is reproducible.
    rng = random.Random(f"{scheme_name}|{file_kind}|{stored}")
    keys = rng.sample(range(1_000_000), 150)
    values = {}

    # Inserts drive the file through several splits.
    for key in keys:
        value = bytes([key % 251]) * 64
        assert client.insert(Record(key, value)).status == "inserted"
        values[key] = value
    assert file.bucket_count > 2
    file.check_placement()

    # A stale client finds everything.
    stale = file.client("stale")
    for key in rng.sample(keys, 40):
        result = stale.search(key)
        assert result.status == "found"
        assert result.record.value == values[key]

    # Update quartet.
    key = keys[0]
    before = values[key]
    assert client.update_normal(key, before, before).status == \
        UpdateStatus.PSEUDO
    after = bytes([(before[0] + 1) % 256]) * 64
    assert client.update_normal(key, before, after).status == \
        UpdateStatus.APPLIED
    values[key] = after
    assert client.update_blind(key, after).status == UpdateStatus.PSEUDO
    blind_after = bytes([(after[0] + 1) % 256]) * 64
    assert client.update_blind(key, blind_after).status == \
        UpdateStatus.APPLIED
    values[key] = blind_after

    # Conflict from a second client's stale before-image.
    other = file.client("other")
    second_key = keys[1]
    other_view = other.search(second_key).record.value
    client_view = client.search(second_key).record.value
    assert client.update_normal(
        second_key, client_view, b"W" * 64
    ).status == UpdateStatus.APPLIED
    assert other.update_normal(
        second_key, other_view, b"L" * 64
    ).status == UpdateStatus.CONFLICT
    values[second_key] = b"W" * 64

    # Scan finds a planted marker (length chosen valid for both fields).
    marker_key = keys[2]
    client.update_blind(marker_key, b"..MARKER" + b"f" * 56)
    values[marker_key] = b"..MARKER" + b"f" * 56
    scan = client.scan(b"MARKER")
    assert any(record.key == marker_key for record in scan.records)

    # Deletes, then final consistency sweep.
    for key in rng.sample(keys, 30):
        assert client.delete(key).status == "deleted"
        del values[key]
    file.check_placement()
    assert file.record_count == len(values)
    for key, value in values.items():
        assert client.search(key).record.value == value
