"""Cross-cutting algebra tests: twisted schemes, small fields, compositions.

The Propositions compose: a shift of a concat of a delta-update must
still predict the from-scratch signature.  These tests exercise such
compositions, plus the algebra over twisted schemes (Proposition 6 says
everything carries over) and over non-byte fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import GF
from repro.sig import (
    SignatureMap,
    SignatureTree,
    apply_update,
    concat,
    concat_all,
    delta_signature,
    log_interpretation_scheme,
    make_scheme,
    shift,
)


class TestCompositions:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_update_then_concat(self, seed):
        """sig(P1'|P2) from sig(P1), the delta, and sig(P2)."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(seed)
        p1 = rng.integers(0, 256, 40).astype(np.int64)
        p2 = rng.integers(0, 256, 30).astype(np.int64)
        new_region = rng.integers(0, 256, 5).astype(np.int64)
        p1_updated = p1.copy()
        p1_updated[10:15] = new_region
        sig_p1_updated = apply_update(
            scheme, scheme.sign(p1), p1[10:15], new_region, 10
        )
        combined = concat(scheme, sig_p1_updated, 40, scheme.sign(p2))
        assert combined == scheme.sign(np.concatenate([p1_updated, p2]))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_concat_then_update_across_boundary(self, seed):
        """A delta applied to the concatenation, positioned inside P2."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(seed)
        p1 = rng.integers(0, 256, 20).astype(np.int64)
        p2 = rng.integers(0, 256, 20).astype(np.int64)
        whole_sig = concat(scheme, scheme.sign(p1), 20, scheme.sign(p2))
        whole = np.concatenate([p1, p2])
        new_region = rng.integers(0, 256, 4).astype(np.int64)
        updated = whole.copy()
        updated[25:29] = new_region
        assert apply_update(
            scheme, whole_sig, whole[25:29], new_region, 25
        ) == scheme.sign(updated)

    def test_shift_distributes_over_xor(self, rng):
        scheme = make_scheme(f=8, n=2)
        a = scheme.sign(rng.integers(0, 256, 20).astype(np.int64))
        b = scheme.sign(rng.integers(0, 256, 20).astype(np.int64))
        assert shift(scheme, a ^ b, 7) == shift(scheme, a, 7) ^ shift(scheme, b, 7)

    def test_shift_composes_additively(self, rng):
        scheme = make_scheme(f=8, n=2)
        sig = scheme.sign(rng.integers(0, 256, 20).astype(np.int64))
        assert shift(scheme, shift(scheme, sig, 3), 4) == shift(scheme, sig, 7)

    def test_delta_of_delta_cancels(self, rng):
        scheme = make_scheme(f=8, n=2)
        before = rng.integers(0, 256, 10).astype(np.int64)
        after = rng.integers(0, 256, 10).astype(np.int64)
        forward = delta_signature(scheme, before, after)
        backward = delta_signature(scheme, after, before)
        assert forward == backward  # characteristic 2
        assert (forward ^ backward).is_zero


class TestTwistedAlgebra:
    """Proposition 6: the full algebra works on twisted schemes."""

    @pytest.fixture(scope="class")
    def twisted(self):
        return log_interpretation_scheme(GF(8), n=2)

    def test_prop3_on_twisted(self, twisted, rng):
        page = rng.integers(0, 256, 50).astype(np.int64)
        new_region = rng.integers(0, 256, 6).astype(np.int64)
        updated = page.copy()
        updated[20:26] = new_region
        assert apply_update(
            twisted, twisted.sign(page), page[20:26], new_region, 20
        ) == twisted.sign(updated)

    def test_compound_map_on_twisted(self, twisted, rng):
        data = rng.integers(0, 256, 1000).astype(np.int64)
        map_a = SignatureMap.compute(twisted, data, 100)
        changed = data.copy()
        changed[550] ^= 3
        map_b = SignatureMap.compute(twisted, changed, 100)
        assert map_a.changed_pages(map_b) == [5]

    def test_tree_on_twisted(self, twisted, rng):
        data = rng.integers(0, 256, 800).astype(np.int64)
        smap = SignatureMap.compute(twisted, data, 50)
        tree = SignatureTree.from_map(smap, fanout=4)
        assert tree.root.signature == twisted.sign(data, strict=False)


class TestSmallFieldIntegration:
    """The full stack over GF(2^4): the experiment field behaves."""

    def test_map_and_tree_in_gf4(self):
        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 16, 70).astype(np.int64)
        smap = SignatureMap.compute(scheme, data, 10)
        assert smap.page_count == 7
        tree = SignatureTree.from_map(smap, fanout=3)
        assert tree.root.signature == scheme.sign(data, strict=False)

    def test_concat_all_in_gf4(self):
        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(2)
        parts = [rng.integers(0, 16, 5).astype(np.int64) for _ in range(4)]
        sig, total = concat_all(
            scheme, [(scheme.sign(p), p.size) for p in parts]
        )
        assert total == 20
        assert sig == scheme.sign(np.concatenate(parts), strict=False)

    def test_serialization_width_gf4(self):
        scheme = make_scheme(f=4, n=2)
        sig = scheme.sign(np.array([1, 2, 3]))
        assert len(sig.to_bytes()) == 2  # two 4-bit symbols, 1 byte each
