"""Tests for the distributed scan (Section 2.3) over the SDDS."""

import random

import pytest

from repro.errors import SDDSError
from repro.sdds import LHFile, Record
from repro.sdds.messages import SCAN_REQUEST
from repro.sig import make_scheme


def build_file(scheme=None, n_records=150, value_bytes=60, seed=4):
    scheme = scheme if scheme is not None else make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=40)
    client = file.client()
    rng = random.Random(seed)
    keys = rng.sample(range(1_000_000), n_records)
    for key in keys:
        payload = bytes(rng.randrange(ord("a"), ord("z") + 1)
                        for _ in range(value_bytes))
        client.insert(Record(key, payload))
    return file, client, keys


class TestScanGF16:
    """The paper's configuration: 2 B symbols over 1 B ASCII records --
    exercising the alignment handling of Section 5.2."""

    def test_finds_planted_string_even_offset(self):
        file, client, keys = build_file()
        client.update_blind(keys[3], b"ABCDEF" + b"x" * 54)
        result = client.scan(b"ABCDEF")
        assert any(r.key == keys[3] for r in result.records)

    def test_finds_planted_string_odd_offset(self):
        file, client, keys = build_file()
        client.update_blind(keys[3], b"z" + b"ABCDEF" + b"x" * 53)
        result = client.scan(b"ABCDEF")
        assert any(r.key == keys[3] for r in result.records)

    def test_finds_odd_length_pattern(self):
        """3-byte needle, like the paper's experiment."""
        file, client, keys = build_file()
        client.update_blind(keys[5], b"xxQRZxx" + b"y" * 53)
        result = client.scan(b"QRZ")
        assert any(r.key == keys[5] for r in result.records)

    def test_no_false_positives_in_results(self):
        """Las Vegas: the client filters, so every returned record truly
        contains the pattern."""
        file, client, keys = build_file()
        client.update_blind(keys[0], b"NEEDLE" + b"a" * 54)
        result = client.scan(b"NEEDLE")
        for record in result.records:
            assert b"NEEDLE" in record.value

    def test_matches_exhaustive_scan(self):
        file, client, keys = build_file()
        needle = b"th"
        expected = sorted(
            record.key
            for server in file.servers
            for record in server.bucket.records()
            if needle in record.value
        )
        result = client.scan(needle)
        assert [r.key for r in result.records] == expected

    def test_request_carries_signature_not_pattern(self):
        """The scan request payload is constant-size regardless of the
        pattern length: the client ships length + signature only."""
        file, client, keys = build_file()
        client.update_blind(keys[0], b"A" * 60)
        net = file.network

        def request_bytes(pattern):
            before = {k: v for k, v in net.stats.by_kind.items()}
            net_bytes_before = net.stats.bytes
            client.scan(pattern)
            return net.stats.bytes - net_bytes_before, \
                net.stats.by_kind[SCAN_REQUEST] - before.get(SCAN_REQUEST, 0)

        _, short_requests = request_bytes(b"ABABABAB")
        _, long_requests = request_bytes(b"ABABABABABABABABABABABAB")
        assert short_requests == long_requests == file.bucket_count

    def test_single_byte_pattern_rejected_for_gf16(self):
        file, client, _keys = build_file()
        with pytest.raises(SDDSError):
            client.scan(b"A")

    def test_empty_pattern_rejected(self):
        file, client, _keys = build_file()
        with pytest.raises(SDDSError):
            client.scan(b"")


class TestScanGF8:
    def test_single_alignment_suffices(self):
        file, client, keys = build_file(scheme=make_scheme(f=8, n=2))
        client.update_blind(keys[2], b"q" + b"PATTERN" + b"r" * 52)
        result = client.scan(b"PATTERN")
        assert any(r.key == keys[2] for r in result.records)

    def test_single_byte_pattern_allowed(self):
        file, client, keys = build_file(scheme=make_scheme(f=8, n=2))
        client.update_blind(keys[0], b"#" + b"z" * 59)
        result = client.scan(b"#")
        assert any(r.key == keys[0] for r in result.records)


class TestScanAcrossSplits:
    def test_scan_covers_all_buckets(self):
        """Records end up spread over many buckets; the scan must reach
        every one (the client broadcasts to all servers)."""
        file, client, keys = build_file(n_records=300)
        assert file.bucket_count > 2
        rng = random.Random(9)
        planted = rng.sample(keys, 10)
        for key in planted:
            client.update_blind(key, b"ZZTOKENZZ" + b"f" * 51)
        result = client.scan(b"ZZTOKENZZ")
        assert sorted(r.key for r in result.records) == sorted(planted)
