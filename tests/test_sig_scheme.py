"""Tests for the n-symbol signature schemes (construction + signing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageTooLongError, SignatureError
from repro.sig import (
    PRIMITIVE,
    STANDARD,
    AlgebraicSignatureScheme,
    Signature,
    make_base,
    make_scheme,
)


class TestBases:
    def test_consecutive_powers(self, gf8):
        base = make_base(gf8, 4, STANDARD)
        alpha = gf8.alpha
        for j, beta in enumerate(base.betas, start=1):
            assert beta == gf8.pow(alpha, j)

    def test_primitive_powers(self, gf8):
        base = make_base(gf8, 4, PRIMITIVE)
        alpha = gf8.alpha
        for i, beta in enumerate(base.betas):
            assert beta == gf8.pow(alpha, 1 << i)

    def test_primitive_variant_all_coordinates_primitive(self, gf8):
        base = make_base(gf8, 5, PRIMITIVE)
        for beta in base.betas:
            assert gf8.is_primitive_element(beta)

    def test_standard_variant_coordinates_not_all_primitive(self, gf8):
        # alpha^3 has order 255/gcd(3,255) = 85 < 255.
        base = make_base(gf8, 3, STANDARD)
        assert not gf8.is_primitive_element(base.betas[2])

    def test_variants_coincide_for_n2(self, gf16):
        """sig'_{alpha,2} == sig_{alpha,2} -- why the paper's production
        configuration enjoys both guarantee families."""
        standard = make_base(gf16, 2, STANDARD)
        primitive = make_base(gf16, 2, PRIMITIVE)
        assert standard.betas == primitive.betas

    def test_non_primitive_alpha_rejected(self, gf8):
        with pytest.raises(SignatureError):
            make_base(gf8, 2, STANDARD, alpha=1)

    def test_unknown_variant_rejected(self, gf8):
        with pytest.raises(SignatureError):
            make_base(gf8, 2, "banana")

    def test_bad_n_rejected(self, gf8):
        with pytest.raises(SignatureError):
            make_base(gf8, 0, STANDARD)

    def test_custom_alpha(self, gf8):
        alpha = next(a for a in gf8.primitive_elements() if a != gf8.alpha)
        base = make_base(gf8, 2, STANDARD, alpha=alpha)
        assert base.betas[0] == alpha


class TestSchemeConstruction:
    def test_paper_default(self):
        scheme = make_scheme()
        assert scheme.field.f == 16
        assert scheme.n == 2
        assert scheme.signature_bytes == 4  # the paper's 4 B vs SHA-1's 20 B

    def test_max_page_symbols(self):
        scheme = make_scheme(f=16, n=2)
        # "For f = 16, the limit on the page size is almost 128 KB."
        assert scheme.max_page_symbols == (1 << 16) - 2
        assert scheme.max_page_symbols * 2 == 131068  # bytes

    def test_equality_and_hash(self):
        assert make_scheme(f=8, n=2) == make_scheme(f=8, n=2)
        assert make_scheme(f=8, n=2) != make_scheme(f=8, n=3)
        assert len({make_scheme(f=8, n=2), make_scheme(f=8, n=2)}) == 1

    def test_repr(self):
        assert "n=2" in repr(make_scheme(f=8, n=2))


class TestSigning:
    def test_deterministic(self, scheme16):
        assert scheme16.sign(b"hello") == scheme16.sign(b"hello")

    def test_empty_page(self, scheme16):
        assert scheme16.sign(b"").is_zero

    def test_zero_page_signs_zero(self, scheme16):
        assert scheme16.sign(b"\x00" * 100).is_zero

    def test_accepts_bytes_and_symbols(self, scheme8):
        data = bytes(range(50))
        symbols = np.arange(50, dtype=np.int64)
        assert scheme8.sign(data) == scheme8.sign(symbols)

    def test_page_too_long_strict(self, scheme8):
        too_long = bytes(scheme8.max_page_symbols + 1)
        with pytest.raises(PageTooLongError):
            scheme8.sign(too_long)

    def test_page_too_long_relaxed(self, scheme8):
        too_long = b"x" * (scheme8.max_page_symbols + 10)
        sig = scheme8.sign(too_long, strict=False)
        assert isinstance(sig, Signature)

    @given(st.binary(max_size=120))
    @settings(max_examples=60)
    def test_scalar_matches_vectorized(self, data):
        """The paper's Section 5.1 loop and the numpy kernel agree."""
        scheme = make_scheme(f=8, n=3)
        assert scheme.sign(data) == scheme.sign_scalar(data)

    @given(st.binary(min_size=2, max_size=120))
    @settings(max_examples=40)
    def test_scalar_matches_vectorized_gf16(self, data):
        scheme = make_scheme(f=16, n=2)
        assert scheme.sign(data) == scheme.sign_scalar(data)

    def test_component_accessor(self, scheme8):
        sig = scheme8.sign(b"payload")
        for index in range(scheme8.n):
            assert scheme8.component(b"payload", index) == sig.components[index]

    def test_component_out_of_range(self, scheme8):
        with pytest.raises(SignatureError):
            scheme8.component(b"x", 3)

    def test_differs(self, scheme16):
        assert scheme16.differs(b"aaaa", b"aaab")
        assert not scheme16.differs(b"aaaa", b"aaaa")

    def test_first_component_is_krf_analogue(self, scheme8):
        """The 1st component with base alpha is 'a KRF calculated in a
        Galois field': sum p_i alpha^i."""
        data = [3, 1, 4, 1, 5]
        expected = 0
        gf = scheme8.field
        for i, p in enumerate(data):
            expected ^= gf.mul(p, gf.pow(gf.alpha, i))
        assert scheme8.sign(np.array(data)).components[0] == expected


class TestSignatureValue:
    def test_serialization_roundtrip(self, scheme16):
        sig = scheme16.sign(b"some data")
        raw = sig.to_bytes()
        assert len(raw) == 4
        assert Signature.from_bytes(raw, scheme16.scheme_id) == sig

    def test_serialization_roundtrip_gf8(self, scheme8):
        sig = scheme8.sign(b"some data")
        raw = sig.to_bytes()
        assert len(raw) == 3  # n=3 one-byte symbols
        assert Signature.from_bytes(raw, scheme8.scheme_id) == sig

    def test_bad_length_rejected(self, scheme16):
        with pytest.raises(SignatureError):
            Signature.from_bytes(b"abc", scheme16.scheme_id)

    def test_wrong_component_count_rejected(self, scheme16):
        with pytest.raises(SignatureError):
            Signature((1, 2, 3), scheme16.scheme_id)

    def test_xor_requires_same_scheme(self, scheme8, scheme16):
        with pytest.raises(SignatureError):
            scheme8.sign(b"x") ^ scheme16.sign(b"x")

    def test_xor_is_page_addition(self, scheme8, rng):
        """sig(P) + sig(Q) == sig(P XOR Q): component-wise linearity."""
        p = rng.integers(0, 256, 40).astype(np.int64)
        q = rng.integers(0, 256, 40).astype(np.int64)
        assert scheme8.sign(p) ^ scheme8.sign(q) == scheme8.sign(p ^ q)

    def test_hex_and_str(self, scheme16):
        sig = scheme16.sign(b"data")
        assert sig.hex() == sig.to_bytes().hex()
        assert sig.hex() in str(sig)

    def test_cross_variant_incompatible(self, gf8):
        standard = AlgebraicSignatureScheme(gf8, 3, STANDARD)
        primitive = AlgebraicSignatureScheme(gf8, 3, PRIMITIVE)
        with pytest.raises(SignatureError):
            standard.sign(b"x") ^ primitive.sign(b"x")
