"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GF(2^16)" in out
        assert "4-byte signatures" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "Algebraic Signatures" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["recommend", "16384"]) == 0
        out = capsys.readouterr().out
        assert "GF(2^16), n=2" in out
        assert "2^-32" in out

    def test_recommend_small_page(self, capsys):
        assert main(["recommend", "100"]) == 0
        out = capsys.readouterr().out
        assert "pages of 100 bytes" in out

    def test_recommend_needs_argument(self, capsys):
        assert main(["recommend"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "Commands" in capsys.readouterr().err
