"""Tests for the ``python -m repro`` command-line entry point."""

import json

from repro.__main__ import main
from repro.obs import SCHEMA


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GF(2^16)" in out
        assert "4-byte signatures" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "Algebraic Signatures" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert main(["recommend", "16384"]) == 0
        out = capsys.readouterr().out
        assert "GF(2^16), n=2" in out
        assert "2^-32" in out

    def test_recommend_small_page(self, capsys):
        assert main(["recommend", "100"]) == 0
        out = capsys.readouterr().out
        assert "pages of 100 bytes" in out

    def test_recommend_needs_argument(self, capsys):
        assert main(["recommend"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "Commands" in capsys.readouterr().err


class TestReportCommand:
    def test_report_table(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        for section in ("== sig ==", "== net ==", "== disk ==",
                        "== sdds ==", "== backup ==", "== parity ==",
                        "== spans =="):
            assert section in out
        assert "source=demo" in out

    def test_report_json_schema(self, capsys):
        assert main(["report", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == SCHEMA
        assert document["meta"] == {"source": "demo"}
        prefixes = {name.split(".", 1)[0] for name in document["metrics"]}
        assert {"sig", "net", "disk", "sdds", "backup", "parity"} <= prefixes
        assert document["spans"]  # demo workload traces its phases

    def test_report_json_is_deterministic(self, capsys):
        assert main(["report", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["report", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_report_runs_script(self, capsys, tmp_path):
        script = tmp_path / "workload.py"
        script.write_text(
            "from repro import make_scheme\n"
            "print('script ran')\n"
            "make_scheme().sign(b'abcdefgh')\n"
        )
        assert main(["report", str(script)]) == 0
        out = capsys.readouterr().out
        assert "script ran" in out
        assert "sig.bytes_signed" in out
        assert "source=workload.py" in out

    def test_report_json_suppresses_script_stdout(self, capsys, tmp_path):
        script = tmp_path / "noisy.py"
        script.write_text(
            "from repro import make_scheme\n"
            "print('NOISE')\n"
            "make_scheme().sign(b'abcd')\n"
        )
        assert main(["report", str(script), "--json"]) == 0
        out = capsys.readouterr().out
        assert "NOISE" not in out
        json.loads(out)  # the document parses cleanly

    def test_report_missing_script(self, capsys):
        assert main(["report", "does-not-exist.py"]) == 2
        assert "no such script" in capsys.readouterr().err

    def test_report_too_many_arguments(self, capsys):
        assert main(["report", "a.py", "b.py"]) == 2
        assert "usage" in capsys.readouterr().err
