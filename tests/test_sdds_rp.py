"""Tests for the RP* range-partitioned SDDS."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SDDSError
from repro.sdds import KEY_SPACE, Record, RPFile
from repro.sig import make_scheme


def build_file(n_records=400, capacity=25, seed=5, value_bytes=40):
    scheme = make_scheme(f=8, n=2)
    file = RPFile(scheme, capacity_records=capacity)
    client = file.client()
    keys = random.Random(seed).sample(range(1_000_000), n_records)
    for key in keys:
        assert client.insert(Record(key, b"v" * value_bytes)).status == "inserted"
    return file, client, keys


class TestGrowth:
    def test_splits_at_median(self):
        file, _client, keys = build_file()
        assert file.bucket_count > 1
        file.check_placement()

    def test_intervals_partition_key_space(self):
        file, _client, _keys = build_file()
        intervals = sorted((s.low, s.high) for s in file.servers)
        assert intervals[0][0] == 0
        assert intervals[-1][1] == KEY_SPACE
        for (l1, h1), (l2, h2) in zip(intervals, intervals[1:]):
            assert h1 == l2

    def test_order_preserved_within_buckets(self):
        """RP* keeps records ordered: bucket ranges are disjoint and
        sorted iteration within each bucket is by key."""
        file, _client, _keys = build_file()
        for server in file.servers:
            keys = list(server.bucket.keys())
            assert keys == sorted(keys)

    def test_capacity_respected_after_splits(self):
        file, _client, _keys = build_file(n_records=600, capacity=20)
        for server in file.servers:
            assert len(server.bucket) <= 20

    def test_records_preserved(self):
        file, _client, keys = build_file()
        stored = sorted(
            key for server in file.servers for key in server.bucket.keys()
        )
        assert stored == sorted(keys)


class TestRouting:
    def test_all_keys_found(self):
        file, client, keys = build_file()
        for key in keys:
            result = client.search(key)
            assert result.status == "found"
            assert result.record.key == key

    def test_stale_client_converges(self):
        file, _client, keys = build_file()
        stale = file.client("stale")
        for key in keys:
            assert stale.search(key).status == "found"
        second_pass = sum(stale.search(key).forwards for key in keys)
        assert second_pass == 0

    def test_image_entries_grow_monotonically(self):
        file, _client, keys = build_file()
        stale = file.client("stale")
        for key in keys[:50]:
            stale.search(key)
        assert len(stale.image) >= 1
        assert 0 in stale.image  # the root entry always remains

    def test_missing_key(self):
        file, client, keys = build_file(n_records=50)
        missing = max(keys) + 1
        assert client.search(missing).status == "missing"

    def test_delete(self):
        file, client, keys = build_file(n_records=50)
        assert client.delete(keys[0]).status == "deleted"
        assert client.search(keys[0]).status == "missing"
        file.check_placement()


class TestSplitMechanics:
    def test_split_hints_route_forward(self):
        file, _client, _keys = build_file()
        bucket0 = file.server(0)
        if bucket0.split_hints:
            boundary, target = bucket0.split_hints[-1]
            assert bucket0.forward_target(boundary) == target

    def test_own_key_not_forwarded(self):
        file, _client, _keys = build_file()
        for server in file.servers:
            for key in list(server.bucket.keys())[:5]:
                assert server.forward_target(key) is None

    def test_key_below_range_rejected(self):
        file, _client, _keys = build_file()
        highest = max(file.servers, key=lambda s: s.low)
        if highest.low > 0:
            with pytest.raises(SDDSError):
                highest.forward_target(highest.low - 1)

    def test_degenerate_split_rejected(self):
        """A median equal to the interval's low bound cannot split."""
        scheme = make_scheme(f=8, n=2)
        file = RPFile(scheme, capacity_records=2)
        server = file.server(0)
        server.bucket.insert(Record(0, b"a"))
        with pytest.raises(SDDSError):
            file.split(server)


class TestUpdatesOverRP:
    def test_update_protocol_works(self):
        from repro.sdds import UpdateStatus

        file, client, keys = build_file(n_records=100)
        key = keys[0]
        before = client.search(key).record.value
        result = client.update_normal(key, before, before)
        assert result.status == UpdateStatus.PSEUDO
        assert result.bytes == 0
        result = client.update_normal(key, before, b"x" * len(before))
        assert result.status == UpdateStatus.APPLIED
        assert client.search(key).record.value == b"x" * len(before)

    def test_scan_over_rp(self):
        file, client, keys = build_file(n_records=100)
        client.update_blind(keys[7], b"..FINDME.." + b"p" * 30)
        result = client.scan(b"FINDME")
        assert any(record.key == keys[7] for record in result.records)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_random_workload_placement(self, seed):
        rng = random.Random(seed)
        scheme = make_scheme(f=8, n=2)
        file = RPFile(scheme, capacity_records=10)
        client = file.client()
        live = set()
        for _step in range(200):
            if rng.random() < 0.7 or not live:
                key = rng.randrange(1_000_000)
                if client.insert(Record(key, b"v")).status == "inserted":
                    live.add(key)
            else:
                key = rng.choice(list(live))
                client.delete(key)
                live.discard(key)
        file.check_placement()
        for key in live:
            assert client.search(key).status == "found"
