"""Incremental maintenance wired into its consumers.

Covers the PR 4 integration surface: ``BackupEngine.backup_incremental``
(journal fold, quiet passes, the dirty-extent full-re-sign fallback,
warm trees), warm :class:`~repro.sync.Replica` state across every
mutator, map/tree sync with warm endpoints, the SDDS server's O(|delta|)
stored-signature updates and live bucket map, and the cluster's sealed
mirror delta frames under corruption.
"""

import numpy as np

from repro.backup import BackupEngine, DirtyBitTracker
from repro.cluster import Cluster, wire
from repro.obs import MetricsRegistry, use_registry
from repro.sdds import Record, SDDSServer, UpdateOutcome
from repro.sdds.bucket import Bucket
from repro.sig import SignatureMap, SignatureTree
from repro.sim import DiskModel, SimClock, SimDisk, SimNetwork
from repro.sync import Replica, sync_by_map, sync_by_tree

PAGE_BYTES = 256


def _engine(scheme, **kwargs) -> BackupEngine:
    return BackupEngine(scheme, SimDisk(SimClock(), model=DiskModel()),
                        page_bytes=PAGE_BYTES, **kwargs)


def _loaded_bucket(count: int = 60, value_bytes: int = 48) -> Bucket:
    bucket = Bucket(0, capacity_records=count + 8)
    rng = np.random.default_rng(17)
    for key in range(count):
        bucket.insert(Record(key, rng.integers(
            0, 256, size=value_bytes, dtype=np.uint8).tobytes()))
    return bucket


def _assert_map_exact(engine, volume, scheme, image) -> None:
    expected = SignatureMap.compute(
        scheme, bytes(image), PAGE_BYTES // scheme.scheme_id.symbol_bytes
    )
    stored = engine.signature_map(volume)
    assert stored.signatures == expected.signatures
    assert stored.total_symbols == expected.total_symbols


class TestBackupIncremental:
    def test_folded_map_matches_from_scratch_scan(self, scheme16):
        bucket = _loaded_bucket()
        engine = _engine(scheme16)
        journal = engine.attach_heap(bucket.heap)
        engine.backup_incremental("vol", bucket.image, journal)

        for key in (3, 17, 41):
            bucket.update(key, bytes(48))
        bucket.delete(9)
        bucket.insert(Record(90, b"x" * 48))
        report = engine.backup_incremental("vol", bucket.image, journal)
        assert report.pages_written < report.pages_total
        assert not journal
        _assert_map_exact(engine, "vol", scheme16, bucket.image)

    def test_quiet_pass_writes_nothing(self, scheme16):
        bucket = _loaded_bucket()
        engine = _engine(scheme16)
        journal = engine.attach_heap(bucket.heap)
        engine.backup_incremental("vol", bucket.image, journal)
        report = engine.backup_incremental("vol", bucket.image, journal)
        assert report.pages_written == 0
        assert report.bytes_written == 0

    def test_pseudo_write_of_identical_bytes_is_free(self, scheme16):
        bucket = _loaded_bucket()
        engine = _engine(scheme16)
        journal = engine.attach_heap(bucket.heap)
        engine.backup_incremental("vol", bucket.image, journal)
        record = bucket.get(5)
        bucket.update(5, record.value)  # journaled, but nothing changed
        report = engine.backup_incremental("vol", bucket.image, journal)
        assert report.pages_written == 0

    def test_tracker_fallback_resigns_smeared_pages(self, scheme16):
        with use_registry(MetricsRegistry()) as registry:
            bucket = _loaded_bucket()
            engine = _engine(scheme16)
            journal = engine.attach_heap(bucket.heap)
            # Any dirty extent at all trips the full-page re-sign.
            tracker = DirtyBitTracker(bucket.heap, PAGE_BYTES,
                                      full_resign_fraction=1e-6)
            engine.backup_incremental("vol", bucket.image, journal, tracker)
            for key in (2, 30, 55):
                bucket.update(key, bytes(48))
            engine.backup_incremental("vol", bucket.image, journal, tracker)
            assert registry.total("backup.incremental_fallbacks") > 0
            _assert_map_exact(engine, "vol", scheme16, bucket.image)

    def test_warm_tree_matches_rebuild(self, scheme16):
        bucket = _loaded_bucket()
        engine = _engine(scheme16, use_tree=True, tree_fanout=4)
        journal = engine.attach_heap(bucket.heap)
        engine.backup_incremental("vol", bucket.image, journal)
        for key in (1, 20):
            bucket.update(key, bytes(48))
        engine.backup_incremental("vol", bucket.image, journal)
        rebuilt = SignatureTree.from_map(engine.signature_map("vol"), 4)
        warm = engine._trees["vol"]
        for warm_level, fresh_level in zip(warm.levels, rebuilt.levels):
            assert [n.signature for n in warm_level] == \
                [n.signature for n in fresh_level]


class TestReplicaWarmState:
    def _check(self, replica, scheme):
        page_symbols = replica.page_bytes // scheme.scheme_id.symbol_bytes
        expected = SignatureMap.compute(scheme, bytes(replica.data),
                                        page_symbols)
        assert replica.signature_map().signatures == expected.signatures
        rebuilt = SignatureTree.from_map(expected, 4)
        warm = replica.signature_tree(fanout=4)
        for warm_level, fresh_level in zip(warm.levels, rebuilt.levels):
            assert [n.signature for n in warm_level] == \
                [n.signature for n in fresh_level]

    def test_every_mutator_keeps_warm_state_exact(self, scheme16):
        rng = np.random.default_rng(23)
        replica = Replica("r", scheme16,
                          rng.integers(0, 256, size=40 * 32,
                                       dtype=np.uint8).tobytes(),
                          page_bytes=32)
        replica.signature_map()
        replica.signature_tree(fanout=4)
        replica.write_page(3, bytes(32))
        replica.write_at(100, b"patched!")
        replica.apply_xor(200, b"\xff\x00\xff\x00")
        self._check(replica, scheme16)
        replica.truncate(36 * 32)
        self._check(replica, scheme16)

    def test_grow_then_shrink_in_one_journal(self, scheme16):
        # Regression: a grow and a trim captured between folds used to
        # raise because the journal wrote past the final buffer length.
        replica = Replica("r", scheme16, bytes(20 * 8), page_bytes=8)
        replica.signature_map()
        replica.write_at(20 * 8, b"grown in")
        replica.truncate(20 * 8)
        self._check(replica, scheme16)

    def test_folds_are_metered(self, scheme16):
        with use_registry(MetricsRegistry()) as registry:
            replica = Replica("r", scheme16, bytes(16 * 16), page_bytes=16)
            replica.signature_map()
            replica.write_at(0, b"dirty bytes")
            replica.signature_map()
            assert registry.total("sync.incremental_folds") >= 1
            assert registry.total("sync.bytes_folded") > 0


class TestSyncWithWarmEndpoints:
    def _pair(self, scheme):
        rng = np.random.default_rng(31)
        base = rng.integers(0, 256, size=24 * 64, dtype=np.uint8).tobytes()
        source = Replica("source", scheme, base, page_bytes=64)
        target = Replica("target", scheme, base, page_bytes=64)
        for replica in (source, target):
            replica.signature_map()
            replica.signature_tree(fanout=4)
        source.write_at(70, b"diverged")
        source.write_at(900, b"also diverged")
        return source, target

    def test_sync_by_map_converges(self, scheme16):
        with use_registry(MetricsRegistry()) as registry:
            source, target = self._pair(scheme16)
            report = sync_by_map(source, target, SimNetwork())
            assert bytes(target.data) == bytes(source.data)
            assert report.pages_shipped > 0
            assert registry.total("sync.incremental_folds") >= 1

    def test_sync_by_tree_converges(self, scheme16):
        source, target = self._pair(scheme16)
        sync_by_tree(source, target, SimNetwork(), fanout=4)
        assert bytes(target.data) == bytes(source.data)


class TestServerDeltaUpdates:
    def test_conditional_update_takes_the_delta_path(self, scheme16):
        server = SDDSServer(0, scheme16, store_signatures=True)
        value = b"v" * 47  # odd length: the padded-symbol case
        server.insert(Record(1, value))
        before_sig = scheme16.sign(value, strict=False)
        after_value = b"v" * 20 + b"CHANGED" + b"v" * 20
        outcome = server.conditional_update(1, after_value, before_sig)
        assert outcome is UpdateOutcome.APPLIED
        assert server.stats.delta_updates == 1
        assert server._stored_sigs[1] == \
            scheme16.sign(after_value, strict=False)

    def test_stale_signature_is_rejected(self, scheme16):
        server = SDDSServer(0, scheme16, store_signatures=True)
        server.insert(Record(1, b"current value"))
        stale = scheme16.sign(b"some old value", strict=False)
        assert server.conditional_update(1, b"new", stale) is \
            UpdateOutcome.CONFLICT
        assert server.stats.delta_updates == 0

    def test_length_change_recomputes_in_full(self, scheme16):
        server = SDDSServer(0, scheme16, store_signatures=True)
        server.insert(Record(1, b"short"))
        before_sig = scheme16.sign(b"short", strict=False)
        outcome = server.conditional_update(1, b"a much longer value",
                                            before_sig)
        assert outcome is UpdateOutcome.APPLIED
        assert server.stats.delta_updates == 0
        assert server._stored_sigs[1] == \
            scheme16.sign(b"a much longer value", strict=False)

    def test_live_map_tracks_the_bucket_image(self, scheme16):
        server = SDDSServer(0, scheme16, store_signatures=True)
        server.enable_live_map(page_bytes=128)
        rng = np.random.default_rng(41)
        for key in range(30):
            server.insert(Record(key, rng.integers(
                0, 256, size=40, dtype=np.uint8).tobytes()))
        for key in (2, 11, 28):
            sig = scheme16.sign(server.search(key).value, strict=False)
            assert server.conditional_update(
                key, bytes(40), sig) is UpdateOutcome.APPLIED
        server.delete(15)
        live = server.live_map()
        expected = SignatureMap.compute(
            scheme16, bytes(server.bucket.heap.image), 64)
        assert live.signatures == expected.signatures


class TestClusterDeltaFrames:
    def _settled_cluster(self):
        cluster = Cluster(servers=3, seed=7)
        client = cluster.client()
        for key in range(30):
            assert client.insert(key, f"record {key} ".encode() * 4).ok
        cluster.settle()
        return cluster

    def test_corrupt_delta_frame_is_dropped_not_applied(self):
        with use_registry(MetricsRegistry()) as registry:
            cluster = self._settled_cluster()
            host = cluster.mirror_host(0)
            assert host.mirror is not None
            before = bytes(host.mirror.data)
            body = wire.encode_traced(
                None, wire.encode_delta(len(before), 0, b"\xff\x00\xff\x00"))
            sealed = bytearray(wire.seal(cluster.scheme, body))
            sealed[4] ^= 0x40
            host.receive_mirror_delta(bytes(sealed))
            assert bytes(host.mirror.data) == before
            assert registry.total("cluster.corruptions_detected",
                                  where="mirror") == 1

    def test_valid_delta_frame_patches_the_mirror(self):
        with use_registry(MetricsRegistry()):
            cluster = self._settled_cluster()
            host = cluster.mirror_host(0)
            before = bytes(host.mirror.data)
            delta = b"\xff\x00\xff\x00"
            body = wire.encode_traced(
                None, wire.encode_delta(len(before), 8, delta))
            host.receive_mirror_delta(wire.seal(cluster.scheme, body))
            patched = bytes(host.mirror.data)
            assert patched[8:12] == bytes(
                b ^ d for b, d in zip(before[8:12], delta))
            assert patched[:8] == before[:8]
            assert patched[12:] == before[12:]

    def test_sparse_updates_converge_by_delta_frames(self):
        with use_registry(MetricsRegistry()) as registry:
            cluster = self._settled_cluster()
            client = cluster.client()
            shipped_before = registry.total("cluster.mirror_delta_bytes")
            for key in range(0, 30, 7):
                assert client.update(key, f"update {key} ".encode() * 4).ok
            cluster.settle()
            cluster.check_replicas()
            assert registry.total("cluster.mirror_deltas") > 0
            # The sparse-update round ships far less than the images.
            shipped = registry.total("cluster.mirror_delta_bytes") \
                - shipped_before
            images = sum(len(n.image_bytes()) for n in cluster.nodes)
            assert 0 < shipped < images
