"""Tests for scheme recommendation, collision arithmetic, adversarial switches."""

import pytest

from repro.analysis import (
    expected_collision_interval_years,
    prop4_adversarial_switches,
    recommend_scheme,
)
from repro.errors import ReproError
from repro.sig import PRIMITIVE, STANDARD, make_scheme


class TestRecommendScheme:
    def test_reproduces_the_papers_choice(self):
        """16 KB pages + 2^-32 budget + certainty for 2 symbols ==
        exactly the paper's production configuration."""
        rec = recommend_scheme(16 * 1024)
        assert rec.f == 16
        assert rec.n == 2
        assert rec.signature_bytes == 4
        assert rec.collision_probability == 2.0 ** -32

    def test_small_pages_can_use_gf8(self):
        rec = recommend_scheme(100, max_collision_probability=2.0 ** -24,
                               min_guaranteed_symbols=3)
        assert rec.f == 8
        assert rec.n == 3
        assert rec.signature_bytes == 3

    def test_page_beyond_gf8_bound_promotes_to_gf16(self):
        rec = recommend_scheme(1024, max_collision_probability=2.0 ** -8)
        assert rec.f == 16  # 1024 symbols exceed GF(2^8)'s 254-symbol bound

    def test_tight_budget_raises_n(self):
        rec = recommend_scheme(1024, max_collision_probability=2.0 ** -40)
        assert rec.n * rec.f >= 40

    def test_build_returns_working_scheme(self):
        scheme = recommend_scheme(4096).build()
        assert scheme.sign(b"abc") == scheme.sign(b"abc")

    def test_oversized_page_rejected(self):
        with pytest.raises(ReproError):
            recommend_scheme(1 << 20)  # > 128 KB: no byte field covers it

    def test_bad_arguments(self):
        with pytest.raises(ReproError):
            recommend_scheme(0)
        with pytest.raises(ReproError):
            recommend_scheme(100, max_collision_probability=1.5)
        with pytest.raises(ReproError):
            recommend_scheme(100, min_guaranteed_symbols=0)


class TestCollisionInterval:
    def test_paper_arithmetic(self):
        """4 B signatures at one backup a second: ~135 years."""
        scheme = make_scheme(f=16, n=2)
        years = expected_collision_interval_years(scheme, 1.0)
        assert 130 < years < 140

    def test_scales_with_rate(self):
        scheme = make_scheme(f=16, n=2)
        slow = expected_collision_interval_years(scheme, 1.0)
        fast = expected_collision_interval_years(scheme, 100.0)
        assert slow == pytest.approx(100 * fast)

    def test_bad_rate(self):
        with pytest.raises(ReproError):
            expected_collision_interval_years(make_scheme(), 0)


class TestAdversarialSwitches:
    def test_sig_degrades_where_sig_prime_does_not(self):
        """The separation the paper's Section 4.1 discussion predicts:
        in GF(2^4) with n=3, alpha^3 has order 5; a switch whose block
        length and distance are both 5 blinds that component of sig,
        degrading its collision rate to ~2^-8, while sig' (all
        coordinates primitive) stays at ~2^-12."""
        standard = prop4_adversarial_switches(
            make_scheme(f=4, n=3, variant=STANDARD),
            page_symbols=14, block_symbols=5, move_distance=5,
            trials=60_000, seed=9,
        )
        primitive = prop4_adversarial_switches(
            make_scheme(f=4, n=3, variant=PRIMITIVE),
            page_symbols=14, block_symbols=5, move_distance=5,
            trials=60_000, seed=9,
        )
        assert standard.predicted_rate == 2.0 ** -8
        assert primitive.predicted_rate == 2.0 ** -12
        assert standard.observed_rate > 4 * primitive.observed_rate
        assert abs(standard.observed_rate - 2 ** -8) < 2 ** -9

    def test_benign_parameters_no_degradation(self):
        """A distance that is not a multiple of ord(alpha^3) leaves sig
        at full strength."""
        report = prop4_adversarial_switches(
            make_scheme(f=4, n=3, variant=STANDARD),
            page_symbols=14, block_symbols=4, move_distance=3,
            trials=30_000, seed=10,
        )
        assert report.predicted_rate == 2.0 ** -12
        assert report.observed_rate < 2 ** -9

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            prop4_adversarial_switches(
                make_scheme(f=4, n=2), page_symbols=6, block_symbols=4,
                move_distance=4, trials=10,
            )
