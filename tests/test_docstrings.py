"""Documentation hygiene: doctests run and public API is documented."""

import ast
import doctest
import pathlib

import pytest

import repro.gf.polynomial
import repro.gf.element
import repro.sig.scheme

SRC_ROOT = pathlib.Path(repro.gf.polynomial.__file__).resolve().parents[1]

DOCTEST_MODULES = [
    repro.gf.polynomial,
    repro.gf.element,
]


@pytest.mark.parametrize("module", DOCTEST_MODULES,
                         ids=lambda m: m.__name__)
def test_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"


def _public_defs(tree):
    """Yield (name, node) for public module-level defs and methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            yield node.name, node
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("_"):
                        yield f"{node.name}.{item.name}", item


def test_every_public_item_documented():
    """Every public module, class, and function in the library carries a
    docstring (deliverable (e): doc comments on every public item)."""
    missing = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text())
        relative = path.relative_to(SRC_ROOT.parent)
        if ast.get_docstring(tree) is None:
            missing.append(f"{relative}: module docstring")
        for name, node in _public_defs(tree):
            if ast.get_docstring(node) is None:
                missing.append(f"{relative}: {name}")
    assert not missing, "undocumented public items:\n" + "\n".join(missing)


def test_every_module_has_paper_anchor():
    """Core modules cite the paper section or concept they implement."""
    anchors = ("Section", "Proposition", "paper", "LH*", "RP*", "[Me83]",
               "[LS00]", "[LSS02]", "Karp-Rabin", "SDDS", "Galois")
    unanchored = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.name == "__main__.py":
            continue
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree) or ""
        if not any(anchor in docstring for anchor in anchors):
            unanchored.append(str(path.relative_to(SRC_ROOT.parent)))
    assert not unanchored, "modules without a paper anchor:\n" + \
        "\n".join(unanchored)
