"""Tests for rolling window signatures and signature search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.sig import RollingWindow, find_signature_matches, make_scheme, search


class TestRollingWindow:
    def test_fills_then_slides(self, scheme8, rng):
        data = rng.integers(0, 256, 60).astype(np.int64)
        window = RollingWindow(scheme8, 9)
        for i, symbol in enumerate(data):
            window.slide(int(symbol))
            if i >= 8:
                expected = scheme8.sign(data[i - 8:i + 1])
                assert window.signature == expected, i

    def test_full_flag(self, scheme8):
        window = RollingWindow(scheme8, 3)
        assert not window.full
        for symbol in (1, 2, 3):
            window.slide(symbol)
        assert window.full

    @given(st.lists(st.integers(0, 255), min_size=5, max_size=50),
           st.integers(1, 5))
    @settings(max_examples=60)
    def test_matches_from_scratch_at_every_offset(self, symbols, window_size):
        scheme = make_scheme(f=8, n=2)
        if window_size > len(symbols):
            window_size = len(symbols)
        arr = np.array(symbols, dtype=np.int64)
        window = RollingWindow(scheme, window_size)
        for i, symbol in enumerate(symbols):
            window.slide(symbol)
            if i >= window_size - 1:
                assert window.signature == scheme.sign(
                    arr[i - window_size + 1:i + 1]
                )

    def test_window_of_one(self, scheme8):
        window = RollingWindow(scheme8, 1)
        for symbol in (5, 200, 0, 13):
            window.slide(symbol)
            assert window.signature == scheme8.sign(np.array([symbol]))

    def test_bad_window_rejected(self, scheme8):
        with pytest.raises(SignatureError):
            RollingWindow(scheme8, 0)
        with pytest.raises(SignatureError):
            RollingWindow(scheme8, scheme8.max_page_symbols + 1)

    def test_gf16_rolling(self, scheme16, rng):
        data = rng.integers(0, 1 << 16, 30).astype(np.int64)
        window = RollingWindow(scheme16, 4)
        for i, symbol in enumerate(data):
            window.slide(int(symbol))
            if i >= 3:
                assert window.signature == scheme16.sign(data[i - 3:i + 1])


class TestFindSignatureMatches:
    def test_finds_planted_needle(self, scheme8, rng):
        haystack = rng.integers(0, 256, 300).astype(np.int64)
        needle = haystack[120:128].copy()
        target = scheme8.sign(needle)
        matches = find_signature_matches(scheme8, haystack, target, 8)
        assert 120 in matches

    def test_all_occurrences(self, scheme8):
        haystack = np.tile(np.array([1, 2, 3, 9], dtype=np.int64), 5)
        needle = np.array([1, 2, 3], dtype=np.int64)
        target = scheme8.sign(needle)
        matches = find_signature_matches(scheme8, haystack, target, 3)
        assert matches == [0, 4, 8, 12, 16]

    def test_needle_longer_than_haystack(self, scheme8):
        target = scheme8.sign(np.arange(10))
        assert find_signature_matches(scheme8, np.arange(5), target, 10) == []

    def test_wrong_scheme_rejected(self, scheme8, scheme16):
        target = scheme16.sign(b"ab")
        with pytest.raises(SignatureError):
            find_signature_matches(scheme8, np.arange(10), target, 1)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_no_false_negatives(self, seed):
        """Every true occurrence is a signature match (identical content
        implies identical signatures -- the Las Vegas guarantee)."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(seed)
        haystack = rng.integers(0, 4, 80).astype(np.int64)  # small alphabet
        start = int(rng.integers(0, 75))
        needle = haystack[start:start + 5].copy()
        target = scheme.sign(needle)
        matches = set(find_signature_matches(scheme, haystack, target, 5))
        for offset in range(76):
            if np.array_equal(haystack[offset:offset + 5], needle):
                assert offset in matches


class TestSearch:
    def test_exact_results(self, scheme8):
        haystack = b"the quick brown fox jumps over the lazy dog"
        assert search(scheme8, haystack, b"the") == [0, 31]
        assert search(scheme8, haystack, b"fox") == [16]
        assert search(scheme8, haystack, b"cat") == []

    def test_overlapping_occurrences(self, scheme8):
        assert search(scheme8, b"aaaa", b"aa") == [0, 1, 2]

    def test_empty_needle_rejected(self, scheme8):
        with pytest.raises(SignatureError):
            search(scheme8, b"abc", b"")

    @given(st.binary(min_size=10, max_size=200), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_matches_python_find(self, haystack, seed):
        """search() agrees with a naive scan for needles drawn from the
        haystack itself."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(haystack) - 3))
        needle = haystack[start:start + 3]
        expected = [
            i for i in range(len(haystack) - 2)
            if haystack[i:i + 3] == needle
        ]
        assert search(scheme, haystack, needle) == expected
