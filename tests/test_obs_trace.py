"""Tests for the cross-node telemetry plane.

Covers trace propagation through the signature-sealed wire frames of
the cluster transport (golden same-seed export, one assembled tree per
RPC), the bounded mergeable histogram backend, the per-node flight
recorder and its sealed post-mortem dumps, and the Prometheus / Chrome
export surfaces.
"""

from __future__ import annotations

import json
import math
import pathlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, Crash, FaultPlan, RetryPolicy
from repro.cluster import wire
from repro.obs import (
    BucketedHistogram,
    FlightRecorder,
    MetricError,
    MetricsRegistry,
    RecorderDump,
    SpanHandle,
    TRACE_SCHEMA,
    TraceContext,
    TraceError,
    TraceStore,
    Tracer,
    activate,
    active_store,
    frame_digest,
    span_if_active,
    to_prometheus,
    use_registry,
)
from repro.sig import make_scheme
from repro.sim import SimClock

TRACE_GOLDEN = pathlib.Path(__file__).parent / "data" / \
    "trace_export_golden.json"


class TestTraceContext:
    def test_ids_must_fit_64_bits(self):
        for bad in (-1, 1 << 64):
            with pytest.raises(TraceError):
                TraceContext(bad, 1)
            with pytest.raises(TraceError):
                TraceContext(1, bad)

    def test_wire_roundtrip(self):
        context = TraceContext(0x1234, 0x5678)
        traced = wire.encode_traced(context, b"body")
        decoded, inner = wire.decode_traced(traced)
        assert decoded == context and inner == b"body"

    def test_untraced_envelope_is_all_zero(self):
        traced = wire.encode_traced(None, b"body")
        assert traced.startswith(bytes(16))
        decoded, inner = wire.decode_traced(traced)
        assert decoded is None and inner == b"body"

    def test_truncated_envelope_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_traced(b"\x00" * 15)


class TestTraceStore:
    def test_same_seed_same_ids(self):
        a, b = TraceStore(seed=9), TraceStore(seed=9)
        for _ in range(5):
            assert a._new_id() == b._new_id()
        assert TraceStore(seed=10)._new_id() != TraceStore(seed=9)._new_id()

    def test_span_nests_under_current_context(self):
        store = TraceStore(seed=1)
        with store.begin("rpc.op", node="client") as root:
            assert store.current == root.context
            with store.span("inner", node="client") as inner:
                assert inner.span.parent_id == root.span.span_id
                assert inner.span.trace_id == root.span.trace_id
        assert store.current is None
        assert [s.name for s in store.finished] == ["inner", "rpc.op"]

    def test_child_parents_on_explicit_context_not_stack(self):
        store = TraceStore(seed=1)
        with store.begin("rpc.a") as a:
            remote = a.context
        with store.begin("rpc.b"):
            with store.child("handled", remote, node="node0") as handled:
                assert handled.span.trace_id == remote.trace_id
                assert handled.span.parent_id == remote.span_id

    def test_exception_marks_span_error(self):
        store = TraceStore(seed=1)
        with pytest.raises(RuntimeError):
            with store.begin("rpc.fail"):
                raise RuntimeError("boom")
        assert store.finished[0].status == "error"

    def test_finish_is_idempotent(self):
        store = TraceStore(seed=1)
        handle = store.begin("rpc.op")
        handle.finish("gave_up")
        handle.finish("ok")
        assert store.finished[0].status == "gave_up"
        assert len(store.finished) == 1

    def test_events_use_sim_clock(self):
        clock = SimClock()
        store = TraceStore(seed=1, clock=clock)
        with store.begin("rpc.op") as span:
            clock.advance(0.25)
            span.event("retry", attempt=2)
        event = store.finished[0].events[0]
        assert event["at"] == pytest.approx(0.25)
        assert event["fields"] == {"attempt": 2}

    def test_empty_name_rejected(self):
        with pytest.raises(TraceError):
            TraceStore(seed=1).begin("")

    def test_export_is_deterministic(self):
        def run():
            clock = SimClock()
            store = TraceStore(seed=3, clock=clock)
            with store.begin("rpc.op", node="c") as root:
                clock.advance(0.1)
                with store.child("handled", root.context, node="n"):
                    clock.advance(0.1)
            return store

        assert run().to_json() == run().to_json()
        document = run().to_dict()
        assert document["schema"] == TRACE_SCHEMA
        assert document["trace_count"] == 1
        (trace,) = document["traces"]
        assert trace["span_count"] == 2
        (root,) = trace["spans"]
        assert root["name"] == "rpc.op"
        assert [child["name"] for child in root["children"]] == ["handled"]

    def test_chrome_export_shape(self):
        clock = SimClock()
        store = TraceStore(seed=3, clock=clock)
        with store.begin("rpc.op", node="c"):
            clock.advance(0.002)
        document = store.to_chrome()
        (event,) = document["traceEvents"]
        assert event["ph"] == "X" and event["pid"] == "c"
        assert event["dur"] == 2000  # microseconds

    def test_trace_spans_counter(self):
        with use_registry(MetricsRegistry()) as registry:
            store = TraceStore(seed=1)
            with store.begin("rpc.op"):
                pass
        assert registry.total("obs.trace_spans", span="rpc.op") == 1


class TestSpanIfActive:
    def test_noop_without_active_store(self):
        assert active_store() is None
        with span_if_active("sdds.search") as span:
            assert span is None

    def test_noop_outside_any_open_span(self):
        store = TraceStore(seed=1)
        with activate(store):
            with span_if_active("sdds.search") as span:
                assert span is None
        assert not store.finished

    def test_attaches_under_open_root(self):
        store = TraceStore(seed=1)
        with activate(store):
            with store.begin("rpc.op") as root:
                with span_if_active("sdds.search", node="s0") as span:
                    assert isinstance(span, SpanHandle)
                    assert span.span.parent_id == root.span.span_id
        assert [s.name for s in store.finished] == ["sdds.search", "rpc.op"]

    def test_activation_is_reentrant_and_restores(self):
        outer, inner = TraceStore(seed=1), TraceStore(seed=2)
        with activate(outer):
            with activate(inner):
                assert active_store() is inner
            assert active_store() is outer
        assert active_store() is None


class TestTracerZeroStart:
    def test_zero_sim_start_is_a_real_clock(self):
        # A clock sitting at exactly t=0.0 must not be mistaken for "no
        # clock": event offsets are computed from it, not zeroed out.
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("op") as span:
            assert span.sim_start == 0.0
            clock.advance(0.5)
            span.event("tick")
        assert span.events[0].sim_offset == pytest.approx(0.5)
        assert tracer.finished[0].sim_seconds == pytest.approx(0.5)

    def test_fallback_reads_zero_start_as_offset_zero(self):
        # A bare Span (no tracer patch) with sim_start=0.0 must report
        # offset 0.0, not misread the zero start as a missing clock.
        from repro.obs.tracer import Span

        span = Span(name="op", labels={}, depth=0, parent=None,
                    wall_start=0.0, sim_start=0.0)
        span.event("tick")
        assert span.events[0].sim_offset == 0.0

    def test_no_clock_reports_no_sim_offset(self):
        tracer = Tracer()
        with tracer.span("op") as handle:
            handle.event("tick")
        assert handle.events[0].sim_offset is None


class TestBucketedHistogram:
    def test_percentiles_within_5pct_of_exact(self):
        rng = random.Random(20040301)
        registry = MetricsRegistry()
        registry.set_histogram_backend("obs.lat.bucketed", "bucketed")
        exact = registry.histogram("obs.lat.exact")
        bucketed = registry.histogram("obs.lat.bucketed")
        for _ in range(20_000):
            value = math.exp(rng.gauss(-7.0, 1.2))
            exact.observe(value)
            bucketed.observe(value)
        assert isinstance(bucketed, BucketedHistogram)
        for p in (50.0, 90.0, 99.0, 99.9):
            reference = exact.percentile(p)
            assert bucketed.percentile(p) == pytest.approx(reference,
                                                           rel=0.05)
        # Bounded memory: O(buckets), not O(samples).
        assert len(bucketed.buckets()) < 1000

    def test_extremes_are_exact(self):
        histogram = BucketedHistogram("obs.lat", ())
        for value in (0.001, 0.5, 42.0):
            histogram.observe(value)
        assert histogram.percentile(0) == 0.001
        assert histogram.percentile(100) == 42.0

    def test_zero_and_negative_values(self):
        histogram = BucketedHistogram("obs.delta", ())
        for value in (-2.0, 0.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == -2.0 and histogram.max == 2.0
        assert histogram.percentile(50) == pytest.approx(0.0, abs=1e-9)

    def test_merge_adds_bucket_counts(self):
        a, b = BucketedHistogram("h", ()), BucketedHistogram("h", ())
        for value in (1.0, 2.0, 3.0):
            a.observe(value)
            b.observe(value)
        a.merge_from(b)
        assert a.count == 6
        assert a.sum == pytest.approx(12.0)

    def test_exact_cannot_absorb_bucketed(self):
        registry = MetricsRegistry()
        exact = registry.histogram("h")
        with pytest.raises(MetricError):
            exact.merge_from(BucketedHistogram("h", ()))

    def test_backend_choice_locked_after_first_touch(self):
        registry = MetricsRegistry()
        registry.histogram("obs.lat")
        with pytest.raises(MetricError):
            registry.set_histogram_backend("obs.lat", "bucketed")

    def test_snapshot_keys_include_p999_and_stddev(self):
        histogram = BucketedHistogram("h", ())
        histogram.observe(1.0)
        assert set(histogram.snapshot()["value"]) == {
            "count", "max", "min", "p50", "p90", "p99", "p999", "stddev",
            "sum"}

    def test_stddev_matches_exact(self):
        rng = random.Random(7)
        exact = MetricsRegistry().histogram("h")
        bucketed = BucketedHistogram("h", ())
        values = [rng.uniform(0, 100) for _ in range(500)]
        for value in values:
            exact.observe(value)
            bucketed.observe(value)
        assert bucketed.stddev == pytest.approx(exact.stddev)


class TestRegistryMerge:
    def test_fleet_view_merges_all_series_kinds(self):
        fleet, node = MetricsRegistry(), MetricsRegistry()
        node.counter("cluster.ops", op="insert").inc(4)
        node.gauge("obs.histogram_buckets").set(7)
        node.set_histogram_backend("lat.bucketed", "bucketed")
        for value in (1.0, 2.0):
            node.histogram("lat.exact").observe(value)
            node.histogram("lat.bucketed").observe(value)
        fleet.merge_from(node)
        fleet.merge_from(node)
        assert fleet.total("cluster.ops", op="insert") == 8
        assert fleet.histogram("lat.exact").count == 4
        assert fleet.histogram("lat.bucketed").count == 4
        assert isinstance(fleet.histogram("lat.bucketed"), BucketedHistogram)

    def test_snapshot_reports_bucket_footprint(self):
        registry = MetricsRegistry()
        registry.set_histogram_backend("lat", "bucketed")
        registry.histogram("lat").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["obs.histogram_buckets"][""] >= 1


class TestFlightRecorder:
    def make(self, capacity=4):
        scheme = make_scheme()
        clock = SimClock()
        return FlightRecorder("node0", scheme, clock, capacity=capacity), \
            scheme, clock

    def test_ring_is_bounded(self):
        recorder, _, _ = self.make(capacity=4)
        for index in range(10):
            recorder.record_fault("link_drop", source=f"peer{index}")
        assert len(recorder.entries) == 4
        assert recorder.entries[0]["detail"]["source"] == "peer6"

    def test_dump_is_sealed_and_verifiable(self):
        recorder, scheme, clock = self.make()
        recorder.record_frame("recv", "request", "client0", b"frame-bytes")
        clock.advance(0.5)
        dump = recorder.dump("seal_failure", where="request")
        assert isinstance(dump, RecorderDump)
        assert dump.node == "node0" and dump.at == 0.5
        payload = wire.unseal(scheme, dump.sealed)
        assert payload is not None
        document = json.loads(payload)
        assert document == dump.document()
        assert document["reason"] == "seal_failure"
        assert document["detail"]["where"] == "request"

    def test_dump_names_recorded_frames(self):
        recorder, scheme, _ = self.make()
        frame = b"some sealed frame"
        recorder.record_frame("recv", "request", "client0", frame)
        dump = recorder.dump("seal_failure")
        assert frame_digest(scheme, frame) in dump.frames()

    def test_dump_counted_and_sunk(self):
        recorder, _, _ = self.make()
        collected = []
        recorder.sinks.append(collected.append)
        with use_registry(MetricsRegistry()) as registry:
            recorder.dump("crash")
        assert registry.total("obs.recorder_dumps", node="node0",
                              reason="crash") == 1
        assert len(collected) == 1


class TestPrometheusExposition:
    def test_counters_gauges_and_both_histogram_kinds(self):
        registry = MetricsRegistry()
        registry.counter("cluster.ops", op="insert").inc(3)
        registry.gauge("obs.histogram_buckets").set(5)
        registry.set_histogram_backend("lat.bucketed", "bucketed")
        registry.histogram("lat.exact").observe(0.25)
        registry.histogram("lat.bucketed").observe(0.25)
        text = to_prometheus(registry)
        assert '# TYPE repro_cluster_ops_total counter' in text
        assert 'repro_cluster_ops_total{op="insert"} 3' in text
        assert '# TYPE repro_lat_exact summary' in text
        assert 'repro_lat_exact{quantile="0.5"}' in text
        assert '# TYPE repro_lat_bucketed histogram' in text
        assert 'le="+Inf"' in text
        assert 'repro_lat_bucketed_count 1' in text

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("b.second").inc()
            registry.counter("a.first").inc()
            return to_prometheus(registry)

        first = build()
        assert first == build()
        assert first.index("repro_a_first") < first.index("repro_b_second")


def _traced_cluster(seed):
    """The golden telemetry scenario: lossy network, one crash."""
    lossy = FaultPlan.lossy(drop=0.08, corrupt=0.01)
    plan = FaultPlan(default=lossy.default,
                     crashes=(Crash("node1", at=0.05, recover_at=0.12),))
    registry = MetricsRegistry()
    with use_registry(registry):
        cluster = Cluster(servers=3, seed=seed, plan=plan,
                          retry=RetryPolicy.patient())
        client = cluster.client()
        results = [client.insert(key, f"record {key}".encode() * 4)
                   for key in range(12)]
        results += [client.search(key) for key in range(0, 12, 3)]
        cluster.settle()
    return cluster, registry, results


class TestClusterTraceGolden:
    def test_same_seed_byte_identical_export(self):
        first, _, _ = _traced_cluster(seed=11)
        second, _, _ = _traced_cluster(seed=11)
        assert first.traces.to_json() == second.traces.to_json()

    def test_different_seed_differs(self):
        first, _, _ = _traced_cluster(seed=11)
        second, _, _ = _traced_cluster(seed=12)
        assert first.traces.to_json() != second.traces.to_json()

    def test_matches_golden_file(self):
        cluster, _, _ = _traced_cluster(seed=11)
        assert cluster.traces.to_json() + "\n" == TRACE_GOLDEN.read_text()

    def test_rpc_trees_span_nodes(self):
        cluster, _, results = _traced_cluster(seed=11)
        export = cluster.traces.to_dict()
        rpc_roots = [trace["spans"][0] for trace in export["traces"]
                     if trace["spans"][0]["name"].startswith("rpc.")]
        assert len(rpc_roots) == len(results)
        crossed = 0
        for root in rpc_roots:
            assert root["node"] == "client0"
            nodes = {child["node"] for child in root["children"]}
            if nodes - {"client0"}:
                crossed += 1
        assert crossed == len(rpc_roots)  # every RPC reached a server


class TestClusterRecorderIntegration:
    def test_every_corruption_detection_dumps(self):
        cluster, registry, _ = _traced_cluster(seed=11)
        injected = cluster.faulty_network.injected.get("corrupt", 0)
        detected = registry.total("cluster.corruptions_detected")
        assert injected == detected
        seal_dumps = [dump for dump in cluster.dumps
                      if dump.reason == "seal_failure"]
        assert len(seal_dumps) == detected
        scheme = cluster.scheme
        for dump in seal_dumps:
            assert wire.unseal(scheme, dump.sealed) is not None
            document = dump.document()
            assert document["detail"]["digest"]  # names the failing frame

    def test_crash_dumps_postmortem(self):
        cluster, _, _ = _traced_cluster(seed=11)
        reasons = [dump.reason for dump in cluster.dumps]
        assert "crash" in reasons
        crash = next(dump for dump in cluster.dumps
                     if dump.reason == "crash")
        assert crash.node == "node1"

    def test_link_faults_ring_into_recorders(self):
        cluster, _, _ = _traced_cluster(seed=11)
        kinds = {entry["fault"]
                 for recorder in cluster.recorders.values()
                 for entry in recorder.entries
                 if entry["kind"] == "fault"}
        assert any(kind.startswith("link_") for kind in kinds)


class TestEveryRpcLandsInOneTrace:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**16),
           drop=st.floats(0.0, 0.15),
           corrupt=st.floats(0.0, 0.02),
           operations=st.integers(4, 20))
    def test_one_assembled_tree_per_rpc(self, seed, drop, corrupt,
                                        operations):
        plan = FaultPlan.lossy(drop=drop, corrupt=corrupt)
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(servers=3, seed=seed, plan=plan,
                              retry=RetryPolicy.patient())
            client = cluster.client()
            results = [client.insert(key, f"r{key}".encode() * 3)
                       for key in range(operations)]
            results += [client.search(key)
                        for key in range(0, operations, 2)]
            cluster.settle()
        assert all(result.ok for result in results)
        traces = cluster.traces
        assert traces.open_spans == 0
        rpc_roots = [span for span in traces.roots()
                     if span.name.startswith("rpc.")]
        # One root per client call, each in its own trace tree.
        assert len(rpc_roots) == len(results)
        assert len({span.trace_id for span in rpc_roots}) == len(results)
        # Every span of an rpc trace belongs to exactly one tree whose
        # root is that rpc span.
        grouped = traces.traces()
        for root in rpc_roots:
            spans = grouped[root.trace_id]
            roots_here = [s for s in spans if s.parent_id is None]
            assert roots_here == [root]
            span_ids = {s.span_id for s in spans}
            for span in spans:
                if span.parent_id is not None:
                    assert span.parent_id in span_ids
