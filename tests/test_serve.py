"""Tests for the high-concurrency serving plane (``repro.serve``).

Covers the non-blocking request service in isolation (admission
control, deadline shedding, read coalescing), retry budgets at the
cluster client, live LH*/RP* splits under open-loop traffic with
algebraic-signature verification of the final bucket images, and the
determinism of the whole report.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (Cluster, EventLoop, FaultPlan, LinkFaults,
                           RetryExhaustedError, RetryPolicy)
from repro.cluster import wire as cwire
from repro.errors import ReproError
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (LoadGenerator, LoadMix, RequestService,
                         ServeRequest, ServicePolicy, ServingPlane, key_for)


def make_service(policy, log):
    loop = EventLoop()
    service = RequestService(
        "svc", loop, policy,
        execute=lambda request: log.append(("exec", request)),
        shed=lambda request, reason: log.append(("shed", request, reason)),
    )
    return loop, service


class TestRequestService:
    def test_inline_policy_executes_synchronously(self):
        log = []
        _loop, service = make_service(ServicePolicy(), log)
        request = ServeRequest(1, 10, b"v")
        assert service.offer(request)
        assert log == [("exec", request)]
        assert service.served == 1

    def test_default_policy_is_inline(self):
        assert ServicePolicy().inline
        assert not ServicePolicy.serving(1000.0).inline

    def test_queued_policy_charges_service_time(self):
        log = []
        loop, service = make_service(ServicePolicy.serving(100.0), log)
        service.offer(ServeRequest(1, 10))
        assert log == []            # nothing executed yet: costs 10ms
        loop.run_until_idle()
        assert len(log) == 1
        assert loop.clock.now == pytest.approx(0.01)

    def test_inbox_bound_sheds_excess(self):
        log = []
        loop, service = make_service(
            ServicePolicy.serving(100.0, inbox_limit=4), log)
        for key in range(8):
            service.offer(ServeRequest(1, key))
        sheds = [entry for entry in log if entry[0] == "shed"]
        # One executes (busy), four queue, the rest shed with "queue".
        assert len(sheds) == 3
        assert all(entry[2] == "queue" for entry in sheds)
        assert service.sheds["queue"] == 3
        loop.run_until_idle()
        assert sum(1 for entry in log if entry[0] == "exec") == 5

    def test_deadline_shed_rejects_dead_on_arrival_work(self):
        log = []
        loop, service = make_service(ServicePolicy.serving(100.0), log)
        for key in range(5):        # backlog drains at t=50ms
            service.offer(ServeRequest(1, key))
        late = ServeRequest(1, 99, deadline=loop.clock.now + 0.02)
        assert not service.offer(late)
        assert service.sheds["deadline"] == 1
        fits = ServeRequest(1, 98, deadline=loop.clock.now + 1.0)
        assert service.offer(fits)
        loop.run_until_idle()
        executed = [entry[1].key for entry in log if entry[0] == "exec"]
        assert 99 not in executed
        assert 98 in executed

    def test_same_key_reads_coalesce(self):
        log = []
        loop, service = make_service(ServicePolicy.serving(100.0), log)
        service.offer(ServeRequest(1, 1, read=True))   # executing
        head = ServeRequest(1, 7, read=True)
        service.offer(head)                            # queued
        for _ in range(3):
            service.offer(ServeRequest(1, 7, read=True))
        assert service.coalesced == 3
        assert len(head.riders) == 3
        loop.run_until_idle()
        # Four reads of key 7 cost one execution.
        assert sum(1 for entry in log if entry[0] == "exec") == 2
        assert service.served == 5

    def test_reads_do_not_coalesce_onto_executing_head(self):
        log = []
        loop, service = make_service(ServicePolicy.serving(100.0), log)
        first = ServeRequest(1, 7, read=True)
        service.offer(first)        # dequeued immediately: executing
        second = ServeRequest(1, 7, read=True)
        service.offer(second)
        assert second.riders == [] and first.riders == []
        loop.run_until_idle()
        assert sum(1 for entry in log if entry[0] == "exec") == 2

    def test_writes_never_coalesce(self):
        log = []
        loop, service = make_service(ServicePolicy.serving(100.0), log)
        for _ in range(4):
            service.offer(ServeRequest(2, 7, b"x"))
        assert service.coalesced == 0
        loop.run_until_idle()
        assert sum(1 for entry in log if entry[0] == "exec") == 4

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServicePolicy(inbox_limit=-1)
        with pytest.raises(ValueError):
            ServicePolicy(service_seconds=-1.0)
        with pytest.raises(ValueError):
            ServicePolicy.serving(0.0)


class TestRetryBudget:
    def test_budget_caps_attempts_below_max(self):
        policy = RetryPolicy(max_attempts=6, budget=3)
        budget = policy.begin(0.0)
        assert budget.allowed == 3
        spent = 0
        while budget.allow(0.0):
            budget.spend()
            spent += 1
        assert spent == 3
        with pytest.raises(ReproError):
            budget.spend()

    def test_deadline_stops_spending(self):
        policy = RetryPolicy(max_attempts=10, op_deadline=0.05)
        budget = policy.begin(1.0)
        assert budget.allow(1.0)
        assert budget.allow(1.049)
        assert not budget.allow(1.05)
        assert not budget.allow(2.0)

    def test_attempt_timeout_clamped_to_deadline(self):
        policy = RetryPolicy(timeout=0.1, jitter=0.0, op_deadline=0.15)
        budget = policy.begin(0.0)

        class _NoJitter:
            def uniform(self, lo, hi):
                return 1.0

        budget_rng = _NoJitter()
        first = budget.attempt_timeout(0, budget_rng, 0.0)
        assert first == pytest.approx(0.1)
        clamped = budget.attempt_timeout(1, budget_rng, 0.12)
        assert clamped == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(budget=0)
        with pytest.raises(ValueError):
            RetryPolicy(op_deadline=0.0)

    def test_cluster_client_total_attempts_respect_budget(self):
        # A black-hole network: every attempt times out; the client
        # must stop at the budget, not at max_attempts.
        plan = FaultPlan(default=LinkFaults(drop=1.0))
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(
                servers=2, seed=3, plan=plan,
                retry=RetryPolicy(timeout=0.01, max_attempts=8, budget=3))
            client = cluster.client()
            with pytest.raises(RetryExhaustedError, match="3 attempts"):
                client.search(5)
        assert registry.total("cluster.timeouts") == 3

    def test_cluster_client_default_budget_is_max_attempts(self):
        plan = FaultPlan(default=LinkFaults(drop=1.0))
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(
                servers=2, seed=3, plan=plan,
                retry=RetryPolicy(timeout=0.01, max_attempts=4))
            client = cluster.client()
            with pytest.raises(RetryExhaustedError, match="4 attempts"):
                client.search(5)
        assert registry.total("cluster.timeouts") == 4


def small_plane(seed=0, family="lh", buckets=4, threshold=64, **kwargs):
    return ServingPlane(
        buckets=buckets, family=family, seed=seed,
        policy=ServicePolicy.serving(2000.0, inbox_limit=64),
        split_threshold=threshold, **kwargs)


class TestServingPlane:
    def test_preload_and_verify_without_traffic(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(threshold=1 << 20)
            plane.preload(200)
            plane.settle()
            verification = plane.verify()
        assert verification["ok"]
        assert verification["records"] == 200

    def test_rp_family_requires_single_root(self):
        with use_registry(MetricsRegistry()):
            with pytest.raises(ReproError):
                small_plane(family="rp", buckets=2)

    def test_inline_policy_rejected(self):
        with use_registry(MetricsRegistry()):
            with pytest.raises(ReproError):
                ServingPlane(buckets=2, family="lh", seed=0,
                             policy=ServicePolicy())

    def test_live_split_under_traffic_verifies_lh(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=5, threshold=48)
            generator = LoadGenerator(
                plane, LoadMix(sessions=64, n_items=100,
                               insert_fraction=0.30, read_fraction=0.50,
                               update_fraction=0.15))
            generator.run_step(3000.0, 600)
            plane.settle()
            verification = plane.verify()
        assert plane.splits >= 1, "test must actually exercise a live split"
        assert verification["ok"]
        assert verification["acked_lost"] == []
        assert verification["mismatched"] == []
        assert verification["placement_ok"]

    def test_live_split_under_traffic_verifies_rp(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=6, family="rp", buckets=1,
                                threshold=80)
            generator = LoadGenerator(
                plane, LoadMix(sessions=64, n_items=120,
                               insert_fraction=0.30, read_fraction=0.50,
                               update_fraction=0.15))
            generator.run_step(3000.0, 600)
            plane.settle()
            verification = plane.verify()
        assert plane.splits >= 1
        assert verification["ok"]

    def test_thousand_session_smoke(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=1, threshold=1 << 20)
            generator = LoadGenerator(
                plane, LoadMix(sessions=1000, n_items=1200))
            step = generator.run_step(6000.0, 2000)
            plane.settle()
            verification = plane.verify()
        assert step["sessions_served"] >= 1000
        assert step["ops"] == 2000
        assert verification["ok"]

    def test_goodput_does_not_collapse_past_saturation(self):
        # Capacity is ~4 buckets x 2000 ops/s; offer up to 3x that.
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=2, threshold=1 << 20)
            generator = LoadGenerator(
                plane, LoadMix(sessions=400, n_items=600))
            report = generator.sweep([4000.0, 12000.0, 24000.0], 1200)
        summary = report["summary"]
        assert summary["graceful"], summary
        assert summary["post_saturation_ratio"] >= 0.8
        assert report["verify"]["ok"]

    def test_step_report_shape(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=3, threshold=1 << 20)
            generator = LoadGenerator(
                plane, LoadMix(sessions=32, n_items=64))
            step = generator.run_step(2000.0, 200)
        for field in ("offered_ops_per_s", "ops", "ok", "goodput_ops_per_s",
                      "p50_ms", "p99_ms", "p999_ms", "server_sheds",
                      "coalesced", "failed_timeout", "failed_shed",
                      "sessions_served", "splits", "buckets",
                      "max_inflight", "attempts"):
            assert field in step
        assert step["ops"] == 200

    def test_same_seed_same_report(self):
        def one_run():
            with use_registry(MetricsRegistry()):
                plane = small_plane(seed=9, threshold=96)
                generator = LoadGenerator(
                    plane, LoadMix(sessions=128, n_items=160,
                                   insert_fraction=0.25,
                                   read_fraction=0.55))
                return generator.sweep([3000.0, 8000.0], 500)

        assert one_run() == one_run()

    def test_different_seeds_differ(self):
        def one_run(seed):
            with use_registry(MetricsRegistry()):
                plane = small_plane(seed=seed, threshold=1 << 20)
                generator = LoadGenerator(
                    plane, LoadMix(sessions=32, n_items=64))
                return generator.run_step(2000.0, 300)

        assert one_run(1) != one_run(2)

    def test_overload_sheds_and_recovers(self):
        # A tiny inbox at huge offered load must shed, yet every
        # operation resolves (success or explicit failure -- never
        # silently lost) and the plane still verifies.
        with use_registry(MetricsRegistry()):
            plane = ServingPlane(
                buckets=2, family="lh", seed=4,
                policy=ServicePolicy.serving(500.0, inbox_limit=8),
                split_threshold=1 << 20)
            generator = LoadGenerator(
                plane, LoadMix(sessions=200, n_items=300))
            step = generator.run_step(20000.0, 1500)
            plane.settle()
            verification = plane.verify()
        sheds = sum(step["server_sheds"].values())
        assert sheds > 0
        assert step["ok"] + step["not_ok"] + step["failed_timeout"] \
            + step["failed_shed"] == 1500
        assert verification["ok"]


class TestLoadMix:
    def test_fraction_validation(self):
        with pytest.raises(ReproError):
            LoadMix(read_fraction=0.9, update_fraction=0.3,
                    insert_fraction=0.2)
        with pytest.raises(ReproError):
            LoadMix(sessions=0)

    def test_run_step_validation(self):
        with use_registry(MetricsRegistry()):
            plane = small_plane(threshold=1 << 20)
            generator = LoadGenerator(plane, LoadMix(sessions=4, n_items=8))
            with pytest.raises(ReproError):
                generator.run_step(0.0, 10)
            with pytest.raises(ReproError):
                generator.run_step(100.0, 0)


@st.composite
def racing_schedules(draw):
    """A burst of keyed operations racing one or more live splits."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(("insert", "update", "delete", "search")),
            st.integers(min_value=0, max_value=119),
        ),
        min_size=40, max_size=120))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return ops, seed


class TestRacingSplits:
    @given(schedule=racing_schedules())
    @settings(max_examples=12, deadline=None)
    def test_acked_writes_survive_racing_splits(self, schedule):
        ops, seed = schedule
        with use_registry(MetricsRegistry()):
            plane = small_plane(seed=seed, threshold=40,
                                split_delay=5e-4)
            plane.preload(60)
            sessions = [plane.session() for _ in range(8)]
            at = plane.clock.now
            for position, (kind, index) in enumerate(ops):
                key = key_for(index)
                session = sessions[position % len(sessions)]
                value = plane._value_for(key, position + 1, 64)
                op = {"insert": cwire.OP_INSERT,
                      "update": cwire.OP_UPDATE,
                      "delete": cwire.OP_DELETE,
                      "search": cwire.OP_SEARCH}[kind]
                if op == cwire.OP_SEARCH:
                    value = b""
                at += 0.0002
                plane.loop.at(at, lambda s=session, o=op, k=key,
                              v=value: s.submit(o, k, v))
            plane.settle()
            verification = plane.verify()
        # Every acked mutation must be in the execution journal and the
        # final images must signature-match the oracle: an acked write
        # that a racing split dropped would fail both.
        assert verification["acked_lost"] == []
        assert verification["mismatched"] == []
        assert verification["ok"], verification


class TestServeCLI:
    def test_usage_errors(self, capsys):
        from repro.__main__ import main
        assert main(["serve", "--seed"]) == 2
        assert main(["serve", "extra"]) == 2
        capsys.readouterr()
