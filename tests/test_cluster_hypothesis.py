"""Property tests: any bounded fault schedule converges the cluster.

The claim under test is the subsystem's reason to exist: for *any*
fault plan within the retry budget -- arbitrary drop/corrupt/duplicate/
jitter/reorder rates, an optional crash -- every operation eventually
succeeds, no corruption is silently accepted, and the replicas
re-converge after settling.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    Crash,
    FaultPlan,
    LinkFaults,
    RetryPolicy,
)
from repro.obs import MetricsRegistry, use_registry

fault_plans = st.builds(
    LinkFaults,
    drop=st.floats(0.0, 0.25),
    duplicate=st.floats(0.0, 0.1),
    corrupt=st.floats(0.0, 0.02),
    jitter=st.floats(0.0, 5e-4),
    reorder=st.floats(0.0, 0.1),
)

crashes = st.one_of(
    st.just(()),
    st.tuples(st.builds(
        Crash,
        node=st.sampled_from(["node0", "node1", "node2"]),
        at=st.floats(0.005, 0.03),
        recover_at=st.floats(0.05, 0.09),
    )),
)


@given(faults=fault_plans, crash_plan=crashes,
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_any_bounded_fault_schedule_converges(faults, crash_plan, seed):
    plan = FaultPlan(default=faults, crashes=crash_plan)
    with use_registry(MetricsRegistry()) as registry:
        cluster = Cluster(servers=3, seed=seed, plan=plan,
                          retry=RetryPolicy.patient(40))
        client = cluster.client()
        results = [client.insert(key, f"record {key}".encode() * 3)
                   for key in range(12)]
        results += [client.update(key, f"updated {key}".encode() * 2)
                    for key in range(0, 12, 2)]
        results += [client.search(key) for key in range(0, 12, 3)]
        cluster.settle()
        # 1. Every operation eventually succeeded.
        assert all(result.ok for result in results)
        # 2. Every injected corruption was detected -- none accepted.
        injected = cluster.faulty_network.injected.get("corrupt", 0)
        assert registry.total("cluster.corruptions_detected") == injected
        # 3. The replicas converged (mirrors and images agree).
        cluster.check_replicas()
