"""Tests for the numpy bulk kernels against scalar reference arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GaloisFieldError
from repro.gf import GF
from repro.gf import vectorized as V


@pytest.fixture(scope="module")
def gf():
    return GF(8)


def reference_component(field, symbols, beta):
    """Scalar reference: sig_beta(P) = XOR p_i * beta^i."""
    acc = 0
    for i, symbol in enumerate(symbols):
        acc ^= field.mul(int(symbol), field.pow(beta, i))
    return acc


class TestByteReinterpretation:
    def test_gf8_identity(self, gf):
        data = bytes(range(256))
        symbols = V.bytes_to_symbols(data, gf)
        assert symbols.tolist() == list(range(256))
        assert V.symbols_to_bytes(symbols, gf) == data

    def test_gf16_little_endian(self):
        gf16 = GF(16)
        symbols = V.bytes_to_symbols(b"\x01\x02\x03\x04", gf16)
        assert symbols.tolist() == [0x0201, 0x0403]

    def test_gf16_odd_length_padded(self):
        gf16 = GF(16)
        symbols = V.bytes_to_symbols(b"\xff", gf16)
        assert symbols.tolist() == [0x00FF]

    def test_gf16_roundtrip_even(self):
        gf16 = GF(16)
        data = bytes(range(100))
        assert V.symbols_to_bytes(V.bytes_to_symbols(data, gf16), gf16) == data

    def test_unusual_width_rejected(self):
        with pytest.raises(GaloisFieldError):
            V.bytes_to_symbols(b"xx", GF(4))

    def test_as_symbol_array_range_check(self, gf):
        with pytest.raises(GaloisFieldError):
            V.as_symbol_array([256], gf)
        with pytest.raises(GaloisFieldError):
            V.as_symbol_array([-1], gf)

    def test_as_symbol_array_accepts_lists(self, gf):
        assert V.as_symbol_array([1, 2, 3], gf).tolist() == [1, 2, 3]


class TestPowerWeights:
    def test_matches_scalar_pow(self, gf):
        beta = 7
        weights = V.power_weights(gf, beta, 20)
        for i in range(20):
            assert weights[i] == gf.pow(beta, i)

    def test_start_offset(self, gf):
        weights = V.power_weights(gf, 3, 10, start=5)
        for i in range(10):
            assert weights[i] == gf.pow(3, 5 + i)

    def test_zero_base_rejected(self, gf):
        with pytest.raises(GaloisFieldError):
            V.power_weights(gf, 0, 4)


class TestComponentSignature:
    @given(st.lists(st.integers(0, 255), max_size=60), st.integers(1, 255))
    @settings(max_examples=100)
    def test_matches_reference(self, symbols, beta):
        gf = GF(8)
        arr = np.array(symbols, dtype=np.int64)
        assert V.component_signature(gf, arr, beta) == \
            reference_component(gf, arr, beta)

    def test_empty_page(self, gf):
        assert V.component_signature(gf, np.zeros(0, dtype=np.int64), 2) == 0

    def test_all_zero_page(self, gf):
        assert V.component_signature(gf, np.zeros(100, dtype=np.int64), 2) == 0

    def test_zero_base_rejected(self, gf):
        with pytest.raises(GaloisFieldError):
            V.component_signature(gf, np.array([1]), 0)

    def test_long_page_gf16(self):
        """Positions beyond the group order wrap correctly."""
        gf16 = GF(16)
        rng = np.random.default_rng(5)
        symbols = rng.integers(0, gf16.size, 200).astype(np.int64)
        assert V.component_signature(gf16, symbols, gf16.alpha) == \
            reference_component(gf16, symbols, gf16.alpha)


class TestSignatureVector:
    def test_matches_per_component(self, gf, rng):
        symbols = rng.integers(0, 256, 50).astype(np.int64)
        betas = (2, 4, 8)
        vector = V.signature_vector(gf, symbols, betas)
        for beta, component in zip(betas, vector):
            assert component == V.component_signature(gf, symbols, beta)

    def test_empty(self, gf):
        assert V.signature_vector(gf, np.zeros(0, dtype=np.int64), (2, 3)) == (0, 0)


class TestTermsAndPrefix:
    def test_term_array(self, gf, rng):
        symbols = rng.integers(0, 256, 30).astype(np.int64)
        terms = V.term_array(gf, symbols, 2)
        for i, symbol in enumerate(symbols):
            assert terms[i] == gf.mul(int(symbol), gf.pow(2, i))

    def test_prefix_xor(self):
        terms = np.array([1, 2, 4], dtype=np.int64)
        assert V.prefix_xor(terms).tolist() == [0, 1, 3, 7]

    def test_prefix_xor_empty(self):
        assert V.prefix_xor(np.zeros(0, dtype=np.int64)).tolist() == [0]


class TestAllWindowSignatures:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=40),
           st.integers(1, 10))
    @settings(max_examples=80)
    def test_every_window_matches_reference(self, symbols, window):
        gf = GF(8)
        arr = np.array(symbols, dtype=np.int64)
        out = V.all_window_signatures(gf, arr, gf.alpha, window)
        if window > arr.size:
            assert out.size == 0
            return
        assert out.size == arr.size - window + 1
        for k in range(out.size):
            assert out[k] == reference_component(gf, arr[k:k + window], gf.alpha)

    def test_bad_window_rejected(self, gf):
        with pytest.raises(GaloisFieldError):
            V.all_window_signatures(gf, np.array([1, 2]), 2, 0)


class TestScale:
    def test_scale_by_zero(self, gf, rng):
        values = rng.integers(0, 256, 10).astype(np.int64)
        assert not V.scale(gf, values, 0).any()

    def test_scale_by_one_copies(self, gf, rng):
        values = rng.integers(0, 256, 10).astype(np.int64)
        scaled = V.scale(gf, values, 1)
        assert np.array_equal(scaled, values)
        scaled[0] ^= 1
        assert not np.array_equal(scaled, values)  # it is a copy

    @given(st.lists(st.integers(0, 255), max_size=30), st.integers(1, 255))
    @settings(max_examples=60)
    def test_scale_matches_scalar(self, values, factor):
        gf = GF(8)
        arr = np.array(values, dtype=np.int64)
        scaled = V.scale(gf, arr, factor)
        for got, value in zip(scaled, values):
            assert got == gf.mul(value, factor)
