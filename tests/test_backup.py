"""Tests for the signature-map backup engine and the dirty-bit baseline."""

import numpy as np
import pytest

from repro.backup import (
    BackupEngine,
    CpuModel,
    DirtyBitBackupEngine,
    DirtyBitTracker,
)
from repro.errors import BackupError
from repro.sdds import Bucket, Record
from repro.sig import make_scheme
from repro.sim import DiskModel, SimClock, SimDisk
from repro.workloads import make_page


@pytest.fixture()
def engine16():
    scheme = make_scheme(f=16, n=2)
    disk = SimDisk(SimClock())
    return BackupEngine(scheme, disk, page_bytes=1024)


def random_image(nbytes, seed=0):
    rng = np.random.default_rng(seed)
    return bytearray(rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes())


class TestFirstBackup:
    def test_writes_everything(self, engine16):
        image = random_image(16 * 1024)
        report = engine16.backup("vol", bytes(image))
        assert report.pages_total == 16
        assert report.pages_written == 16
        assert report.bytes_written == 16 * 1024

    def test_restore_equals_source(self, engine16):
        image = bytes(random_image(10_000))
        engine16.backup("vol", image)
        restored = engine16.restore("vol")
        assert restored[:len(image)] == image

    def test_restore_unknown_volume(self, engine16):
        with pytest.raises(BackupError):
            engine16.restore("nope")


class TestIncrementalBackup:
    def test_unchanged_image_writes_nothing(self, engine16):
        image = bytes(random_image(8192))
        engine16.backup("vol", image)
        report = engine16.backup("vol", image)
        assert report.pages_written == 0
        assert report.bytes_written == 0

    def test_single_byte_change_writes_one_page(self, engine16):
        image = random_image(8192)
        engine16.backup("vol", bytes(image))
        image[5000] ^= 0xFF
        report = engine16.backup("vol", bytes(image))
        assert report.pages_written == 1
        assert engine16.restore("vol")[:8192] == bytes(image)

    def test_scattered_changes(self, engine16):
        image = random_image(16 * 1024, seed=7)
        engine16.backup("vol", bytes(image))
        for position in (10, 3000, 9000, 15000):
            image[position] ^= 1
        report = engine16.backup("vol", bytes(image))
        assert report.pages_written == 4
        assert engine16.restore("vol")[:len(image)] == bytes(image)

    def test_growth_appends_pages(self, engine16):
        image = random_image(4096)
        engine16.backup("vol", bytes(image))
        grown = bytes(image) + bytes(random_image(2048, seed=9))
        report = engine16.backup("vol", grown)
        assert report.pages_written == 2
        assert engine16.restore("vol")[:len(grown)] == grown

    def test_write_identical_bytes_skipped(self, engine16):
        """The key advantage over dirty bits: rewriting a page with the
        same content is recognized as clean."""
        image = random_image(4096)
        engine16.backup("vol", bytes(image))
        # Simulate a same-value write: image is byte-identical.
        report = engine16.backup("vol", bytes(image))
        assert report.pages_written == 0


class TestCostModel:
    def test_signature_time_charged(self):
        scheme = make_scheme(f=16, n=2)
        clock = SimClock()
        disk = SimDisk(clock)
        engine = BackupEngine(scheme, disk, page_bytes=1024,
                              cpu=CpuModel(sig_seconds_per_byte=1e-9))
        engine.backup("vol", bytes(random_image(1 << 20)))
        second_start = clock.now
        engine.backup("vol", bytes(random_image(1 << 20)))
        # Unchanged image: only signature time, no writes.
        assert clock.now - second_start == pytest.approx((1 << 20) * 1e-9)

    def test_skipping_beats_full_copy(self):
        """With the paper's constants (25 ms/MB signatures vs 300 ms/MB
        writes) an unchanged backup pass is ~12x cheaper."""
        scheme = make_scheme(f=16, n=2)
        clock = SimClock()
        disk = SimDisk(clock, model=DiskModel(seek_time=0.0))
        engine = BackupEngine(scheme, disk, page_bytes=16 * 1024)
        image = bytes(random_image(1 << 20))
        first = engine.backup("vol", image)
        second = engine.backup("vol", image)
        assert second.total_seconds < first.total_seconds / 5

    def test_page_size_validation(self):
        scheme = make_scheme(f=16, n=2)
        with pytest.raises(BackupError):
            BackupEngine(scheme, SimDisk(), page_bytes=1023)  # odd for f=16
        with pytest.raises(BackupError):
            BackupEngine(scheme, SimDisk(), page_bytes=256 * 1024)  # > bound

    def test_paper_page_size_fits(self):
        """16 KB pages with GF(2^16): the paper's production choice."""
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=16 * 1024)
        assert engine.page_symbols == 8192


class TestTreeBackup:
    def test_tree_mode_same_results(self):
        scheme = make_scheme(f=16, n=2)
        flat = BackupEngine(scheme, SimDisk(), page_bytes=512)
        tree = BackupEngine(scheme, SimDisk(), page_bytes=512, use_tree=True)
        image = random_image(64 * 512)
        flat.backup("vol", bytes(image))
        tree.backup("vol", bytes(image))
        image[100] ^= 1
        image[20_000] ^= 1
        flat_report = flat.backup("vol", bytes(image))
        tree_report = tree.backup("vol", bytes(image))
        assert flat_report.pages_written == tree_report.pages_written == 2
        assert tree.restore("vol")[:len(image)] == bytes(image)

    def test_tree_compares_fewer_nodes(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512,
                              use_tree=True, tree_fanout=4)
        image = random_image(256 * 512)
        engine.backup("vol", bytes(image))
        image[1000] ^= 1
        report = engine.backup("vol", bytes(image))
        assert report.pages_written == 1
        assert 0 < report.tree_comparisons < 256


class TestBucketBackup:
    def test_heap_and_index_both_backed_up(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=1024)
        bucket = Bucket(0)
        for key in range(50):
            bucket.insert(Record(key, make_page("ascii", 80, seed=key)))
        heap_report, index_report = engine.backup_bucket("b0", bucket)
        assert heap_report.pages_written > 0
        assert index_report.pages_written > 0
        # Index pages use the paper's small granularity.
        heap_report2, index_report2 = engine.backup_bucket("b0", bucket)
        assert heap_report2.pages_written == 0
        assert index_report2.pages_written == 0

    def test_record_update_dirties_one_heap_page(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=1024)
        bucket = Bucket(0)
        for key in range(50):
            bucket.insert(Record(key, b"v" * 80))
        engine.backup_bucket("b0", bucket)
        bucket.update(25, b"w" * 80)
        heap_report, _index = engine.backup_bucket("b0", bucket)
        assert heap_report.pages_written == 1


class TestDirtyBitBaseline:
    def test_tracks_writes(self):
        bucket = Bucket(0)
        tracker = DirtyBitTracker(bucket.heap, page_bytes=256)
        disk = SimDisk()
        engine = DirtyBitBackupEngine(tracker, disk)
        bucket.insert(Record(1, b"x" * 100))
        first = engine.backup("vol", bucket.heap.image)
        assert first.pages_written > 0
        second = engine.backup("vol", bucket.heap.image)
        assert second.pages_written == 0
        bucket.update(1, b"y" * 100)
        third = engine.backup("vol", bucket.heap.image)
        assert third.pages_written >= 1

    def test_same_value_write_still_copied(self):
        """The dirty-bit weakness: a write of identical bytes marks the
        page dirty and forces a copy the signature engine would skip."""
        bucket = Bucket(0)
        tracker = DirtyBitTracker(bucket.heap, page_bytes=256)
        engine = DirtyBitBackupEngine(tracker, SimDisk())
        bucket.insert(Record(1, b"x" * 100))
        engine.backup("vol", bucket.heap.image)
        bucket.update(1, b"x" * 100)  # identical bytes
        report = engine.backup("vol", bucket.heap.image)
        assert report.pages_written >= 1

    def test_agreement_with_signature_engine(self):
        """Every page the signature engine writes is also dirty-bit
        dirty (signatures never miss a byte change the tracker saw)."""
        scheme = make_scheme(f=16, n=2)
        bucket = Bucket(0)
        tracker = DirtyBitTracker(bucket.heap, page_bytes=512)
        sig_engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        for key in range(30):
            bucket.insert(Record(key, b"v" * 64))
        sig_engine.backup("vol", bucket.heap.image)
        tracker.reset()
        bucket.update(7, b"w" * 64)
        bucket.update(23, b"u" * 64)
        dirty = set(tracker.dirty_pages())
        report = sig_engine.backup("vol", bucket.heap.image)
        sig_pages = report.pages_written
        assert sig_pages <= len(dirty) + 1  # sig never writes more real pages

    def test_page_size_validation(self):
        bucket = Bucket(0)
        with pytest.raises(BackupError):
            DirtyBitTracker(bucket.heap, page_bytes=0)
