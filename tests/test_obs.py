"""Tests for the observability layer: registry, tracer, run reports."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    RunReport,
    SCHEMA,
    Snapshotable,
    Tracer,
    get_registry,
    labels_to_str,
    set_registry,
    use_registry,
)
from repro.sim import DiskStats, SimClock, TrafficStats

GOLDEN = pathlib.Path(__file__).parent / "data" / "run_report_golden.json"


class TestRegistryLabels:
    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("net.bytes", kind="insert", node="s1")
        b = registry.counter("net.bytes", node="s1", kind="insert")
        assert a is b

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        a = registry.counter("net.bytes", kind="insert")
        b = registry.counter("net.bytes", kind="search")
        assert a is not b
        assert len(registry) == 2

    def test_labels_canonical_order(self):
        registry = MetricsRegistry()
        counter = registry.counter("net.bytes", zz="1", aa="2")
        assert labels_to_str(counter.labels) == "aa=2,zz=1"

    def test_label_values_coerced_to_str(self):
        registry = MetricsRegistry()
        counter = registry.counter("sdds.ops", server=3)
        assert counter.labels == (("server", "3"),)

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("Net.bytes", "net..bytes", "9net", "net-bytes", ""):
            with pytest.raises(MetricError):
                registry.counter(bad)

    def test_invalid_label_key_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("net.bytes", **{"Kind": "x"})

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes")
        with pytest.raises(MetricError):
            registry.gauge("net.bytes")

    def test_counter_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("net.bytes").inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("backup.file_buckets")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value == 3

    def test_total_sums_matching_series(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes", kind="insert").inc(100)
        registry.counter("net.bytes", kind="search").inc(40)
        registry.counter("net.messages", kind="insert").inc(1)
        assert registry.total("net.bytes") == 140
        assert registry.total("net.bytes", kind="search") == 40
        assert registry.total("net.bytes", kind="missing") == 0

    def test_reset_drops_series(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes").inc(7)
        registry.reset()
        assert len(registry) == 0


class TestHistogram:
    def test_percentiles_exact_ranks(self):
        hist = MetricsRegistry().histogram("sdds.op_seconds")
        for value in (4, 1, 3, 2):  # unsorted on purpose
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 4
        assert hist.percentile(50) == 2.5

    def test_percentile_interpolation(self):
        hist = MetricsRegistry().histogram("sdds.op_seconds")
        for value in (0, 10):
            hist.observe(value)
        assert hist.percentile(90) == pytest.approx(9.0)

    def test_percentile_out_of_range(self):
        hist = MetricsRegistry().histogram("sdds.op_seconds")
        with pytest.raises(MetricError):
            hist.percentile(101)

    def test_empty_histogram_snapshot(self):
        hist = MetricsRegistry().histogram("sdds.op_seconds")
        assert hist.snapshot()["value"] == {
            "count": 0, "max": 0, "min": 0, "p50": 0, "p90": 0, "p99": 0,
            "p999": 0, "stddev": 0, "sum": 0,
        }

    def test_summary_statistics(self):
        hist = MetricsRegistry().histogram("backup.tree_depth")
        for value in (1, 2, 3):
            hist.observe(value)
        assert (hist.count, hist.sum, hist.min, hist.max) == (3, 6, 1, 3)


class TestRegistryInjection:
    def test_use_registry_restores_previous(self):
        outer = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh) as active:
            assert active is fresh
            assert get_registry() is fresh
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        outer = get_registry()
        fresh = MetricsRegistry()
        assert set_registry(fresh) is outer
        assert set_registry(outer) is fresh

    def test_instrumented_code_hits_injected_registry(self):
        from repro.sig import make_scheme

        scheme = make_scheme(f=8, n=2)
        first, second = MetricsRegistry(), MetricsRegistry()
        with use_registry(first):
            scheme.sign(b"abcd")
        with use_registry(second):
            scheme.sign(b"abcdefgh")
        assert first.total("sig.bytes_signed") == 4
        assert second.total("sig.bytes_signed") == 8


class TestSnapshotable:
    def test_metric_series_conform(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("net.bytes"), Snapshotable)
        assert isinstance(registry.gauge("net.depth"), Snapshotable)
        assert isinstance(registry.histogram("net.lat"), Snapshotable)
        assert isinstance(registry, Snapshotable)

    def test_sim_stats_conform(self):
        assert isinstance(TrafficStats(), Snapshotable)
        assert isinstance(DiskStats(), Snapshotable)

    def test_traffic_snapshot_key_order(self):
        stats = TrafficStats()
        stats.record("update", 10)
        stats.record("ack", 2)
        snapshot = stats.snapshot()
        assert list(snapshot) == ["bytes", "by_kind", "messages"]
        assert list(snapshot["by_kind"]) == ["ack", "update"]

    def test_disk_snapshot_key_order(self):
        assert list(DiskStats().snapshot()) == [
            "bytes_read", "bytes_written", "reads", "writes",
        ]


class TestTracer:
    def test_nesting_under_sim_clock(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", phase="e5") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
                inner.event("wrote", pages=3)
            clock.advance(0.5)
        assert tracer.depth == 0
        first, second = tracer.finished
        assert (first.name, first.depth, first.parent) == ("inner", 1, "outer")
        assert (second.name, second.depth, second.parent) == ("outer", 0, None)
        assert first.sim_seconds == pytest.approx(0.25)
        assert second.sim_seconds == pytest.approx(1.75)
        assert outer.labels == {"phase": "e5"}
        event = first.events[0]
        assert event.name == "wrote"
        assert event.fields == {"pages": 3}
        assert event.sim_offset == pytest.approx(0.25)

    def test_wall_only_without_clock(self):
        tracer = Tracer()
        with tracer.span("solo"):
            pass
        span = tracer.finished[0]
        assert span.sim_seconds is None
        assert span.wall_seconds >= 0

    def test_snapshot_excludes_wall_by_default(self):
        tracer = Tracer(clock=SimClock())
        with tracer.span("a") as span:
            span.event("tick")
        entry = tracer.snapshot()[0]
        assert "wall_seconds" not in entry
        assert "wall_offset" not in entry["events"][0]
        with_wall = tracer.snapshot(include_wall=True)[0]
        assert "wall_seconds" in with_wall
        assert "wall_offset" in with_wall["events"][0]

    def test_empty_span_name_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            with Tracer().span(""):
                pass


def _golden_report() -> RunReport:
    """The fixed workload behind the golden-file test (no wall clock)."""
    registry = MetricsRegistry()
    registry.counter("sig.bytes_signed", field="gf16",
                     variant="standard").inc(4096)
    registry.counter("net.messages", kind="insert").inc(3)
    registry.gauge("backup.file_buckets").set(4)
    hist = registry.histogram("sdds.op_seconds", op="search")
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    clock = SimClock()
    tracer = Tracer(clock=clock)
    with tracer.span("workload", experiment="golden"):
        clock.advance(1.5)
        with tracer.span("backup") as span:
            clock.advance(0.25)
            span.event("wrote", pages=2)
    return RunReport(registry, tracer=tracer, meta={"source": "golden"})


class TestRunReport:
    def test_json_matches_golden_file(self):
        assert _golden_report().to_json() + "\n" == GOLDEN.read_text()

    def test_json_is_stable_across_runs(self):
        assert _golden_report().to_json() == _golden_report().to_json()

    def test_schema_tag_present(self):
        document = _golden_report().to_dict()
        assert document["schema"] == SCHEMA
        assert set(document) == {"meta", "metrics", "schema", "spans"}

    def test_metrics_snapshot_shape(self):
        metrics = _golden_report().to_dict()["metrics"]
        assert metrics["net.messages"]["kind=insert"] == 3
        summary = metrics["sdds.op_seconds"]["op=search"]
        assert summary["count"] == 4
        assert summary["p50"] == pytest.approx(2.5)

    def test_render_groups_by_subsystem(self):
        text = _golden_report().render()
        for section in ("== backup ==", "== net ==", "== sdds ==",
                        "== sig ==", "== spans =="):
            assert section in text
        assert "source=golden" in text

    def test_render_empty_registry(self):
        text = RunReport(MetricsRegistry()).render()
        assert "(no metrics recorded)" in text

    def test_json_round_trips(self):
        document = json.loads(_golden_report().to_json(indent=None))
        assert document["meta"] == {"source": "golden"}


class TestSeriesReprs:
    def test_reprs_are_informative(self):
        registry = MetricsRegistry()
        counter = registry.counter("net.bytes", kind="x")
        counter.inc(5)
        assert repr(counter) == "Counter(net.bytes{kind=x}=5)"
        gauge = registry.gauge("net.depth")
        gauge.set(2)
        assert repr(gauge) == "Gauge(net.depth{}=2)"
        hist = registry.histogram("net.lat")
        hist.observe(1)
        assert repr(hist) == "Histogram(net.lat{}, n=1)"

    def test_counter_and_gauge_are_distinct_types(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("a.b"), Counter)
        assert isinstance(registry.gauge("a.c"), Gauge)
        assert isinstance(registry.histogram("a.d"), Histogram)
