"""Tests for replica reconciliation by signature exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs import MetricsRegistry, use_registry
from repro.sig import make_scheme
from repro.sim import SimNetwork
from repro.sync import Replica, sync_by_map, sync_by_tree
from repro.workloads import make_page


def make_pair(nbytes=64 * 1024, page_bytes=1024, mutations=(), seed=0):
    scheme = make_scheme(f=16, n=2)
    base = bytearray(make_page("random", nbytes, seed=seed))
    source = Replica("source", scheme, bytes(base), page_bytes)
    stale = bytearray(base)
    for position in mutations:
        stale[position] ^= 0xFF
    target = Replica("target", scheme, bytes(stale), page_bytes)
    return source, target


@pytest.mark.parametrize("sync", [sync_by_map, sync_by_tree])
class TestBothProtocols:
    def test_identical_replicas_ship_nothing(self, sync):
        source, target = make_pair()
        report = sync(source, target, SimNetwork())
        assert report.pages_shipped == 0
        assert report.data_bytes == 0
        assert bytes(target.data) == bytes(source.data)

    def test_scattered_divergence_repaired(self, sync):
        source, target = make_pair(mutations=(100, 5000, 50_000))
        report = sync(source, target, SimNetwork())
        assert bytes(target.data) == bytes(source.data)
        assert report.pages_shipped == 3
        assert report.data_bytes == 3 * 1024

    def test_total_divergence(self, sync):
        source, _ = make_pair(seed=1)
        scheme = source.scheme
        target = Replica("target", scheme,
                         make_page("random", 64 * 1024, seed=2), 1024)
        report = sync(source, target, SimNetwork())
        assert bytes(target.data) == bytes(source.data)
        assert report.pages_shipped == report.pages_total == 64

    def test_traffic_accounted(self, sync):
        source, target = make_pair(mutations=(100,))
        network = SimNetwork()
        report = sync(source, target, network)
        assert network.stats.bytes >= report.total_bytes
        assert network.stats.messages >= 3

    @given(st.integers(0, 2**32 - 1), st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_random_divergence_converges(self, sync, seed, n_mutations):
        rng = np.random.default_rng(seed)
        mutations = tuple(
            int(p) for p in rng.choice(16 * 1024, size=n_mutations,
                                       replace=False)
        )
        source, target = make_pair(nbytes=16 * 1024, page_bytes=512,
                                   mutations=mutations, seed=seed)
        sync(source, target, SimNetwork())
        assert bytes(target.data) == bytes(source.data)


class TestProtocolEconomics:
    def test_tree_cheaper_for_few_changes(self):
        """One changed page in a large file: the tree probe exchanges
        far fewer signature bytes than shipping the whole map."""
        map_source, map_target = make_pair(nbytes=1 << 20, page_bytes=1024,
                                           mutations=(500_000,))
        tree_source, tree_target = make_pair(nbytes=1 << 20, page_bytes=1024,
                                             mutations=(500_000,))
        map_report = sync_by_map(map_source, map_target, SimNetwork())
        tree_report = sync_by_tree(tree_source, tree_target, SimNetwork())
        assert tree_report.pages_shipped == map_report.pages_shipped == 1
        assert tree_report.signature_bytes < map_report.signature_bytes / 5

    def test_map_fewer_rounds(self):
        """The map exchange always finishes in two rounds; the tree pays
        log-depth round trips for its bandwidth savings."""
        source, target = make_pair(mutations=(100,))
        map_report = sync_by_map(source, target, SimNetwork())
        source2, target2 = make_pair(mutations=(100,))
        tree_report = sync_by_tree(source2, target2, SimNetwork())
        assert map_report.rounds == 2
        assert tree_report.rounds > 2

    def test_tree_falls_back_on_length_mismatch(self):
        scheme = make_scheme(f=16, n=2)
        source = Replica("s", scheme, make_page("random", 8192, seed=3), 1024)
        target = Replica("t", scheme, make_page("random", 4096, seed=4), 1024)
        report = sync_by_tree(source, target, SimNetwork())
        assert bytes(target.data) == bytes(source.data)
        assert report.rounds == 2  # the map path ran

    def test_shrinking_source(self):
        scheme = make_scheme(f=16, n=2)
        source = Replica("s", scheme, make_page("random", 4096, seed=5), 1024)
        target = Replica("t", scheme, make_page("random", 8192, seed=5), 1024)
        sync_by_map(source, target, SimNetwork())
        assert bytes(target.data) == bytes(source.data)


class TestValidation:
    def test_mismatched_schemes_rejected(self):
        a = Replica("a", make_scheme(f=16, n=2), b"x" * 1024, 128)
        b = Replica("b", make_scheme(f=8, n=2), b"x" * 1024, 128)
        with pytest.raises(ReproError):
            sync_by_map(a, b, SimNetwork())

    def test_mismatched_page_sizes_rejected(self):
        scheme = make_scheme(f=16, n=2)
        a = Replica("a", scheme, b"x" * 1024, 512)
        b = Replica("b", scheme, b"x" * 1024, 256)
        with pytest.raises(ReproError):
            sync_by_map(a, b, SimNetwork())

    def test_odd_page_size_rejected(self):
        with pytest.raises(ReproError):
            Replica("a", make_scheme(f=16, n=2), b"x" * 100, 511)

    def test_oversized_page_rejected(self):
        with pytest.raises(ReproError):
            Replica("a", make_scheme(f=16, n=2), b"", 1 << 20)


class TestSyncMetrics:
    def test_map_sync_emits_series(self):
        with use_registry(MetricsRegistry()) as registry:
            source, target = make_pair(mutations=(100, 5000))
            report = sync_by_map(source, target, SimNetwork())
        assert registry.total("sync.syncs", protocol="map") == 1
        assert registry.total("sync.pages_shipped", protocol="map") == 2
        assert registry.total("sync.sig_bytes", protocol="map") == \
            report.signature_bytes
        assert registry.total("sync.data_bytes", protocol="map") == \
            report.data_bytes
        # The flat map compares every page signature.
        assert registry.total("sync.nodes_compared", protocol="map") == \
            source.page_count

    def test_tree_sync_emits_series(self):
        with use_registry(MetricsRegistry()) as registry:
            source, target = make_pair(mutations=(100,))
            report = sync_by_tree(source, target, SimNetwork())
        assert registry.total("sync.syncs", protocol="tree") == 1
        assert registry.total("sync.pages_shipped", protocol="tree") == 1
        assert registry.total("sync.sig_bytes", protocol="tree") == \
            report.signature_bytes
        compared = registry.total("sync.nodes_compared", protocol="tree")
        # The probe walks a root-to-leaf cone, far fewer comparisons
        # than the flat map's one-per-page.
        assert 0 < compared < source.page_count

    def test_identical_replicas_compare_only_the_root(self):
        with use_registry(MetricsRegistry()) as registry:
            source, target = make_pair()
            sync_by_tree(source, target, SimNetwork())
        assert registry.total("sync.nodes_compared", protocol="tree") == 1
        assert registry.total("sync.pages_shipped", protocol="tree") == 0


class TestTreeFanoutSweep:
    @pytest.mark.parametrize("fanout", [2, 3, 8, 64])
    def test_any_fanout_converges(self, fanout):
        source, target = make_pair(nbytes=32 * 1024, page_bytes=512,
                                   mutations=(1000, 20_000))
        report = sync_by_tree(source, target, SimNetwork(), fanout=fanout)
        assert bytes(target.data) == bytes(source.data)
        assert report.pages_shipped == 2

    def test_binary_tree_deepest_cheapest_signatures(self):
        """Fanout 2 maximizes rounds but minimizes suspect sets."""
        shallow_src, shallow_dst = make_pair(nbytes=256 * 1024,
                                             page_bytes=512,
                                             mutations=(100_000,))
        deep_src, deep_dst = make_pair(nbytes=256 * 1024, page_bytes=512,
                                       mutations=(100_000,))
        shallow = sync_by_tree(shallow_src, shallow_dst, SimNetwork(),
                               fanout=64)
        deep = sync_by_tree(deep_src, deep_dst, SimNetwork(), fanout=2)
        assert deep.rounds > shallow.rounds
        assert deep.signature_bytes < shallow.signature_bytes
