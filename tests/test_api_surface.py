"""Direct tests for API surface not exercised elsewhere.

Each public helper gets at least one direct behavioural test, so every
entry in docs/API.md is backed by an assertion somewhere.
"""

import pytest

from repro.analysis import (
    expected_collision_interval_seconds,
    expected_collision_interval_years,
    print_table,
)
from repro.backup import DirtyBitTracker
from repro.gf.primitives import default_polynomial, validate_generator
from repro.errors import GaloisFieldError, SignatureMismatchError
from repro.sdds import Bucket, LHFile, Record, RecordHeap
from repro.sdds import messages
from repro.sig import StreamSigner, UpdateLog, make_scheme
from repro.sig.base import consecutive_powers_base, primitive_powers_base
from repro.sim import DiskModel, SimDisk, SimNetwork
from repro.sync import Replica
from repro.workloads import ascii_page, random_page


class TestMessagesPayloads:
    def test_sizes_compose(self):
        assert messages.key_payload() == messages.HEADER_BYTES + 4
        assert messages.record_payload(100) == messages.HEADER_BYTES + 104
        assert messages.signature_payload(4) == messages.HEADER_BYTES + 8
        assert messages.update_payload(100, 4) == messages.HEADER_BYTES + 108
        assert messages.ack_payload() == messages.HEADER_BYTES
        assert messages.scan_request_payload(4) == messages.HEADER_BYTES + 8
        assert messages.scan_reply_payload([10, 20]) == \
            messages.HEADER_BYTES + (4 + 10) + (4 + 20)

    def test_update_message_dominated_by_record(self):
        """The §2.2 point in byte arithmetic: the signature adds 4 bytes
        to a record-sized message."""
        assert messages.update_payload(1024, 4) - \
            messages.record_payload(1024) == 4


class TestBasesDirect:
    def test_consecutive_base_explicit(self, gf8):
        base = consecutive_powers_base(gf8, 3)
        assert base.exponents == (1, 2, 3)

    def test_primitive_base_explicit(self, gf8):
        base = primitive_powers_base(gf8, 3)
        assert base.exponents == (1, 2, 4)

    def test_signature_mismatch_error_type(self):
        a = make_scheme(f=8, n=2).sign(b"x")
        b = make_scheme(f=8, n=3).sign(b"x")
        with pytest.raises(SignatureMismatchError):
            a.check_compatible(b)


class TestFieldHelpers:
    def test_alpha_power(self, gf8):
        for i in (0, 1, 5, 254, 255, 1000):
            assert gf8.alpha_power(i) == gf8.antilog(i)

    def test_default_polynomial_falls_back_to_search(self):
        assert default_polynomial(8) == 0x11D

    def test_validate_generator_passthrough(self):
        assert validate_generator(8, 0x11D) == 0x11D
        with pytest.raises(GaloisFieldError):
            validate_generator(8, 0x11B)  # AES poly: irreducible, not primitive


class TestStatsAndModels:
    def test_traffic_snapshot(self):
        network = SimNetwork()
        network.send("a", "b", "probe", 10)
        snapshot = network.stats.snapshot()
        assert snapshot["messages"] == 1
        assert snapshot["bytes"] == 10
        assert snapshot["by_kind"] == {"probe": 1}

    def test_disk_snapshot_and_read_time(self):
        disk = SimDisk(model=DiskModel(seek_time=0.0, seconds_per_byte=1e-6))
        disk.write_page("v", 0, b"abcd", 8)
        disk.read_page("v", 0)
        snapshot = disk.stats.snapshot()
        assert snapshot["writes"] == 1 and snapshot["reads"] == 1
        assert disk.model.read_time(1000) == pytest.approx(1e-3)


class TestDirtyBitsDirect:
    def test_is_dirty_and_mark_all(self):
        heap = RecordHeap(1024)
        tracker = DirtyBitTracker(heap, page_bytes=256)
        tracker.reset()
        assert not tracker.is_dirty(0)
        offset = heap.allocate(4)
        heap.write(offset, b"abcd")
        assert tracker.is_dirty(offset // 256)
        tracker.reset()
        tracker.mark_all_dirty()
        assert tracker.dirty_pages() == list(range(tracker.page_count))


class TestServerScanExact:
    def test_matches_python_in(self):
        file = LHFile(make_scheme(f=16, n=2), capacity_records=64)
        client = file.client()
        client.insert(Record(1, b"hay hay NEEDLE hay"))
        client.insert(Record(2, b"nothing here......"))
        server = file.server(0)
        hits = server.scan_exact(b"NEEDLE")
        assert [record.key for record in hits] == [1]


class TestStreamInternals:
    def test_replay_signature_direct(self):
        scheme = make_scheme(f=16, n=2)
        block = b"\x00" * 64
        log = UpdateLog(scheme, scheme.sign(block))
        log.record(0, b"\x00\x00", b"\x01\x02")
        replayed = log.replay_signature()
        assert replayed == scheme.sign(b"\x01\x02" + b"\x00" * 62)

    def test_stream_signer_symbols_counter(self):
        scheme = make_scheme(f=16, n=2)
        signer = StreamSigner(scheme)
        signer.append(b"abcd")
        assert signer.symbols == 2  # two double-byte symbols


class TestAnalysisHelpers:
    def test_interval_units_consistent(self):
        scheme = make_scheme(f=16, n=2)
        seconds = expected_collision_interval_seconds(scheme, 10.0)
        years = expected_collision_interval_years(scheme, 10.0)
        assert seconds == pytest.approx(years * 365.25 * 24 * 3600)

    def test_print_table_writes_stdout(self, capsys):
        print_table(["a"], [[1]], title="t")
        out = capsys.readouterr().out
        assert "t" in out and "1" in out


class TestMiscSurface:
    def test_bucket_image_bytes(self):
        bucket = Bucket(0, initial_heap_bytes=2048)
        assert bucket.image_bytes == 2048

    def test_replica_signature_tree(self):
        replica = Replica("r", make_scheme(f=16, n=2),
                          random_page(4096, seed=1), 512)
        tree = replica.signature_tree(fanout=4)
        assert tree.leaf_count == replica.page_count

    def test_page_generators_direct(self):
        assert len(random_page(10)) == 10
        assert all(0x20 <= b < 0x7F for b in ascii_page(50))

    def test_lhrs_bucket_of(self):
        from repro.parity import LHRSStore

        store = LHRSStore(make_scheme(f=16, n=2), 3, 1, record_bytes=32)
        assert store.bucket_of(7) == 7 % 3

    def test_rp_owns(self):
        from repro.sdds import RPFile

        file = RPFile(make_scheme(f=16, n=2))
        assert file.server(0).owns(123)
