"""Unit and property tests for GF(2^f) field arithmetic."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GaloisFieldError, NotInvertibleError
from repro.gf import GF, DEFAULT_POLYNOMIALS, GField, find_primitive_polynomial


class TestConstruction:
    @pytest.mark.parametrize("f", range(2, 17))
    def test_all_supported_widths(self, f):
        field = GF(f)
        assert field.size == 1 << f
        assert field.order == (1 << f) - 1

    def test_width_out_of_range(self):
        with pytest.raises(GaloisFieldError):
            GField(1)
        with pytest.raises(GaloisFieldError):
            GField(17)

    def test_non_primitive_generator_rejected(self):
        # x^4+x^3+x^2+x+1 is irreducible but not primitive.
        with pytest.raises(GaloisFieldError):
            GField(4, generator=0b11111)

    def test_wrong_degree_generator_rejected(self):
        with pytest.raises(GaloisFieldError):
            GField(8, generator=0b1011)

    def test_alternate_primitive_generator_accepted(self):
        field = GField(16, generator=0x1100B)
        assert field.mul(3, field.inv(3)) == 1

    def test_gf_caches_instances(self):
        assert GF(8) is GF(8)
        assert GF(8) is not GF(8, 0x12B) if 0x12B != DEFAULT_POLYNOMIALS[8] else True

    def test_catalogue_matches_exhaustive_search(self):
        # The cached defaults are re-derivable from scratch.
        for f in range(2, 17):
            assert DEFAULT_POLYNOMIALS[f] == find_primitive_polynomial(f)


class TestTables:
    def test_log_antilog_inverse(self, gf8):
        for value in range(1, gf8.size):
            assert gf8.antilog(gf8.log(value)) == value

    def test_antilog_cycles(self, gf8):
        assert gf8.antilog(0) == 1
        assert gf8.antilog(gf8.order) == 1

    def test_log_zero_undefined(self, gf8):
        with pytest.raises(GaloisFieldError):
            gf8.log(0)

    def test_alpha_is_x(self, gf8):
        assert gf8.alpha == 2
        assert gf8.log(gf8.alpha) == 1

    def test_antilog_table_is_permutation(self, gf16):
        values = np.sort(gf16.antilog_table)
        assert np.array_equal(values, np.arange(1, gf16.size))


class TestFieldAxioms:
    """Field axioms, exhaustive in GF(2^4) and sampled in GF(2^8)/GF(2^16)."""

    def test_exhaustive_axioms_gf4(self, gf4):
        size = gf4.size
        for a in range(size):
            for b in range(size):
                assert gf4.mul(a, b) == gf4.mul(b, a)
                for c in range(size):
                    assert gf4.mul(a, b ^ c) == gf4.mul(a, b) ^ gf4.mul(a, c)

    def test_exhaustive_associativity_gf4(self, gf4):
        size = gf4.size
        for a in range(size):
            for b in range(size):
                for c in range(size):
                    assert gf4.mul(gf4.mul(a, b), c) == gf4.mul(a, gf4.mul(b, c))

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_sampled_axioms_gf8(self, a, b, c):
        gf8 = GF(8)
        assert gf8.mul(a, b) == gf8.mul(b, a)
        assert gf8.mul(gf8.mul(a, b), c) == gf8.mul(a, gf8.mul(b, c))
        assert gf8.mul(a, b ^ c) == gf8.mul(a, b) ^ gf8.mul(a, c)

    @given(st.integers(0, 65535), st.integers(0, 65535), st.integers(0, 65535))
    @settings(max_examples=200)
    def test_sampled_axioms_gf16(self, a, b, c):
        gf16 = GF(16)
        assert gf16.mul(a, b) == gf16.mul(b, a)
        assert gf16.mul(gf16.mul(a, b), c) == gf16.mul(a, gf16.mul(b, c))
        assert gf16.mul(a, b ^ c) == gf16.mul(a, b) ^ gf16.mul(a, c)

    def test_multiplicative_identity(self, gf8):
        for a in range(gf8.size):
            assert gf8.mul(a, 1) == a

    def test_zero_annihilates(self, gf8):
        for a in range(gf8.size):
            assert gf8.mul(a, 0) == 0

    def test_every_nonzero_invertible_gf8(self, gf8):
        for a in range(1, gf8.size):
            assert gf8.mul(a, gf8.inv(a)) == 1

    @given(st.integers(1, 65535))
    def test_inverse_gf16(self, a):
        gf16 = GF(16)
        assert gf16.mul(a, gf16.inv(a)) == 1

    def test_zero_not_invertible(self, gf8):
        with pytest.raises(NotInvertibleError):
            gf8.inv(0)

    def test_mul_matches_polynomial_mulmod(self, gf8):
        """Table multiplication agrees with direct polynomial arithmetic."""
        from repro.gf.polynomial import mulmod

        rng = np.random.default_rng(1)
        for _ in range(500):
            a, b = int(rng.integers(0, 256)), int(rng.integers(0, 256))
            assert gf8.mul(a, b) == mulmod(a, b, gf8.generator)


class TestDivision:
    @given(st.integers(0, 255), st.integers(1, 255))
    def test_div_then_mul(self, a, b):
        gf8 = GF(8)
        assert gf8.mul(gf8.div(a, b), b) == a

    def test_division_by_zero(self, gf8):
        with pytest.raises(NotInvertibleError):
            gf8.div(5, 0)

    def test_zero_dividend(self, gf8):
        assert gf8.div(0, 7) == 0


class TestPow:
    def test_pow_zero_exponent(self, gf8):
        assert gf8.pow(5, 0) == 1
        assert gf8.pow(0, 0) == 1

    def test_pow_zero_base(self, gf8):
        assert gf8.pow(0, 5) == 0
        with pytest.raises(NotInvertibleError):
            gf8.pow(0, -1)

    @given(st.integers(1, 255), st.integers(-20, 40))
    @settings(max_examples=100)
    def test_pow_matches_repeated_mul(self, a, exponent):
        gf8 = GF(8)
        result = gf8.pow(a, exponent)
        expected = 1
        base = a if exponent >= 0 else gf8.inv(a)
        for _ in range(abs(exponent)):
            expected = gf8.mul(expected, base)
        assert result == expected

    def test_pow_negative_is_inverse_power(self, gf8):
        for a in (1, 2, 7, 255):
            assert gf8.pow(a, -1) == gf8.inv(a)

    def test_fermat(self, gf8):
        """a^(2^f - 1) == 1 for every non-zero a."""
        for a in range(1, gf8.size):
            assert gf8.pow(a, gf8.order) == 1


class TestOrderAndPrimitivity:
    def test_order_divides_group_order(self, gf8):
        for a in range(1, gf8.size):
            assert gf8.order % gf8.element_order(a) == 0

    def test_order_definition(self, gf8):
        for a in (2, 3, 7, 100):
            order = gf8.element_order(a)
            assert gf8.pow(a, order) == 1
            for divisor in range(1, order):
                if order % divisor == 0 and divisor < order:
                    assert gf8.pow(a, divisor) != 1 or divisor == order

    def test_primitive_element_count_gf8(self, gf8):
        """phi(255) = 128 primitive elements (the paper says 'roughly half')."""
        count = sum(1 for _ in gf8.primitive_elements())
        assert count == 128

    def test_primitive_element_count_matches_totient(self, gf4):
        count = sum(1 for _ in gf4.primitive_elements())
        totient = sum(1 for k in range(1, gf4.order + 1)
                      if math.gcd(k, gf4.order) == 1)
        assert count == totient

    def test_alpha_primitive(self, gf16):
        assert gf16.is_primitive_element(gf16.alpha)

    def test_one_not_primitive(self, gf8):
        assert not gf8.is_primitive_element(1)
        assert gf8.element_order(1) == 1

    def test_zero_has_no_order(self, gf8):
        with pytest.raises(GaloisFieldError):
            gf8.element_order(0)

    def test_powers_of_primitive_cover_group(self, gf4):
        seen = {gf4.pow(gf4.alpha, i) for i in range(gf4.order)}
        assert seen == set(range(1, gf4.size))


class TestValidation:
    def test_validate_accepts_elements(self, gf8):
        assert gf8.validate(255) == 255
        assert gf8.validate(0) == 0

    def test_validate_rejects_out_of_range(self, gf8):
        with pytest.raises(GaloisFieldError):
            gf8.validate(256)
        with pytest.raises(GaloisFieldError):
            gf8.validate(-1)

    def test_repr_and_eq(self):
        assert GF(8) == GF(8)
        assert GF(8) != GF(16)
        assert "2^8" in repr(GF(8))
