"""Message-level interleaving tests of the optimistic update protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.sdds import LHFile, Record
from repro.sig import make_scheme
from repro.sim.interleave import InterleavingDriver


def build_file(n_records=10):
    scheme = make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=64)
    client = file.client("loader")
    for key in range(n_records):
        client.insert(Record(key, b"%04d" % key + b"." * 28))
    return file


class TestSingleUpdate:
    def test_three_step_lifecycle(self):
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 1, b"X" * 32)
        assert driver.step("a") is None      # fetch
        assert driver.step("a") is None      # compute (true update)
        assert driver.step("a") == "applied"
        driver.check_serializable()

    def test_pseudo_finishes_after_compute(self):
        file = build_file()
        driver = InterleavingDriver(file)
        current = file.client("r").search(2).record.value
        driver.begin("a", 2, current)
        driver.step("a")
        assert driver.step("a") == "pseudo"  # never sends the record

    def test_missing_key(self):
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 999, b"Y" * 32)
        driver.step("a")
        assert driver.step("a") == "missing"

    def test_no_double_begin(self):
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 1, b"X" * 32)
        with pytest.raises(ReproError):
            driver.begin("a", 2, b"Y" * 32)

    def test_no_step_after_finish(self):
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 1, b"X" * 32)
        for _ in range(3):
            driver.step("a")
        with pytest.raises(ReproError):
            driver.step("a")


class TestRaces:
    def test_fetch_fetch_send_send_conflicts(self):
        """The canonical race at message granularity: both clients fetch
        the same signature; the second send must roll back."""
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 3, b"A" * 32)
        driver.begin("b", 3, b"B" * 32)
        outcomes = driver.run_schedule(
            ["a", "b", "a", "b", "a", "b"]  # interleaved step by step
        )
        assert sorted(outcomes.values()) == ["applied", "conflict"]
        driver.check_serializable()

    def test_serial_schedules_both_apply(self):
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("a", 3, b"A" * 32)
        driver.begin("b", 3, b"B" * 32)
        outcomes = driver.run_schedule(["a", "a", "a", "b", "b", "b"])
        assert outcomes == {"a": "applied", "b": "applied"}
        driver.check_serializable()

    def test_race_window_between_fetch_and_send(self):
        """A writer landing after B's fetch but before B's send is
        detected by the server-side re-check."""
        file = build_file()
        driver = InterleavingDriver(file)
        driver.begin("b", 4, b"B" * 32)
        driver.step("b")                      # B fetched Sb
        driver.begin("a", 4, b"A" * 32)
        driver.run_schedule(["a", "a", "a"], drain=False)  # A completes
        driver.step("b")                      # B computes
        assert driver.step("b") == "conflict"
        driver.check_serializable()

    @given(st.integers(0, 2**32 - 1), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_random_schedules_never_lose_updates(self, seed, n_clients):
        """Property: under ANY step interleaving of n clients updating
        one record, the applied updates form an unbroken chain."""
        rng = np.random.default_rng(seed)
        file = build_file()
        driver = InterleavingDriver(file)
        for i in range(n_clients):
            driver.begin(f"c{i}", 5, bytes([65 + i]) * 32)
        schedule = [
            f"c{int(rng.integers(0, n_clients))}"
            for _ in range(n_clients * 6)
        ]
        outcomes = driver.run_schedule(schedule)
        assert any(outcome == "applied" for outcome in outcomes.values())
        driver.check_serializable()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_multi_key_schedules(self, seed):
        rng = np.random.default_rng(seed)
        file = build_file()
        driver = InterleavingDriver(file)
        for i in range(6):
            key = int(rng.integers(0, 4))
            driver.begin(f"c{i}", key, bytes([48 + i]) * 32)
        schedule = [f"c{int(rng.integers(0, 6))}" for _ in range(30)]
        driver.run_schedule(schedule)
        driver.check_serializable()
