"""The zero-copy page arena and the engine's narrow signing lanes.

The contract under test is the same as the batch engine's: *exactness
at zero-copy speed*.  Arena-backed pages, mid-arena views, concat-lane
bodies, and narrow delta folds must all be byte-identical to the
reference ``scheme.sign`` across plain and twisted schemes over both
production fields, for mixed page lengths including empties.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.gf import GF
from repro.gf.vectorized import narrow_symbol_view, pack_flat, pack_pages
from repro.sig import LEDGER, BatchSigner, PageArena, make_scheme
from repro.sig.signature import Signature
from repro.sig.twisted import log_interpretation_scheme

SCHEMES = {
    "gf16": make_scheme(f=16, n=2),
    "gf8": make_scheme(f=8, n=4),
    "gf16-twisted": log_interpretation_scheme(GF(16), n=2),
    "gf8-twisted": log_interpretation_scheme(GF(8), n=3),
}


def byte_pages(scheme, max_pages=8, max_symbols=50):
    """Random symbol-aligned byte pages (mixed lengths, empties)."""
    symbol_bytes = scheme.scheme_id.symbol_bytes
    page = st.binary(min_size=0, max_size=max_symbols * symbol_bytes) \
        .map(lambda b: b[:len(b) - len(b) % symbol_bytes])
    return st.lists(page, min_size=0, max_size=max_pages)


# ----------------------------------------------------------------------
# Arena mechanics
# ----------------------------------------------------------------------

class TestPageArena:

    def test_append_views_round_trip(self):
        with PageArena(1 << 10) as arena:
            first = arena.append(b"hello")
            second = arena.append(bytes(range(16)))
            assert first.tobytes() == b"hello"
            assert bytes(second.memoryview()) == bytes(range(16))
            assert second.offset % 2 == 0  # symbol alignment

    def test_symbol_rows_are_views(self):
        scheme = SCHEMES["gf16"]
        with PageArena(256) as arena:
            view = arena.append(bytes(range(32)))
            row = view.symbols(scheme.field)
            assert row.dtype == np.dtype("<u2") and row.size == 16
            # Mutating the arena must show through the view (no copy).
            arena.write_at(view.offset, b"\xff\xff")
            assert int(row[0]) == 0xFFFF

    def test_overflow_and_misalignment_rejected(self):
        with PageArena(8) as arena:
            arena.append(b"12345678")
            with pytest.raises(SignatureError):
                arena.append(b"x")
        with pytest.raises(SignatureError):
            PageArena(0)
        with PageArena(64) as arena:
            arena.append(b"abcd")
            with pytest.raises(SignatureError):
                arena.symbol_row(SCHEMES["gf16"].field, 1, 2)

    def test_close_is_idempotent_and_blocks_appends(self):
        arena = PageArena(64)
        arena.append(b"xy")
        arena.close()
        arena.close()
        with pytest.raises(SignatureError):
            arena.append(b"z")

    def test_from_pages_lands_everything_once(self):
        pages = [b"a" * 5, b"", b"b" * 9]
        with LEDGER.counting() as ledger:
            arena, views = PageArena.from_pages(pages)
            assert [v.tobytes() for v in views] == pages
        # from_pages charges one landing per page byte; tobytes()
        # re-materializes for the assertion.
        assert ledger.bytes_copied == 2 * sum(len(p) for p in pages)
        arena.close()

    def test_ledger_disabled_outside_counting(self):
        before = LEDGER.bytes_copied
        with PageArena(64) as arena:
            arena.append(b"quiet")
        assert LEDGER.bytes_copied == before
        assert not LEDGER.enabled


# ----------------------------------------------------------------------
# The packing kernels
# ----------------------------------------------------------------------

class TestPacking:

    def test_pack_pages_matches_per_row_layout(self):
        rng = np.random.default_rng(11)
        pages = [rng.integers(0, 255, size=size, dtype=np.int64)
                 for size in (5, 0, 9, 9, 1)]
        matrix, lengths = pack_pages(pages)
        assert lengths.tolist() == [5, 0, 9, 9, 1]
        for row, page in zip(matrix, pages):
            assert row[:page.size].tolist() == page.tolist()
            assert not row[page.size:].any()

    def test_pack_flat_uniform_lengths_is_a_view(self):
        flat = np.arange(12, dtype=np.uint8)
        matrix = pack_flat(flat, np.full(3, 4, dtype=np.int64))
        assert matrix.shape == (3, 4)
        assert matrix.base is not None  # reshape of flat, no copy

    def test_narrow_symbol_view_alignment(self):
        field16 = SCHEMES["gf16"].field
        assert narrow_symbol_view(b"abc", field16) is None  # odd length
        view = narrow_symbol_view(b"abcd", field16)
        assert view.dtype == np.dtype("<u2") and view.size == 2
        field8 = SCHEMES["gf8"].field
        assert narrow_symbol_view(b"abc", field8).size == 3
        assert narrow_symbol_view(12345, field8) is None


# ----------------------------------------------------------------------
# Exactness: arena-backed signing == scheme.sign
# ----------------------------------------------------------------------

class TestArenaExactness:

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_arena_views_equal_reference(self, name, data):
        scheme = SCHEMES[name]
        pages = data.draw(byte_pages(scheme))
        signer = BatchSigner(scheme)
        arena, views = PageArena.from_pages(
            pages, align=scheme.scheme_id.symbol_bytes)
        try:
            expected = [scheme.sign(page) for page in pages]
            assert signer.sign_many(views) == expected
            assert signer.sign_many(pages) == expected
            assert signer.sign_many(
                [memoryview(page) for page in pages]) == expected
        finally:
            arena.close()

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_mid_arena_views(self, name):
        scheme = SCHEMES[name]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        rng = np.random.default_rng(42)
        payload = bytes(rng.integers(0, 256, size=512, dtype=np.uint8))
        with PageArena(1024, align=symbol_bytes) as arena:
            arena.append(payload)
            spans = [(0, 64), (64, 128), (32, 32), (128, 0), (2, 200)]
            views = [arena.view(off * symbol_bytes, length * symbol_bytes)
                     for off, length in spans]
            expected = [scheme.sign(bytes(view.memoryview()))
                        for view in views]
            assert BatchSigner(scheme).sign_views(views) == expected

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_sign_concat_equals_joined_reference(self, name, data):
        scheme = SCHEMES[name]
        parts = data.draw(st.lists(st.binary(min_size=0, max_size=40),
                                   min_size=1, max_size=5))
        signer = BatchSigner(scheme)
        assert signer.sign_concat(parts, strict=False) == \
            scheme.sign(b"".join(parts), strict=False)

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_sign_concat_many_bodies(self, name):
        scheme = SCHEMES[name]
        bodies = [[b"header-17-bytes!!", b"payload" * 11],
                  [b""], [b"x"], [b"ab", b"", b"cd"]]
        signer = BatchSigner(scheme)
        assert signer.sign_concat_many(bodies) == \
            [scheme.sign(b"".join(parts)) for parts in bodies]

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_sign_map_raw_lane(self, name):
        scheme = SCHEMES[name]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        rng = np.random.default_rng(7)
        image = bytes(rng.integers(0, 256, size=100 * 64 * symbol_bytes + 3 * symbol_bytes,
                                   dtype=np.uint8))
        signer = BatchSigner(scheme)
        via_raw = signer.sign_map(image, 64)
        via_rows = signer.sign_map(
            scheme.to_symbols(image).astype(np.int64), 64)
        assert via_raw.signatures == via_rows.signatures
        assert via_raw.total_symbols == via_rows.total_symbols


# ----------------------------------------------------------------------
# The narrow delta lane
# ----------------------------------------------------------------------

class TestDeltaLane:

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_delta_signature_many_matches_reference(self, name, data):
        scheme = SCHEMES[name]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        signer = BatchSigner(scheme)
        count = data.draw(st.integers(1, 6))
        regions = []
        for _ in range(count):
            size = data.draw(st.integers(0, 20)) * symbol_bytes
            position = data.draw(st.integers(0, 50))
            before = data.draw(st.binary(min_size=size, max_size=size))
            after = data.draw(st.binary(min_size=size, max_size=size))
            regions.append((position, before, after))
        got = signer.delta_signature_many(regions)
        rows = [scheme.signable_symbols(b) ^ scheme.signable_symbols(a)
                for _, b, a in regions]
        reference = signer.delta_components(
            rows, [p for p, _, _ in regions])
        assert got == [
            Signature(tuple(int(c) for c in row), scheme.scheme_id)
            for row in reference
        ]

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_apply_deltas_still_converges(self, name):
        scheme = SCHEMES[name]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        signer = BatchSigner(scheme)
        page_symbols = 32
        rng = np.random.default_rng(3)
        image = bytearray(rng.integers(
            0, 256, size=page_symbols * symbol_bytes * 8,
            dtype=np.uint8).tobytes())
        page_map = signer.sign_map(bytes(image), page_symbols)
        deltas = []
        for page, position, size in ((0, 0, 4), (2, 8, 2), (2, 16, 4),
                                     (7, 28, 4)):
            start = (page * page_symbols + position) * symbol_bytes
            before = bytes(image[start:start + size * symbol_bytes])
            after = bytes(rng.integers(0, 256, size=size * symbol_bytes,
                                       dtype=np.uint8))
            image[start:start + size * symbol_bytes] = after
            deltas.append((page, position, before, after))
        net = signer.apply_deltas(page_map, deltas)
        fresh = signer.sign_map(bytes(image), page_symbols)
        assert page_map.signatures == fresh.signatures
        assert set(net) <= {0, 2, 7}


# ----------------------------------------------------------------------
# Copies-per-byte accounting
# ----------------------------------------------------------------------

class TestCopyLedger:

    def test_copies_per_byte_normalization(self):
        from repro.sig.arena import CopyLedger
        ledger = CopyLedger()
        ledger.enabled = True
        ledger.count(300)
        assert ledger.copies_per_byte(100) == 3.0
        with pytest.raises(SignatureError):
            ledger.copies_per_byte(0)

    def test_arena_lane_copies_fewer_bytes_than_widening(self):
        """The raw lane must beat one int64 widening of the payload."""
        scheme = SCHEMES["gf8"]
        pages = [bytes([i % 251] * 200) for i in range(64)]
        payload = sum(len(p) for p in pages)
        signer = BatchSigner(scheme)
        with LEDGER.counting() as ledger:
            signer.sign_many(pages)
        # Narrow lane: one concat (1x) + at most one packed fill (1x);
        # the historical path paid >= 8x in int64 widenings alone.
        assert ledger.copies_per_byte(payload) <= 2.0
