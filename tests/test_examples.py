"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; a library change that
breaks one must fail the suite.  Each script asserts its own claims
internally, so exit code 0 means the demonstrated behaviour held.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    """At least the documented set of examples exists."""
    names = {path.name for path in ALL_EXAMPLES}
    assert {"quickstart.py", "bucket_backup.py", "concurrent_updates.py",
            "distributed_search.py", "parity_audit.py", "ram_database.py",
            "replica_sync.py"} <= names


@pytest.mark.parametrize("script", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, \
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script.name} printed nothing"
