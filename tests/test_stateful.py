"""Hypothesis stateful machines: long random operation streams.

These drive the stateful substrates (record heap, LH* file, cached
client) through arbitrary interleaved operation sequences while
checking the full invariant set after every step -- the strongest
correctness evidence in the suite.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.sdds import CachedClient, LHFile, Record, RecordHeap, UpdateStatus
from repro.sig import make_scheme


class HeapMachine(RuleBasedStateMachine):
    """Allocate / write / free against a dict reference model."""

    def __init__(self):
        super().__init__()
        self.heap = RecordHeap(64)
        self.live: dict[int, bytes] = {}

    @rule(size=st.integers(1, 120), fill=st.integers(0, 255))
    def allocate_and_write(self, size, fill):
        offset = self.heap.allocate(size)
        payload = bytes([fill]) * size
        self.heap.write(offset, payload)
        assert offset not in self.live
        self.live[offset] = payload

    @rule(data=st.data())
    def free_one(self, data):
        if not self.live:
            return
        offset = data.draw(st.sampled_from(sorted(self.live)))
        payload = self.live.pop(offset)
        self.heap.free(offset, len(payload))

    @rule(data=st.data(), fill=st.integers(0, 255))
    def overwrite_one(self, data, fill):
        if not self.live:
            return
        offset = data.draw(st.sampled_from(sorted(self.live)))
        payload = bytes([fill]) * len(self.live[offset])
        self.heap.write(offset, payload)
        self.live[offset] = payload

    @invariant()
    def free_list_consistent(self):
        self.heap.check_invariants()

    @invariant()
    def live_extents_readable(self):
        for offset, payload in self.live.items():
            assert self.heap.read(offset, len(payload)) == payload

    @invariant()
    def allocated_bytes_match(self):
        assert self.heap.allocated_bytes == sum(
            len(payload) for payload in self.live.values()
        )


class LHFileMachine(RuleBasedStateMachine):
    """Insert / search / update / delete against a dict reference model."""

    def __init__(self):
        super().__init__()
        scheme = make_scheme(f=8, n=2)
        self.file = LHFile(scheme, capacity_records=8)
        self.client = self.file.client()
        self.stale_client = self.file.client("stale")
        self.reference: dict[int, bytes] = {}

    @rule(key=st.integers(0, 500), fill=st.integers(0, 255),
          size=st.integers(1, 40))
    def insert(self, key, fill, size):
        value = bytes([fill]) * size
        result = self.client.insert(Record(key, value))
        if key in self.reference:
            assert result.status == "duplicate"
        else:
            assert result.status == "inserted"
            self.reference[key] = value

    @rule(key=st.integers(0, 500))
    def search(self, key):
        result = self.client.search(key)
        if key in self.reference:
            assert result.status == "found"
            assert result.record.value == self.reference[key]
        else:
            assert result.status == "missing"

    @rule(data=st.data())
    def search_with_stale_client(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        result = self.stale_client.search(key)
        assert result.status == "found"
        assert result.forwards <= 2  # the LH* bound, always

    @rule(data=st.data(), fill=st.integers(0, 255))
    def update(self, data, fill):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        before = self.reference[key]
        after = bytes([fill]) * len(before)
        result = self.client.update_normal(key, before, after)
        if before == after:
            assert result.status == UpdateStatus.PSEUDO
        else:
            assert result.status == UpdateStatus.APPLIED
            self.reference[key] = after

    @rule(data=st.data())
    def delete(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.client.delete(key).status == "deleted"
        del self.reference[key]

    @invariant()
    def placement_correct(self):
        self.file.check_placement()

    @invariant()
    def counts_match(self):
        assert self.file.record_count == len(self.reference)


class CachedClientMachine(RuleBasedStateMachine):
    """The cache stays coherent under interleaved cached/direct writes."""

    def __init__(self):
        super().__init__()
        scheme = make_scheme(f=16, n=2)
        self.file = LHFile(scheme, capacity_records=64)
        self.direct = self.file.client("direct")
        self.cached = CachedClient(self.file.client("cached"), capacity=8)
        self.reference: dict[int, bytes] = {}

    @rule(key=st.integers(0, 50), fill=st.integers(0, 255))
    def insert_direct(self, key, fill):
        value = bytes([fill]) * 32
        if self.direct.insert(Record(key, value)).status == "inserted":
            self.reference[key] = value

    @rule(data=st.data(), fill=st.integers(0, 255))
    def update_direct(self, data, fill):
        """A writer the cache cannot see."""
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        value = bytes([fill]) * 32
        result = self.direct.update_blind(key, value)
        assert result.status in (UpdateStatus.APPLIED, UpdateStatus.PSEUDO)
        self.reference[key] = value

    @rule(data=st.data(), fill=st.integers(0, 255))
    def update_through_cache(self, data, fill):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        value = bytes([fill]) * 32
        result = self.cached.update_blind(key, value)
        assert result.status in (UpdateStatus.APPLIED, UpdateStatus.PSEUDO)
        self.reference[key] = value

    @rule(key=st.integers(0, 50))
    def read_through_cache(self, key):
        record = self.cached.get(key)
        if key in self.reference:
            assert record is not None
            # The coherence guarantee: a cached read NEVER returns a
            # value that differs from the server's current record.
            assert record.value == self.reference[key]
        else:
            assert record is None

    @rule(data=st.data())
    def delete_direct(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        self.direct.delete(key)
        del self.reference[key]


HeapMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None
)
LHFileMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=40, deadline=None
)
CachedClientMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=40, deadline=None
)

TestHeapMachine = HeapMachine.TestCase
TestLHFileMachine = LHFileMachine.TestCase
TestCachedClientMachine = CachedClientMachine.TestCase
