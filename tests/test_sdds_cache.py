"""Tests for the signature-validated client cache (Section 6.2)."""

from repro.sdds import CachedClient, LHFile, Record, UpdateStatus
from repro.sig import make_scheme
from repro.workloads import make_records


def build(value_bytes=500, n_records=60, capacity=1024):
    scheme = make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=100)
    client = file.client()
    records = make_records(n_records, value_bytes, seed=21)
    for record in records:
        client.insert(record)
    cached = CachedClient(file.client("cached"), capacity=capacity)
    return file, cached, records


class TestReads:
    def test_cold_miss_then_validated_hit(self):
        file, cached, records = build()
        key = records[0].key
        first = cached.get(key)
        assert first == records[0]
        assert cached.stats.cold_misses == 1
        second = cached.get(key)
        assert second == records[0]
        assert cached.stats.validations == 1
        assert cached.stats.hits == 1
        assert cached.stats.refetches == 0

    def test_hit_saves_record_bytes(self):
        """A validated hit exchanges ~44 bytes instead of the record."""
        file, cached, records = build(value_bytes=2000)
        key = records[0].key
        cached.get(key)
        net_before = file.network.stats.bytes
        cached.get(key)
        validated_cost = file.network.stats.bytes - net_before
        assert validated_cost < 100
        assert cached.stats.bytes_saved == 2000

    def test_stale_cache_refetched(self):
        file, cached, records = build()
        key = records[0].key
        cached.get(key)
        # Another client updates the record behind the cache's back.
        writer = file.client("writer")
        writer.update_blind(key, b"Z" * 500)
        result = cached.get(key)
        assert result.value == b"Z" * 500
        assert cached.stats.refetches == 1

    def test_deleted_record_detected(self):
        file, cached, records = build()
        key = records[0].key
        cached.get(key)
        file.client("deleter").delete(key)
        assert cached.get(key) is None
        assert key not in cached

    def test_missing_key(self):
        file, cached, records = build(n_records=5)
        assert cached.get(999_999_999 % (1 << 32)) is None


class TestWritesKeepCacheCoherent:
    def test_insert_primes_cache(self):
        file, cached, records = build(n_records=5)
        record = Record(777_000, b"fresh" * 20)
        cached.insert(record)
        assert 777_000 in cached
        net_before = file.network.stats.bytes
        got = cached.get(777_000)
        assert got == record
        # A validated hit, not a refetch.
        assert cached.stats.refetches == 0
        assert file.network.stats.bytes - net_before < 100

    def test_update_normal_updates_cache(self):
        file, cached, records = build()
        key = records[0].key
        before = cached.get(key).value
        result = cached.update_normal(key, before, b"N" * 500)
        assert result.status == UpdateStatus.APPLIED
        assert cached.get(key).value == b"N" * 500
        assert cached.stats.refetches == 0

    def test_conflicting_update_invalidates(self):
        file, cached, records = build()
        key = records[0].key
        before = cached.get(key).value
        file.client("sneaky").update_blind(key, b"S" * 500)
        result = cached.update_normal(key, before, b"L" * 500)
        assert result.status == UpdateStatus.CONFLICT
        assert key not in cached  # stale entry dropped
        assert cached.get(key).value == b"S" * 500

    def test_delete_through_cache(self):
        file, cached, records = build()
        key = records[0].key
        cached.get(key)
        assert cached.delete(key).status == "deleted"
        assert key not in cached


class TestCapacity:
    def test_lru_eviction(self):
        file, cached, records = build(n_records=10, capacity=3)
        for record in records[:5]:
            cached.get(record.key)
        assert len(cached) == 3
        # The three most recently used survive.
        assert records[4].key in cached
        assert records[0].key not in cached

    def test_hit_refreshes_lru_position(self):
        file, cached, records = build(n_records=5, capacity=2)
        cached.get(records[0].key)
        cached.get(records[1].key)
        cached.get(records[0].key)  # touch 0
        cached.get(records[2].key)  # evicts 1, not 0
        assert records[0].key in cached
        assert records[1].key not in cached
