"""Tests for signature maps (compound signatures) and signature trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.sig import (
    SignatureMap,
    SignatureTree,
    concat_all,
    make_scheme,
    slice_pages,
)


class TestSlicePages:
    def test_even_slicing(self, scheme8):
        pages = list(slice_pages(scheme8, bytes(100), 25))
        assert [p.length for p in pages] == [25, 25, 25, 25]
        assert [p.offset for p in pages] == [0, 25, 50, 75]

    def test_ragged_tail(self, scheme8):
        pages = list(slice_pages(scheme8, bytes(103), 25))
        assert pages[-1].length == 3

    def test_bad_page_size(self, scheme8):
        with pytest.raises(SignatureError):
            list(slice_pages(scheme8, bytes(10), 0))

    def test_page_size_beyond_bound(self, scheme8):
        with pytest.raises(SignatureError):
            list(slice_pages(scheme8, bytes(10), scheme8.max_page_symbols + 1))


class TestSignatureMap:
    def test_page_count(self, scheme16):
        smap = SignatureMap.compute(scheme16, bytes(16 * 1024), 512)
        assert smap.page_count == 16  # 8192 symbols / 512

    def test_no_changes(self, scheme16, rng):
        data = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        a = SignatureMap.compute(scheme16, data, 256)
        b = SignatureMap.compute(scheme16, data, 256)
        assert a.changed_pages(b) == []
        assert a == b

    @given(st.integers(0, 2**32 - 1), st.integers(0, 8191))
    @settings(max_examples=60)
    def test_single_byte_change_localized(self, seed, position):
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(seed)
        data = bytearray(rng.integers(0, 256, 8192, dtype=np.uint8).tobytes())
        before = SignatureMap.compute(scheme, bytes(data), 128)
        data[position] ^= 0x5A
        after = SignatureMap.compute(scheme, bytes(data), 128)
        assert before.changed_pages(after) == [position // 128]

    def test_length_change_reports_tail_pages(self, scheme8):
        a = SignatureMap.compute(scheme8, bytes(1000), 100)
        b = SignatureMap.compute(scheme8, bytes(1300), 100)
        assert a.changed_pages(b) == [10, 11, 12]

    def test_different_page_sizes_incomparable(self, scheme8):
        a = SignatureMap.compute(scheme8, bytes(1000), 100)
        b = SignatureMap.compute(scheme8, bytes(1000), 200)
        with pytest.raises(SignatureError):
            a.changed_pages(b)

    def test_different_schemes_incomparable(self, scheme8, scheme16):
        a = SignatureMap.compute(scheme8, bytes(1000), 100)
        b = SignatureMap.compute(scheme16, bytes(1000), 100)
        with pytest.raises(SignatureError):
            a.changed_pages(b)

    def test_update_page(self, scheme8, rng):
        data = bytearray(rng.integers(0, 256, 1000, dtype=np.uint8).tobytes())
        smap = SignatureMap.compute(scheme8, bytes(data), 100)
        data[250] ^= 1
        smap.update_page(2, bytes(data[200:300]))
        fresh = SignatureMap.compute(scheme8, bytes(data), 100)
        assert smap.changed_pages(fresh) == []

    def test_update_page_out_of_range(self, scheme8):
        smap = SignatureMap.compute(scheme8, bytes(100), 50)
        with pytest.raises(SignatureError):
            smap.update_page(5, b"x" * 50)

    def test_serialization_roundtrip(self, scheme16, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        smap = SignatureMap.compute(scheme16, data, 256)
        restored = SignatureMap.from_bytes(smap.to_bytes(), scheme16)
        assert restored == smap
        assert restored.total_symbols == smap.total_symbols

    def test_truncated_serialization_rejected(self, scheme16):
        smap = SignatureMap.compute(scheme16, bytes(1024), 256)
        with pytest.raises(SignatureError):
            SignatureMap.from_bytes(smap.to_bytes()[:-1], scheme16)

    def test_map_overhead_matches_paper(self, scheme16):
        """4 B per 16 KB page: 256 B of map per MB of bucket."""
        smap = SignatureMap.compute(scheme16, bytes(1 << 20), (16 * 1024) // 2)
        assert smap.map_bytes == 256


class TestSignatureTree:
    def build(self, scheme, data, page_symbols=64, fanout=4):
        smap = SignatureMap.compute(scheme, data, page_symbols)
        return smap, SignatureTree.from_map(smap, fanout)

    def test_root_equals_flat_signature(self, scheme8, rng):
        data = rng.integers(0, 256, 4000, dtype=np.uint8).tobytes()
        smap, tree = self.build(scheme8, data)
        flat, total = concat_all(
            scheme8,
            [(sig, length) for sig, length in zip(
                smap.signatures,
                [64] * (smap.page_count - 1) + [4000 - 64 * (smap.page_count - 1)],
            )],
        )
        assert tree.root.signature == flat
        assert tree.root.symbols == 4000

    def test_root_equals_whole_buffer_signature(self, scheme16, rng):
        """The strongest tree invariant: the algebraic root equals the
        signature computed directly over all the bytes."""
        data = rng.integers(0, 256, 9000, dtype=np.uint8).tobytes()
        smap, tree = self.build(scheme16, data, page_symbols=128, fanout=3)
        assert tree.root.signature == scheme16.sign(data, strict=False)

    def test_identical_trees_diff_empty(self, scheme8, rng):
        data = rng.integers(0, 256, 4000, dtype=np.uint8).tobytes()
        _, t1 = self.build(scheme8, data)
        _, t2 = self.build(scheme8, data)
        diff = t1.diff(t2)
        assert diff.changed_leaves == []
        assert diff.nodes_compared == 1  # only the root was examined

    @given(st.integers(0, 2**32 - 1), st.integers(1, 5))
    @settings(max_examples=40)
    def test_diff_localizes_changes(self, seed, n_changes):
        """Uses the paper's GF(2^16) configuration: with GF(2^8), several
        page deltas under one ancestor can cancel at that internal node
        with probability 2^-16 per node (a hypothesis run actually found
        one) -- see the caveat in repro.sig.tree."""
        scheme = make_scheme(f=16, n=2)
        rng = np.random.default_rng(seed)
        data = bytearray(rng.integers(0, 256, 8192, dtype=np.uint8).tobytes())
        _, t1 = self.build(scheme, bytes(data), page_symbols=128, fanout=4)
        positions = rng.choice(8192, size=n_changes, replace=False)
        for position in positions:
            data[position] ^= 0xFF
        _, t2 = self.build(scheme, bytes(data), page_symbols=128, fanout=4)
        expected = sorted({int(p) // 256 for p in positions})
        assert t1.diff(t2).changed_leaves == expected

    def test_gf8_internal_cancellation_exists(self):
        """The documented caveat, pinned: the hypothesis-found GF(2^8)
        example where two page deltas cancel at their common ancestor,
        hiding pages 3 and 13 from the tree while the flat map sees
        all three changes."""
        scheme = make_scheme(f=8, n=2)
        rng = np.random.default_rng(38159)
        data = bytearray(rng.integers(0, 256, 8192, dtype=np.uint8).tobytes())
        map1 = SignatureMap.compute(scheme, bytes(data), 128)
        t1 = SignatureTree.from_map(map1, fanout=4)
        positions = rng.choice(8192, size=3, replace=False)
        for position in positions:
            data[position] ^= 0xFF
        map2 = SignatureMap.compute(scheme, bytes(data), 128)
        t2 = SignatureTree.from_map(map2, fanout=4)
        expected = sorted({int(p) // 128 for p in positions})
        # The flat map keeps per-page certainty (Proposition 1)...
        assert map1.changed_pages(map2) == expected
        # ...while the tree missed the ancestor-cancelled pair.
        assert t1.diff(t2).changed_leaves == [54]
        assert expected == [3, 13, 54]

    def test_diff_visits_fewer_nodes_than_flat(self, scheme8, rng):
        """One changed page in a 256-page map: the tree looks at
        O(fanout * height) nodes, far fewer than 256."""
        data = bytearray(rng.integers(0, 256, 16384, dtype=np.uint8).tobytes())
        _, t1 = self.build(scheme8, bytes(data), page_symbols=64, fanout=4)
        data[5000] ^= 1
        _, t2 = self.build(scheme8, bytes(data), page_symbols=64, fanout=4)
        diff = t1.diff(t2)
        assert diff.changed_leaves == [5000 // 64]
        assert diff.nodes_compared < 64  # vs 256 leaf comparisons flat

    def test_update_leaf_maintains_root(self, scheme8, rng):
        data = bytearray(rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        smap, tree = self.build(scheme8, bytes(data), page_symbols=64, fanout=4)
        data[130] ^= 7
        new_leaf_sig = scheme8.sign(bytes(data[128:192]))
        tree.update_leaf(130 // 64, new_leaf_sig)
        assert tree.root.signature == scheme8.sign(bytes(data), strict=False)

    def test_update_leaf_out_of_range(self, scheme8):
        _, tree = self.build(scheme8, bytes(1024))
        with pytest.raises(SignatureError):
            tree.update_leaf(1000, scheme8.zero)

    def test_incomparable_trees(self, scheme8, rng):
        data = rng.integers(0, 256, 2048, dtype=np.uint8).tobytes()
        _, t1 = self.build(scheme8, data, fanout=4)
        _, t2 = self.build(scheme8, data, fanout=8)
        with pytest.raises(SignatureError):
            t1.diff(t2)

    def test_three_level_tree_like_figure3(self, scheme8, rng):
        """Figure 3 shows 3 levels of signatures; 16 leaves, fanout 4."""
        data = rng.integers(0, 256, 16 * 64, dtype=np.uint8).tobytes()
        _, tree = self.build(scheme8, data, page_symbols=64, fanout=4)
        assert tree.height == 3
        assert tree.leaf_count == 16
        assert len(tree.levels[1]) == 4

    def test_empty_tree_rejected(self, scheme8):
        with pytest.raises(SignatureError):
            SignatureTree.from_leaves(scheme8, [], fanout=4)

    def test_bad_fanout_rejected(self, scheme8):
        with pytest.raises(SignatureError):
            SignatureTree.from_leaves(scheme8, [(scheme8.zero, 1)], fanout=1)
