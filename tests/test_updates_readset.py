"""Tests for two-step read-set validation (the Section 1 dirty-read guard)."""

import pytest

from repro.errors import ReproError
from repro.sig import make_scheme
from repro.updates import (
    ReadSetTransaction,
    SignatureManager,
    TransactionOutcome,
)


@pytest.fixture()
def store():
    scheme = make_scheme(f=16, n=2)
    manager = SignatureManager(scheme)
    for key in range(5):
        manager.insert(key, f"account-{key}:balance=100".encode())
    return scheme, manager


class TestCommitPaths:
    def test_clean_commit(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        balance_a = txn.read(0)
        balance_b = txn.read(1)
        txn.write(0, balance_a + b"-50")
        txn.write(1, balance_b + b"+50")
        assert txn.commit() is TransactionOutcome.COMMITTED
        assert manager.value(0).endswith(b"-50")
        assert manager.value(1).endswith(b"+50")

    def test_read_only_transaction_commits(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.read(2)
        assert txn.commit() is TransactionOutcome.COMMITTED

    def test_write_only_transaction_commits(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.write(3, b"blind write")
        assert txn.commit() is TransactionOutcome.COMMITTED
        assert manager.value(3) == b"blind write"

    def test_abort_leaves_store_untouched(self, store):
        scheme, manager = store
        before = manager.value(0)
        txn = ReadSetTransaction(scheme, manager)
        txn.read(0)
        txn.write(0, b"never applied")
        txn.abort()
        assert manager.value(0) == before

    def test_no_reuse_after_finish(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.commit()
        with pytest.raises(ReproError):
            txn.read(0)
        with pytest.raises(ReproError):
            txn.commit()


class TestDirtyReadPrevention:
    def test_intervening_write_aborts(self, store):
        """The canonical scenario: T reads X, someone updates X, T must
        not commit work derived from the stale read."""
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        stale = txn.read(0)
        # Concurrent writer slips in between read and commit.
        handle = manager.read(0)
        manager.commit(handle, b"concurrently changed")
        txn.write(4, stale + b" (derived)")
        assert txn.commit() is TransactionOutcome.ABORTED
        assert manager.value(4) == b"account-4:balance=100"  # untouched

    def test_unrelated_write_does_not_abort(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.read(0)
        handle = manager.read(3)  # not in the read set
        manager.commit(handle, b"someone else's business")
        txn.write(0, b"fine")
        assert txn.commit() is TransactionOutcome.COMMITTED

    def test_write_to_own_read_set_key_validates_first(self, store):
        """Validation runs before the transaction's own writes are
        applied, so self-writes never self-invalidate."""
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        value = txn.read(2)
        txn.write(2, value + b"!")
        assert txn.commit() is TransactionOutcome.COMMITTED

    def test_repeated_read_detects_midway_change(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.read(1)
        handle = manager.read(1)
        manager.commit(handle, b"changed between the reads")
        txn.read(1)  # second read sees the new value...
        # ...but the remembered signature is the FIRST read's, so the
        # transaction cannot commit a mix of the two.
        assert txn.commit() is TransactionOutcome.ABORTED

    def test_validation_is_cheap(self, store):
        """The read set costs 4 bytes per record, never the values."""
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        for key in range(5):
            txn.read(key)
        assert txn.read_set_bytes == 5 * 4

    def test_validate_is_idempotent_probe(self, store):
        scheme, manager = store
        txn = ReadSetTransaction(scheme, manager)
        txn.read(0)
        assert txn.validate()
        handle = manager.read(0)
        manager.commit(handle, b"drift")
        assert not txn.validate()
