"""Integration tests for the fault-injected cluster runtime.

The acceptance scenario of the subsystem: a 4-server cluster under 10%
message drop and 0.1% byte corruption, with a mid-workload crash --
every client operation eventually succeeds, every injected corruption
is detected by the signature seal (zero silent acceptances), and
post-crash recovery re-converges the replicas.  Identical seeds must
yield byte-identical run-report JSON.
"""

import pytest

from repro.cluster import (
    Cluster,
    ClusterError,
    ClusterResult,
    Crash,
    FaultPlan,
    LinkFaults,
    NodeState,
    Partition,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.obs import MetricsRegistry, RunReport, use_registry


def run_workload(cluster, operations=40):
    """A mixed workload; returns every ClusterResult."""
    client = cluster.client()
    results = [client.insert(key, f"record {key}".encode() * 4)
               for key in range(operations)]
    results += [client.update(key, f"updated {key}".encode() * 3)
                for key in range(0, operations, 3)]
    results += [client.search(key) for key in range(0, operations, 5)]
    results += [client.delete(key) for key in range(0, operations, 7)]
    cluster.settle()
    return results


class TestHappyPath:
    def test_reliable_network_no_retries(self):
        with use_registry(MetricsRegistry()) as registry:
            cluster = Cluster(servers=4, seed=1)
            results = run_workload(cluster)
        assert all(result.ok for result in results)
        assert registry.total("cluster.retries") == 0
        assert registry.total("cluster.corruptions_detected") == 0
        cluster.check_replicas()

    def test_search_returns_the_value(self):
        cluster = Cluster(servers=4, seed=1)
        client = cluster.client()
        client.insert(9, b"nine")
        result = client.search(9)
        assert result.status == "found"
        assert result.value == b"nine"
        assert client.search(999).status == "missing"

    def test_update_and_delete(self):
        cluster = Cluster(servers=4, seed=1)
        client = cluster.client()
        client.insert(5, b"before")
        assert client.update(5, b"after").status == "applied"
        assert client.search(5).value == b"after"
        assert client.delete(5).status == "deleted"
        assert client.search(5).status == "missing"

    def test_pseudo_update_filtered_server_side(self):
        with use_registry(MetricsRegistry()) as registry:
            cluster = Cluster(servers=4, seed=1)
            client = cluster.client()
            client.insert(5, b"same value")
            result = client.update(5, b"same value")
        assert result.status == "applied"
        assert registry.total("cluster.pseudo_updates") == 1

    def test_mirrors_track_mutations(self):
        cluster = Cluster(servers=4, seed=1)
        client = cluster.client()
        for key in range(12):
            client.insert(key, f"record {key}".encode())
        cluster.settle()
        for node in cluster.nodes:
            mirror = cluster.mirror_of(node.index)
            assert bytes(mirror.data) == node.image_bytes()


class TestValidation:
    def test_needs_two_servers(self):
        with pytest.raises(ClusterError):
            Cluster(servers=1)

    def test_oversized_value_rejected_client_side(self):
        cluster = Cluster(servers=4, seed=1)
        client = cluster.client()
        with pytest.raises(ClusterError):
            client.insert(1, b"x" * (cluster.max_value_bytes + 1))

    def test_unknown_crash_node_rejected(self):
        plan = FaultPlan(crashes=(Crash("node9", at=0.1, recover_at=0.2),))
        with pytest.raises(ClusterError):
            Cluster(servers=4, seed=1, plan=plan)


class TestResultSemantics:
    def test_first_attempt_statuses(self):
        assert ClusterResult("insert", "inserted").ok
        assert ClusterResult("search", "found").ok
        assert ClusterResult("update", "applied").ok
        assert ClusterResult("delete", "deleted").ok
        assert not ClusterResult("insert", "duplicate").ok
        assert not ClusterResult("search", "missing").ok

    def test_at_least_once_caveats(self):
        # A retried insert answered "duplicate" means an earlier attempt
        # landed and only its reply was lost; same for delete/"missing".
        assert ClusterResult("insert", "duplicate", attempts=2).ok
        assert ClusterResult("delete", "missing", attempts=3).ok
        assert not ClusterResult("update", "missing", attempts=2).ok
        assert not ClusterResult("search", "missing", attempts=2).ok


class TestAcceptanceScenario:
    """ISSUE acceptance: 10% drop + 0.1% corruption + a crash, 4 servers."""

    def run(self, seed=2026):
        lossy = FaultPlan.lossy(drop=0.10, corrupt=0.001, jitter=200e-6)
        plan = FaultPlan(
            default=lossy.default,
            crashes=(Crash("node2", at=0.05, recover_at=0.12),),
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(servers=4, seed=seed, plan=plan,
                              retry=RetryPolicy.patient())
            results = run_workload(cluster, operations=60)
        return cluster, registry, results

    def test_every_operation_eventually_succeeds(self):
        cluster, registry, results = self.run()
        failed = [r for r in results if not r.ok]
        assert not failed
        # The fault plan actually bit: drops happened, retries happened.
        assert cluster.faulty_network.injected["drop"] > 0
        assert registry.total("cluster.retries") > 0

    def test_zero_silent_corruption_acceptances(self):
        cluster, registry, _ = self.run(seed=4)
        injected = cluster.faulty_network.injected.get("corrupt", 0)
        detected = registry.total("cluster.corruptions_detected")
        assert injected == detected

    def test_crash_recovery_reconverges_replicas(self):
        cluster, registry, _ = self.run()
        node = cluster.nodes[2]
        assert node.state is NodeState.UP
        assert registry.total("cluster.crashes", node="node2") == 1
        assert registry.total("cluster.recoveries", node="node2") == 1
        assert registry.total("cluster.repair_bytes", phase="parity") > 0
        cluster.check_replicas()  # images match buckets, mirrors match images

    def test_recovered_node_still_serves_its_records(self):
        cluster, _, _ = self.run()
        client = cluster.client()
        # Keys hashing to node2 that were inserted before the crash and
        # not later deleted must have survived via parity reconstruction.
        for key in (2, 6, 10, 18):
            result = client.search(key)
            assert result.status == "found", f"key {key} lost in the crash"


class TestPartitions:
    def test_partitioned_client_heals_and_succeeds(self):
        plan = FaultPlan(partitions=(
            Partition(start=0.0, heal_at=0.02,
                      groups=(("client0",), ("node0", "node1"))),
        ))
        cluster = Cluster(servers=2, seed=5, plan=plan,
                          retry=RetryPolicy.patient())
        client = cluster.client()
        result = client.insert(0, b"through the partition")
        assert result.ok
        assert result.attempts > 1
        assert cluster.faulty_network.injected["partition_drop"] > 0


class TestRetryExhaustion:
    def test_total_loss_gives_up(self):
        plan = FaultPlan(default=LinkFaults(drop=1.0))
        with use_registry(MetricsRegistry()) as registry:
            cluster = Cluster(servers=2, seed=6,
                              retry=RetryPolicy(max_attempts=3), plan=plan)
            client = cluster.client()
            with pytest.raises(RetryExhaustedError):
                client.insert(0, b"never arrives")
        assert registry.total("cluster.ops", op="insert", status="gave_up") \
            == 1
        assert registry.total("cluster.timeouts", op="insert") == 3

    def test_down_node_drops_traffic(self):
        plan = FaultPlan(crashes=(Crash("node0", at=0.0, recover_at=10.0),))
        with use_registry(MetricsRegistry()) as registry:
            cluster = Cluster(servers=2, seed=6, plan=plan,
                              retry=RetryPolicy(max_attempts=2))
            client = cluster.client()
            with pytest.raises(RetryExhaustedError):
                client.insert(0, b"to a dead node")
        assert registry.total("cluster.down_drops", node="node0") > 0


class TestDeterminism:
    SCENARIO = dict(drop=0.12, corrupt=0.01, jitter=150e-6, duplicate=0.02)

    def report_json(self, seed):
        lossy = FaultPlan.lossy(**self.SCENARIO)
        plan = FaultPlan(
            default=lossy.default,
            crashes=(Crash("node1", at=0.04, recover_at=0.1),),
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(servers=4, seed=seed, plan=plan,
                              retry=RetryPolicy.patient())
            run_workload(cluster, operations=30)
            cluster.check_replicas()
        return RunReport(registry, meta={"source": "determinism-test"}).to_json()

    def test_same_seed_byte_identical_reports(self):
        assert self.report_json(1234) == self.report_json(1234)

    def test_different_seed_different_report(self):
        assert self.report_json(1234) != self.report_json(1235)
