"""Tests for the record heap and buckets (the backup engine's substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    SDDSError,
)
from repro.sdds import Bucket, Record, RecordHeap


class TestRecord:
    def test_roundtrip(self):
        record = Record(1234, b"payload")
        assert Record.from_bytes(record.to_bytes()) == record

    def test_size(self):
        assert Record(1, b"abc").size == 7  # 4 B key + 3 B value

    def test_key_range(self):
        Record((1 << 32) - 1, b"")
        with pytest.raises(SDDSError):
            Record(1 << 32, b"")
        with pytest.raises(SDDSError):
            Record(-1, b"")

    def test_with_value(self):
        record = Record(1, b"old")
        updated = record.with_value(b"new")
        assert updated.key == 1
        assert updated.value == b"new"
        assert record.value == b"old"  # immutable

    def test_truncated_bytes_rejected(self):
        with pytest.raises(SDDSError):
            Record.from_bytes(b"ab")

    def test_value_coerced_to_bytes(self):
        assert isinstance(Record(1, bytearray(b"x")).value, bytes)


class TestRecordHeap:
    def test_allocate_write_read(self):
        heap = RecordHeap(64)
        offset = heap.allocate(10)
        heap.write(offset, b"0123456789")
        assert heap.read(offset, 10) == b"0123456789"

    def test_free_zeroes(self):
        heap = RecordHeap(64)
        offset = heap.allocate(8)
        heap.write(offset, b"AAAAAAAA")
        heap.free(offset, 8)
        assert heap.read(offset, 8) == bytes(8)

    def test_free_reuses_space(self):
        heap = RecordHeap(32)
        first = heap.allocate(16)
        heap.free(first, 16)
        second = heap.allocate(16)
        assert second == first

    def test_grows_on_demand(self):
        heap = RecordHeap(16)
        heap.allocate(16)
        offset = heap.allocate(100)
        assert heap.size >= offset + 100
        heap.check_invariants()

    def test_image_reflects_writes(self):
        heap = RecordHeap(16)
        offset = heap.allocate(4)
        heap.write(offset, b"data")
        assert bytes(heap.image[offset:offset + 4]) == b"data"

    def test_image_readonly(self):
        heap = RecordHeap(16)
        with pytest.raises(TypeError):
            heap.image[0] = 1

    def test_out_of_bounds_rejected(self):
        heap = RecordHeap(16)
        with pytest.raises(SDDSError):
            heap.read(10, 10)
        with pytest.raises(SDDSError):
            heap.write(-1, b"x")

    def test_listeners_notified(self):
        heap = RecordHeap(64)
        writes = []
        heap.add_write_listener(lambda offset, length: writes.append((offset, length)))
        offset = heap.allocate(4)
        heap.write(offset, b"abcd")
        assert (offset, 4) in writes

    def test_bad_allocation(self):
        with pytest.raises(SDDSError):
            RecordHeap(16).allocate(0)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_invariants_under_random_ops(self, seed):
        rng = np.random.default_rng(seed)
        heap = RecordHeap(128)
        live = {}
        for step in range(200):
            if rng.random() < 0.6 or not live:
                size = int(rng.integers(1, 40))
                offset = heap.allocate(size)
                payload = bytes(rng.integers(0, 256, size, dtype=np.uint8))
                heap.write(offset, payload)
                live[offset] = payload
            else:
                offset = live and list(live)[int(rng.integers(0, len(live)))]
                payload = live.pop(offset)
                heap.free(offset, len(payload))
            heap.check_invariants()
        for offset, payload in live.items():
            assert heap.read(offset, len(payload)) == payload


class TestBucket:
    def test_insert_get(self):
        bucket = Bucket(0)
        bucket.insert(Record(1, b"one"))
        assert bucket.get(1).value == b"one"
        assert len(bucket) == 1
        assert 1 in bucket

    def test_duplicate_insert(self):
        bucket = Bucket(0)
        bucket.insert(Record(1, b"x"))
        with pytest.raises(DuplicateKeyError):
            bucket.insert(Record(1, b"y"))

    def test_get_missing(self):
        with pytest.raises(KeyNotFoundError):
            Bucket(0).get(5)

    def test_update_in_place(self):
        bucket = Bucket(0)
        bucket.insert(Record(1, b"aaaa"))
        bucket.update(1, b"bbbb")
        assert bucket.get(1).value == b"bbbb"

    def test_update_resize(self):
        bucket = Bucket(0)
        bucket.insert(Record(1, b"short"))
        bucket.update(1, b"a much longer value than before")
        assert bucket.get(1).value == b"a much longer value than before"
        bucket.update(1, b"s")
        assert bucket.get(1).value == b"s"
        bucket.heap.check_invariants()

    def test_delete(self):
        bucket = Bucket(0)
        bucket.insert(Record(1, b"gone"))
        assert bucket.delete(1).value == b"gone"
        assert 1 not in bucket

    def test_records_sorted(self):
        bucket = Bucket(0)
        for key in (30, 10, 20):
            bucket.insert(Record(key, b"v"))
        assert [r.key for r in bucket.records()] == [10, 20, 30]

    def test_overfull_flag(self):
        bucket = Bucket(0, capacity_records=2)
        bucket.insert(Record(1, b"a"))
        bucket.insert(Record(2, b"b"))
        assert not bucket.is_overfull
        bucket.insert(Record(3, b"c"))
        assert bucket.is_overfull

    def test_no_hard_capacity_stop(self):
        """Linear hashing splits buckets in pointer order, so a bucket
        may legitimately exceed capacity until its turn; buckets must be
        elastic."""
        bucket = Bucket(0, capacity_records=2)
        for key in range(10):
            bucket.insert(Record(key, b"x"))
        assert bucket.is_overfull
        assert len(bucket) == 10

    def test_split_into(self):
        bucket = Bucket(0)
        for key in range(20):
            bucket.insert(Record(key, bytes([key])))
        target = Bucket(1)
        moved = bucket.split_into(target, moves=lambda key: key % 2 == 1)
        assert moved == 10
        assert sorted(bucket.keys()) == list(range(0, 20, 2))
        assert sorted(target.keys()) == list(range(1, 20, 2))
        for key in range(1, 20, 2):
            assert target.get(key).value == bytes([key])

    def test_median_key(self):
        bucket = Bucket(0)
        for key in (1, 5, 9, 13, 17):
            bucket.insert(Record(key, b"v"))
        assert bucket.median_key() == 9

    def test_median_of_empty(self):
        with pytest.raises(KeyNotFoundError):
            Bucket(0).median_key()

    def test_image_contains_records(self):
        bucket = Bucket(0)
        bucket.insert(Record(7, b"NEEDLE"))
        assert b"NEEDLE" in bytes(bucket.image)

    def test_deleted_record_zeroed_in_image(self):
        """Freed extents are zeroed so stale bytes cannot alias live data
        in page signatures."""
        bucket = Bucket(0)
        bucket.insert(Record(7, b"SECRET-PAYLOAD"))
        bucket.delete(7)
        assert b"SECRET-PAYLOAD" not in bytes(bucket.image)

    def test_index_pages(self):
        bucket = Bucket(0)
        for key in range(10):
            bucket.insert(Record(key, b"v"))
        pages = bucket.index_pages(page_bytes=32)
        assert b"".join(pages)[:8] == (0).to_bytes(8, "little")
