"""Tests for the from-scratch baselines against the standard library."""

import binascii
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    CRC16,
    KarpRabinFingerprint,
    MD5,
    SHA1,
    crc16,
    crc32,
    md5,
    sha1,
    xor_fold,
    xor_fold_search,
)
from repro.errors import SignatureError


class TestSHA1:
    def test_empty(self):
        assert sha1(b"") == hashlib.sha1(b"").digest()

    def test_abc_vector(self):
        # FIPS 180-1 Appendix A test vector.
        assert SHA1(b"abc").hexdigest() == \
            "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_vector(self):
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert SHA1(message).hexdigest() == \
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    @pytest.mark.parametrize("size", [0, 1, 55, 56, 63, 64, 65, 119, 128, 1000])
    def test_padding_boundaries(self, size):
        data = bytes(range(256)) * (size // 256 + 1)
        data = data[:size]
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(st.binary(max_size=300))
    @settings(max_examples=80)
    def test_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    @given(st.lists(st.binary(max_size=80), max_size=6))
    @settings(max_examples=40)
    def test_incremental_updates(self, chunks):
        incremental = SHA1()
        for chunk in chunks:
            incremental.update(chunk)
        assert incremental.digest() == hashlib.sha1(b"".join(chunks)).digest()

    def test_digest_does_not_consume(self):
        h = SHA1(b"abc")
        assert h.digest() == h.digest()
        h.update(b"def")
        assert h.digest() == hashlib.sha1(b"abcdef").digest()

    def test_digest_size(self):
        assert len(sha1(b"x")) == 20  # the paper's 20 B vs our 4 B


class TestMD5:
    def test_rfc1321_vectors(self):
        vectors = {
            b"": "d41d8cd98f00b204e9800998ecf8427e",
            b"a": "0cc175b9c0f1b6a831c399e269772661",
            b"abc": "900150983cd24fb0d6963f7d28e17f72",
            b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
        }
        for message, expected in vectors.items():
            assert MD5(message).hexdigest() == expected

    @given(st.binary(max_size=300))
    @settings(max_examples=80)
    def test_matches_hashlib(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    @given(st.lists(st.binary(max_size=80), max_size=6))
    @settings(max_examples=40)
    def test_incremental_updates(self, chunks):
        incremental = MD5()
        for chunk in chunks:
            incremental.update(chunk)
        assert incremental.digest() == hashlib.md5(b"".join(chunks)).digest()

    def test_digest_size(self):
        assert len(md5(b"x")) == 16


class TestCRC:
    @given(st.binary(max_size=500))
    @settings(max_examples=100)
    def test_crc32_matches_binascii(self, data):
        assert crc32(data) == binascii.crc32(data)

    def test_crc16_arc_vector(self):
        # Standard CRC-16/ARC check value.
        assert crc16(b"123456789") == 0xBB3D

    def test_crc_digest_width(self):
        assert len(CRC16.digest(b"data")) == 2

    def test_crc_streaming_equivalence(self):
        """CRC over concatenation equals continuing from the state."""
        first = CRC16.compute(b"hello", state=CRC16.init)
        resumed = CRC16.compute(b" world", state=first ^ CRC16.xor_out)
        assert resumed == crc16(b"hello world")


class TestKarpRabin:
    def test_fingerprint_positional(self):
        kr = KarpRabinFingerprint()
        assert kr.fingerprint(b"ab") != kr.fingerprint(b"ba")

    def test_search_exact(self):
        kr = KarpRabinFingerprint()
        assert kr.search(b"abracadabra", b"abra") == [0, 7]
        assert kr.search(b"abracadabra", b"xyz") == []

    def test_search_overlapping(self):
        kr = KarpRabinFingerprint()
        assert kr.search(b"aaaa", b"aa") == [0, 1, 2]

    def test_empty_needle_rejected(self):
        with pytest.raises(SignatureError):
            KarpRabinFingerprint().search(b"abc", b"")

    def test_needle_longer_than_haystack(self):
        assert KarpRabinFingerprint().search(b"ab", b"abc") == []

    @given(st.binary(min_size=5, max_size=120), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_matches_naive(self, haystack, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(haystack) - 2))
        needle = haystack[start:start + 3]
        expected = [i for i in range(len(haystack) - 2)
                    if haystack[i:i + 3] == needle]
        assert KarpRabinFingerprint().search(haystack, needle) == expected

    def test_bad_modulus_rejected(self):
        with pytest.raises(SignatureError):
            KarpRabinFingerprint(modulus=1)


class TestXorFold:
    def test_empty(self):
        assert xor_fold(b"") == 0

    def test_permutation_invariant(self):
        """The XOR fold has no positional sensitivity -- why it is only
        a control, never a signature."""
        assert xor_fold(b"abc") == xor_fold(b"cba")

    def test_search_exact_results(self):
        assert xor_fold_search(b"abracadabra", b"abra") == [0, 7]

    @given(st.binary(min_size=5, max_size=120), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_matches_naive(self, haystack, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(haystack) - 2))
        needle = haystack[start:start + 3]
        expected = [i for i in range(len(haystack) - 2)
                    if haystack[i:i + 3] == needle]
        assert xor_fold_search(haystack, needle) == expected

    def test_empty_needle_rejected(self):
        with pytest.raises(SignatureError):
            xor_fold_search(b"abc", b"")
