"""Tests for Reed-Solomon parity and the signature consistency relation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParityError, ReconstructionError
from repro.gf import GF, linalg
from repro.parity import (
    ReedSolomonCode,
    ReliabilityGroup,
    cauchy_matrix,
    combine_signatures,
    parity_consistent,
)
from repro.sig import make_scheme


class TestCauchyMatrix:
    def test_every_square_submatrix_invertible(self):
        """The MDS property source: check all 1x1 and 2x2 submatrices of
        a 3x4 Cauchy matrix over GF(2^8)."""
        from itertools import combinations

        gf = GF(8)
        matrix = cauchy_matrix(gf, 3, 4)
        for entry_row in matrix:
            for entry in entry_row:
                assert entry != 0
        for rows in combinations(range(3), 2):
            for cols in combinations(range(4), 2):
                sub = [[matrix[r][c] for c in cols] for r in rows]
                assert linalg.is_invertible(gf, sub)

    def test_too_large_group_rejected(self):
        with pytest.raises(ParityError):
            cauchy_matrix(GF(4), 10, 10)


class TestReedSolomon:
    def make_words(self, gf, m, length, seed):
        rng = np.random.default_rng(seed)
        return [rng.integers(0, gf.size, length).astype(np.int64)
                for _ in range(m)]

    @given(st.integers(0, 2**32 - 1), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_any_erasure_pattern_reconstructs(self, seed, m, k):
        gf = GF(8)
        code = ReedSolomonCode(gf, m, k)
        data = self.make_words(gf, m, 32, seed)
        parity = code.encode(data)
        rng = np.random.default_rng(seed + 1)
        all_shards = {i: d for i, d in enumerate(data)}
        all_shards.update({m + i: p for i, p in enumerate(parity)})
        erased = rng.choice(m + k, size=min(k, m + k - m), replace=False)
        for index in erased:
            del all_shards[int(index)]
        recovered = code.reconstruct(all_shards)
        for original, got in zip(data, recovered):
            assert np.array_equal(original, got)

    def test_max_erasures_exactly_k(self):
        gf = GF(8)
        code = ReedSolomonCode(gf, 4, 2)
        data = self.make_words(gf, 4, 16, 3)
        parity = code.encode(data)
        shards = {i: d for i, d in enumerate(data)}
        shards.update({4 + i: p for i, p in enumerate(parity)})
        del shards[0]
        del shards[2]  # exactly k = 2 erasures
        recovered = code.reconstruct(shards)
        assert np.array_equal(recovered[0], data[0])
        assert np.array_equal(recovered[2], data[2])

    def test_too_many_erasures_rejected(self):
        gf = GF(8)
        code = ReedSolomonCode(gf, 3, 1)
        data = self.make_words(gf, 3, 8, 4)
        parity = code.encode(data)
        shards = {0: data[0], 3: parity[0]}  # only 2 of 3 needed
        with pytest.raises(ReconstructionError):
            code.reconstruct(shards)

    def test_parity_delta_rule(self):
        """Updating one data shard: parity adjusts by c * delta without
        seeing the full records (the LH*RS update path)."""
        gf = GF(16)
        code = ReedSolomonCode(gf, 3, 2)
        rng = np.random.default_rng(5)
        data = self.make_words(gf, 3, 16, 5)
        parity = code.encode(data)
        new_shard = rng.integers(0, gf.size, 16).astype(np.int64)
        delta = data[1] ^ new_shard
        data[1] = new_shard
        for parity_index in range(2):
            parity[parity_index] ^= code.parity_delta(parity_index, 1, delta)
        fresh = code.encode(data)
        for updated, recomputed in zip(parity, fresh):
            assert np.array_equal(updated, recomputed)

    def test_mismatched_lengths_rejected(self):
        gf = GF(8)
        code = ReedSolomonCode(gf, 2, 1)
        with pytest.raises(ParityError):
            code.encode([np.zeros(4, dtype=np.int64),
                         np.zeros(5, dtype=np.int64)])

    def test_wrong_shard_count_rejected(self):
        gf = GF(8)
        code = ReedSolomonCode(gf, 2, 1)
        with pytest.raises(ParityError):
            code.encode([np.zeros(4, dtype=np.int64)])


class TestSignatureConsistency:
    """The Section 6.2 relation: sig(parity) = sum c_j * sig(data_j)."""

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_relation_holds_for_encoded_parity(self, seed):
        scheme = make_scheme(f=16, n=2)
        gf = scheme.field
        code = ReedSolomonCode(gf, 4, 2)
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, gf.size, 64).astype(np.int64) for _ in range(4)]
        parity = code.encode(data)
        data_sigs = [scheme.sign(shard) for shard in data]
        for parity_index, parity_shard in enumerate(parity):
            assert parity_consistent(
                scheme, data_sigs, scheme.sign(parity_shard),
                code.parity_rows[parity_index],
            )

    def test_relation_fails_on_inconsistency(self):
        scheme = make_scheme(f=16, n=2)
        gf = scheme.field
        code = ReedSolomonCode(gf, 3, 1)
        rng = np.random.default_rng(8)
        data = [rng.integers(0, gf.size, 32).astype(np.int64) for _ in range(3)]
        parity = code.encode(data)[0]
        # A data server applied an update the parity server never saw:
        # data signatures are current, the parity signature is stale.
        data[1][0] ^= 1
        data_sigs = [scheme.sign(shard) for shard in data]
        assert not parity_consistent(
            scheme, data_sigs, scheme.sign(parity), code.parity_rows[0]
        )

    def test_combine_validates_inputs(self):
        scheme = make_scheme(f=8, n=2)
        with pytest.raises(ParityError):
            combine_signatures(scheme, [scheme.sign(b"x")], [1, 2])
        with pytest.raises(ParityError):
            combine_signatures(scheme, [], [])

    def test_cross_scheme_rejected(self):
        scheme = make_scheme(f=8, n=2)
        other = make_scheme(f=16, n=2)
        with pytest.raises(ParityError):
            combine_signatures(scheme, [other.sign(b"x")], [1])


class TestReliabilityGroup:
    def make_group(self, m=3, k=2, record_bytes=64, seed=0):
        scheme = make_scheme(f=16, n=2)
        group = ReliabilityGroup(scheme, m, k, record_bytes)
        rng = np.random.default_rng(seed)
        for shard in range(m):
            group.put(0, shard, bytes(
                rng.integers(0, 256, record_bytes, dtype=np.uint8)
            ))
        return group, rng

    def test_put_get_roundtrip(self):
        group, rng = self.make_group()
        value = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        group.put(0, 1, value)
        assert group.get(0, 1) == value

    def test_audit_passes_when_consistent(self):
        group, _rng = self.make_group()
        assert group.audit(0)

    def test_audit_catches_corruption(self):
        group, _rng = self.make_group()
        group.corrupt_parity(0, 0, symbol=3)
        assert not group.audit(0)

    def test_audit_after_updates(self):
        group, rng = self.make_group()
        for _ in range(5):
            shard = int(rng.integers(0, 3))
            group.put(0, shard, bytes(rng.integers(0, 256, 64, dtype=np.uint8)))
            assert group.audit(0)

    def test_reconstruct_lost_data_shards(self):
        group, _rng = self.make_group()
        originals = [group.get(0, shard) for shard in range(3)]
        recovered = group.reconstruct(0, lost_shards={0, 2})
        from repro.gf.vectorized import symbols_to_bytes

        for shard in range(3):
            assert symbols_to_bytes(recovered[shard], group.scheme.field) == \
                originals[shard]

    def test_too_many_erasures_rejected(self):
        group, _rng = self.make_group(m=3, k=1)
        with pytest.raises(ParityError):
            group.reconstruct(0, lost_shards={0, 1})

    def test_record_size_validated(self):
        group, _rng = self.make_group()
        with pytest.raises(ParityError):
            group.put(0, 0, b"short")

    def test_odd_record_size_rejected(self):
        scheme = make_scheme(f=16, n=2)
        with pytest.raises(ParityError):
            ReliabilityGroup(scheme, 2, 1, record_bytes=63)

    def test_unknown_rank_rejected(self):
        group, _rng = self.make_group()
        with pytest.raises(ParityError):
            group.get(99, 0)
