"""Tests for the in-RAM B-tree bucket index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, KeyNotFoundError, SDDSError
from repro.sdds import BTree


class TestBasics:
    def test_empty(self):
        tree = BTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.get(5) is None
        assert tree.get(5, "dflt") == "dflt"

    def test_insert_and_search(self):
        tree = BTree(min_degree=2)
        tree.insert(10, "a")
        tree.insert(5, "b")
        tree.insert(20, "c")
        assert tree.search(10) == "a"
        assert tree.search(5) == "b"
        assert tree.search(20) == "c"
        assert len(tree) == 3

    def test_duplicate_rejected(self):
        tree = BTree()
        tree.insert(1, "x")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, "y")

    def test_missing_search(self):
        with pytest.raises(KeyNotFoundError):
            BTree().search(99)

    def test_replace(self):
        tree = BTree()
        tree.insert(1, "old")
        tree.replace(1, "new")
        assert tree.search(1) == "new"

    def test_replace_missing(self):
        with pytest.raises(KeyNotFoundError):
            BTree().replace(1, "x")

    def test_upsert(self):
        tree = BTree()
        assert tree.upsert(1, "a") is True
        assert tree.upsert(1, "b") is False
        assert tree.search(1) == "b"
        assert len(tree) == 1

    def test_min_degree_validation(self):
        with pytest.raises(SDDSError):
            BTree(min_degree=1)


class TestDelete:
    def test_delete_returns_value(self):
        tree = BTree(min_degree=2)
        tree.insert(1, "one")
        assert tree.delete(1) == "one"
        assert len(tree) == 0
        assert 1 not in tree

    def test_delete_missing(self):
        with pytest.raises(KeyNotFoundError):
            BTree().delete(42)

    def test_delete_all_in_order(self):
        tree = BTree(min_degree=2)
        for key in range(100):
            tree.insert(key, key)
        for key in range(100):
            assert tree.delete(key) == key
            tree.check_invariants()
        assert len(tree) == 0

    def test_delete_all_reverse(self):
        tree = BTree(min_degree=2)
        for key in range(100):
            tree.insert(key, key)
        for key in reversed(range(100)):
            assert tree.delete(key) == key
        assert len(tree) == 0

    def test_delete_root_collapse(self):
        tree = BTree(min_degree=2)
        for key in range(10):
            tree.insert(key, key)
        for key in range(9):
            tree.delete(key)
        tree.check_invariants()
        assert list(tree.keys()) == [9]


class TestOrderedAccess:
    def test_items_sorted(self):
        tree = BTree(min_degree=3)
        keys = random.Random(1).sample(range(10000), 500)
        for key in keys:
            tree.insert(key, -key)
        assert [k for k, _v in tree.items()] == sorted(keys)

    def test_min_max(self):
        tree = BTree()
        for key in (50, 10, 90):
            tree.insert(key, None)
        assert tree.min_key() == 10
        assert tree.max_key() == 90

    def test_min_max_empty(self):
        with pytest.raises(KeyNotFoundError):
            BTree().min_key()
        with pytest.raises(KeyNotFoundError):
            BTree().max_key()

    def test_range_items(self):
        tree = BTree(min_degree=2)
        for key in range(0, 100, 10):
            tree.insert(key, key)
        assert [k for k, _v in tree.range_items(25, 65)] == [30, 40, 50, 60]


class TestInvariantsUnderRandomOps:
    @given(st.integers(0, 2**32 - 1), st.sampled_from([2, 3, 5, 8]))
    @settings(max_examples=30, deadline=None)
    def test_matches_dict_reference(self, seed, degree):
        rng = random.Random(seed)
        tree = BTree(min_degree=degree)
        reference = {}
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not reference:
                key = rng.randrange(1000)
                if key in reference:
                    tree.replace(key, step)
                else:
                    tree.insert(key, step)
                reference[key] = step
            elif action < 0.85:
                key = rng.choice(list(reference))
                assert tree.delete(key) == reference.pop(key)
            else:
                key = rng.randrange(1000)
                assert tree.get(key) == reference.get(key)
        tree.check_invariants()
        assert list(tree.items()) == sorted(reference.items())


class TestIndexPages:
    def test_page_size_and_content(self):
        tree = BTree(min_degree=2)
        for key in range(32):
            tree.insert(key, None)
        pages = tree.index_pages(page_bytes=128)
        stream = b"".join(pages)
        keys = [
            int.from_bytes(stream[i:i + 8], "little")
            for i in range(0, 32 * 8, 8)
        ]
        assert keys == list(range(32))
        assert all(len(page) <= 128 for page in pages)

    def test_empty_tree_single_page(self):
        assert BTree().index_pages() == [b""]
