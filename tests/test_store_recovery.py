"""Parallel certified recovery: sharded scan, group commit, env knobs.

The load-bearing properties of PR 9:

* the segment-sharded certification scan is **byte-identical** to the
  sequential one for any worker count -- Proposition 1's per-frame
  seal checks are independent of batch composition, and the global
  seq-monotonicity fold only needs the running max, so per-segment
  partitions stitch into exactly the sequential verdict (including
  torn tails and corrupt regions straddling a segment boundary);
* ``flush="group"`` coalesces frames into one write + one flush per
  group without changing a single byte of the encoded log -- frame
  encoding, offsets, and scans are identical across flush modes;
* the worker knobs resolve ``REPRO_RECOVERY_WORKERS`` first, then
  fall back to ``REPRO_SIGN_WORKERS``, then CPU count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError, StoreError
from repro.obs import MetricsRegistry, use_registry
from repro.sig import SignatureMap, make_scheme
from repro.store import (
    KIND_PAGE,
    MIN_PARALLEL_BYTES,
    Frame,
    PageStore,
    SegmentedLog,
    effective_workers,
    resolve_recovery_workers,
)
from repro.store import frames as fr

SCHEME = make_scheme()
SEGMENT = 4096                   # small segments force multi-segment logs


def _page_frame(seq: int, fill: int = 0, size: int = 512) -> Frame:
    return Frame(KIND_PAGE, seq, "vol",
                 fr.encode_page(seq, size, bytes([fill % 251]) * size))


def _multi_segment_log(tmp_path, frames: int = 24, **kwargs) -> SegmentedLog:
    log = SegmentedLog(tmp_path, SCHEME, segment_bytes=SEGMENT, **kwargs)
    log.append_many([_page_frame(seq, seq) for seq in range(frames)])
    assert log.segment_count > 2
    return log


def _fingerprint(result) -> tuple:
    """Every observable coordinate of a scan's partition."""
    return (
        tuple((f.start, f.end, f.frame.kind, f.frame.seq, f.frame.volume,
               bytes(f.frame.payload)) for f in result.frames),
        tuple((r.start, r.end, r.reason) for r in result.corrupt),
        result.torn_start, result.total_bytes,
    )


def assert_parallel_equals_sequential(log, trusted_bytes: int = 0) -> tuple:
    """Scans with 1, 2 and 3 workers must agree coordinate for coordinate."""
    reference = _fingerprint(log.scan(trusted_bytes=trusted_bytes,
                                      verify_workers=1))
    for workers in (2, 3):
        assert _fingerprint(log.scan(trusted_bytes=trusted_bytes,
                                     verify_workers=workers)) == reference
    return reference


# ----------------------------------------------------------------------
# Worker resolution
# ----------------------------------------------------------------------

class TestResolveRecoveryWorkers:
    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_WORKERS", "7")
        assert resolve_recovery_workers(3) == 3

    def test_recovery_env_beats_sign_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_WORKERS", "5")
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "2")
        assert resolve_recovery_workers() == 5

    def test_falls_back_to_sign_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RECOVERY_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "6")
        assert resolve_recovery_workers() == 6

    def test_invalid_value_names_the_offending_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY_WORKERS", "many")
        with pytest.raises(SignatureError, match="REPRO_RECOVERY_WORKERS"):
            resolve_recovery_workers()
        monkeypatch.setenv("REPRO_RECOVERY_WORKERS", "0")
        with pytest.raises(SignatureError, match="REPRO_RECOVERY_WORKERS"):
            resolve_recovery_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_RECOVERY_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SIGN_WORKERS", raising=False)
        assert resolve_recovery_workers() == (os.cpu_count() or 1)

    def test_effective_workers_gates_and_clamps(self, monkeypatch):
        monkeypatch.delenv("REPRO_RECOVERY_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "8")
        # Explicit request: honoured, clamped to one shard per segment.
        assert effective_workers(4, 10 * MIN_PARALLEL_BYTES, 2) == 2
        assert effective_workers(4, 0, 16) == 4
        # Auto mode: tiny logs and single segments stay in-process.
        assert effective_workers(None, MIN_PARALLEL_BYTES - 1, 16) == 1
        assert effective_workers(None, MIN_PARALLEL_BYTES, 1) == 1
        assert effective_workers(None, MIN_PARALLEL_BYTES, 16) == 8


# ----------------------------------------------------------------------
# Parallel scan == sequential scan
# ----------------------------------------------------------------------

class TestParallelScanExactness:
    def test_clean_multi_segment_log(self, tmp_path):
        log = _multi_segment_log(tmp_path)
        frames, corrupt, torn, _total = \
            assert_parallel_equals_sequential(log)
        assert len(frames) == 24 and not corrupt and torn is None

    def test_torn_tail_straddling_a_segment_boundary(self, tmp_path):
        log = _multi_segment_log(tmp_path)
        # Cut inside the *first* frame of the last segment: the torn
        # tail starts in the previous segment's coordinate space only
        # if that frame is the last valid one -- the boundary case the
        # cross-segment stitch must get right.
        last_base = log.total_bytes - log.segments()[-1][1]
        log.crash_cut(last_base + 7)
        frames, corrupt, torn, total = \
            assert_parallel_equals_sequential(log)
        assert torn == last_base and total == last_base + 7
        assert frames[-1][1] == last_base and not corrupt

    def test_corrupt_region_straddling_a_segment_boundary(self, tmp_path):
        log = _multi_segment_log(tmp_path)
        # Rot the last frame of one segment AND the first frame of the
        # next: adjacent corrupt regions on both sides of the boundary.
        segments = log.segments()
        second_base = segments[0][1]
        log.corrupt_bytes(second_base - 20, b"\xff")
        log.corrupt_bytes(second_base + 20, b"\xff")
        frames, corrupt, torn, _total = \
            assert_parallel_equals_sequential(log)
        assert torn is None
        reasons = [r[2] for r in corrupt]
        assert reasons.count("seal") == 2
        spans = sorted((r[0], r[1]) for r in corrupt)
        assert spans[0][1] <= second_base <= spans[1][0]
        assert len(frames) == 22

    def test_stale_seq_across_segments(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME, segment_bytes=SEGMENT)
        log.append_many([_page_frame(seq, seq) for seq in range(10)])
        # A structurally valid frame whose seq regressed: stale bytes
        # landing in a *later* segment must still be rejected by the
        # cross-segment monotonicity fold.
        log.append(_page_frame(3, 99))
        log.append_many([_page_frame(seq, seq) for seq in range(10, 14)])
        assert log.segment_count > 2
        frames, corrupt, torn, _total = \
            assert_parallel_equals_sequential(log)
        assert torn is None
        assert [r[2] for r in corrupt] == ["stale_seq"]
        assert len(frames) == 14

    def test_trusted_prefix_ending_mid_segment(self, tmp_path):
        log = _multi_segment_log(tmp_path)
        # Trust a prefix that ends inside segment 1 (not on a boundary)
        # with rot both inside and beyond it: only the post-trust rot
        # may surface, identically for any worker count.
        segments = log.segments()
        trusted = segments[0][1] + segments[1][1] // 2
        scan = log.scan()
        inside = next(f for f in scan.frames if f.end <= trusted)
        beyond = next(f for f in scan.frames if f.start >= trusted)
        log.corrupt_bytes(inside.start + 40, b"\x55")    # payload bytes
        log.corrupt_bytes(beyond.start + 40, b"\x55")
        frames, corrupt, _torn, _total = \
            assert_parallel_equals_sequential(log, trusted_bytes=trusted)
        assert [r[2] for r in corrupt] == ["seal"]
        assert corrupt[0][0] == beyond.start
        # The trusted frame is still structurally parsed and returned.
        assert any(f[0] == inside.start for f in frames)

    def test_explicit_workers_beyond_segments_still_exact(self, tmp_path):
        log = _multi_segment_log(tmp_path)
        reference = _fingerprint(log.scan(verify_workers=1))
        assert _fingerprint(log.scan(verify_workers=64)) == reference

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_faults_never_diverge(self, data, tmp_path_factory):
        """Parallel == sequential over random rot + torn-tail plans."""
        tmp_path = tmp_path_factory.mktemp("fuzz")
        log = _multi_segment_log(tmp_path, frames=16)
        total = log.total_bytes
        for _ in range(data.draw(st.integers(0, 3), label="rot_count")):
            offset = data.draw(st.integers(0, total - 3), label="rot_at")
            log.corrupt_bytes(offset, b"\xff\x01")
        if data.draw(st.booleans(), label="torn"):
            log.crash_cut(data.draw(st.integers(1, total), label="cut"))
        assert_parallel_equals_sequential(log)


# ----------------------------------------------------------------------
# Group commit
# ----------------------------------------------------------------------

class TestGroupCommit:
    def test_modes_lay_down_identical_logs(self, tmp_path):
        frames = [_page_frame(seq, seq) for seq in range(30)]
        images, offsets = {}, {}
        for flush in ("frame", "group"):
            directory = tmp_path / flush
            log = SegmentedLog(directory, SCHEME, segment_bytes=SEGMENT,
                               flush=flush)
            offsets[flush] = [log.append(frame) for frame in frames]
            log.close()
            images[flush] = b"".join(
                path.read_bytes()
                for path in sorted(directory.glob("seg-*.log")))
        assert offsets["frame"] == offsets["group"]
        assert images["frame"] == images["group"]

    def test_pending_frames_coalesce_until_commit(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            log = SegmentedLog(tmp_path, SCHEME, flush="group",
                               group_bytes=1 << 20, group_latency_s=3600.0)
            log.append(_page_frame(0))
            # Logical length counts the pending frame; the segment file
            # does not hold it yet (no write, no flush happened).
            assert log.total_bytes > 0
            assert log.segment_path(0).stat().st_size == 0
            assert registry.total("store.log.fsyncs") == 0
            flushed = log.commit()
            assert flushed == log.total_bytes
            assert log.segment_path(0).stat().st_size == log.total_bytes
            assert registry.total("store.log.fsyncs") == 1
            assert registry.total("store.log.group_commits") == 1
            assert registry.total("store.log.group_bytes") == flushed
            log.close()

    def test_group_bytes_threshold_triggers_commit(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            log = SegmentedLog(tmp_path, SCHEME, flush="group",
                               group_bytes=1, group_latency_s=3600.0)
            log.append_many([_page_frame(seq) for seq in range(3)])
            assert registry.total("store.log.group_commits") >= 1
            log.close()

    def test_scan_sees_pending_frames(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME, flush="group",
                           group_bytes=1 << 20, group_latency_s=3600.0)
        log.append_many([_page_frame(seq, seq) for seq in range(5)])
        scan = log.scan()        # scan commits first: it reads files
        assert [sf.frame.seq for sf in scan.frames] == list(range(5))
        assert not scan.corrupt and scan.torn_start is None
        log.close()

    def test_segment_roll_commits_pending_first(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME, segment_bytes=SEGMENT,
                           flush="group", group_bytes=1 << 20,
                           group_latency_s=3600.0)
        log.append_many([_page_frame(seq, seq) for seq in range(24)])
        log.close()
        sizes = dict(log.segments())
        for index, size in sizes.items():
            assert log.segment_path(index).stat().st_size == size

    def test_flush_mode_validated(self, tmp_path):
        with pytest.raises(StoreError):
            SegmentedLog(tmp_path, SCHEME, flush="sometimes")
        with pytest.raises(StoreError):
            SegmentedLog(tmp_path, SCHEME, flush="group", group_bytes=0)
        with pytest.raises(StoreError):
            SegmentedLog(tmp_path, SCHEME, flush="group",
                         group_latency_s=-1.0)


# ----------------------------------------------------------------------
# Whole-store parallel recovery
# ----------------------------------------------------------------------

def _churned_store(directory, flush: str = "frame") -> bytes:
    page_bytes = 512
    store = PageStore(SCHEME, directory, segment_bytes=SEGMENT, flush=flush)
    image = bytearray(bytes(range(256)) * (16 * page_bytes // 256))
    store.write_image("vol", bytes(image), page_bytes)
    store.checkpoint()
    for offset in range(0, len(image), 1024):
        before = bytes(image[offset:offset + 64])
        after = bytes((b ^ 0x2A) for b in before)
        image[offset:offset + 64] = after
        store.record_extent("vol", offset, before, after, len(image))
    store.close()
    return bytes(image)


class TestParallelRecover:
    def test_parallel_recover_equals_sequential(self, tmp_path):
        image = _churned_store(tmp_path / "store")
        outcomes = {}
        for workers in (1, 3):
            store, report = PageStore.recover(
                SCHEME, tmp_path / "store", segment_bytes=SEGMENT,
                verify_workers=workers)
            try:
                outcomes[workers] = (
                    store.image("vol"),
                    store.signature_map("vol").signatures,
                    report.frames_folded, report.frames_valid,
                    report.condemned, report.torn_bytes,
                )
            finally:
                store.close()
        assert outcomes[1] == outcomes[3]
        assert outcomes[1][0] == image

    def test_group_flush_store_recovers_with_workers(self, tmp_path):
        image = _churned_store(tmp_path / "store", flush="group")
        store, report = PageStore.recover(
            SCHEME, tmp_path / "store", segment_bytes=SEGMENT,
            verify_workers=2, flush="group")
        try:
            assert store.image("vol") == image
            assert report.clean
            page_bytes = store.page_bytes_of("vol")
            expected = SignatureMap.compute(
                SCHEME, image, page_bytes // SCHEME.scheme_id.symbol_bytes)
            assert store.signature_map("vol").signatures \
                == expected.signatures
        finally:
            store.close()

    def test_scrub_with_workers_matches_sequential(self, tmp_path):
        _churned_store(tmp_path / "store")
        reports = {}
        for workers in (None, 2):
            store, _report = PageStore.recover(
                SCHEME, tmp_path / "store", segment_bytes=SEGMENT,
                verify_workers=workers)
            try:
                scrub = store.scrub("vol")
                reports[workers] = (scrub.nodes_compared,
                                    tuple(scrub.condemned))
            finally:
                store.close()
        assert reports[None] == reports[2]
        assert reports[2][1] == ()
