"""Tests for stream signing, update logs, and the distributed multi-scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.sdds import LHFile, Record
from repro.sig import StreamSigner, UpdateLog, make_scheme


class TestStreamSigner:
    @given(st.lists(st.binary(max_size=60), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_equals_from_scratch_signature(self, chunks):
        scheme = make_scheme(f=8, n=2)
        signer = StreamSigner(scheme)
        total = b""
        for chunk in chunks:
            signer.append(chunk)
            total += chunk
            assert signer.signature == scheme.sign(total, strict=False)
        assert signer.symbols == len(total)

    def test_empty_stream(self):
        scheme = make_scheme(f=16, n=2)
        assert StreamSigner(scheme).signature == scheme.zero

    def test_append_cost_is_chunk_local(self):
        """Appending to a long stream does not reread the prefix: the
        time for a small append is independent of stream length."""
        import time

        scheme = make_scheme(f=16, n=2)
        signer = StreamSigner(scheme)
        signer.append(bytes(1 << 20))  # 1 MB prefix
        start = time.perf_counter()
        for _ in range(100):
            signer.append(b"0123456789" * 2)
        per_append = (time.perf_counter() - start) / 100
        assert per_append < 2e-3  # milliseconds, not the 1 MB rescan

    def test_grows_past_page_bound(self):
        scheme = make_scheme(f=8, n=2)
        signer = StreamSigner(scheme)
        total = b""
        rng = np.random.default_rng(1)
        for _ in range(6):
            chunk = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
            signer.append(chunk)
            total += chunk
        assert len(total) > scheme.max_page_symbols
        assert signer.signature == scheme.sign(total, strict=False)


class TestUpdateLog:
    def make_block(self, seed=0, size=256):
        rng = np.random.default_rng(seed)
        return bytearray(rng.integers(0, 256, size, dtype=np.uint8))

    def apply_and_log(self, scheme, block, log, rng, count=10, region=8):
        for _ in range(count):
            offset = int(rng.integers(0, (len(block) - region) // 2)) * 2
            new = bytes(rng.integers(0, 256, region, dtype=np.uint8))
            log.record(offset // 2, bytes(block[offset:offset + region]), new)
            block[offset:offset + region] = new

    def test_verify_after_replay(self):
        scheme = make_scheme(f=16, n=2)
        block = self.make_block()
        log = UpdateLog(scheme, scheme.sign(bytes(block)))
        self.apply_and_log(scheme, block, log, np.random.default_rng(2))
        assert log.verify(bytes(block))

    def test_missed_update_detected(self):
        """An update logged but never applied: verify must fail."""
        scheme = make_scheme(f=16, n=2)
        block = self.make_block(seed=3)
        log = UpdateLog(scheme, scheme.sign(bytes(block)))
        log.record(4, bytes(block[8:16]), b"ABCDEFGH")
        # ... the write is lost; the block is unchanged.
        assert not log.verify(bytes(block))

    def test_unlogged_write_detected(self):
        scheme = make_scheme(f=16, n=2)
        block = self.make_block(seed=4)
        log = UpdateLog(scheme, scheme.sign(bytes(block)))
        block[10] ^= 1  # a write that bypassed the log
        assert not log.verify(bytes(block))

    def test_truncate_reanchors(self):
        scheme = make_scheme(f=16, n=2)
        block = self.make_block(seed=5)
        log = UpdateLog(scheme, scheme.sign(bytes(block)))
        rng = np.random.default_rng(6)
        self.apply_and_log(scheme, block, log, rng, count=12)
        assert log.verify(bytes(block))
        log.truncate(keep_last=3)
        assert len(log.entries) == 3
        assert log.verify(bytes(block))
        # Further updates keep working against the new anchor.
        self.apply_and_log(scheme, block, log, rng, count=4)
        assert log.verify(bytes(block))

    def test_truncate_everything(self):
        scheme = make_scheme(f=16, n=2)
        block = self.make_block(seed=7)
        log = UpdateLog(scheme, scheme.sign(bytes(block)))
        self.apply_and_log(scheme, block, log, np.random.default_rng(8))
        log.truncate()
        assert log.entries == []
        assert log.verify(bytes(block))

    def test_region_length_mismatch_rejected(self):
        scheme = make_scheme(f=16, n=2)
        log = UpdateLog(scheme, scheme.zero)
        with pytest.raises(SignatureError):
            log.record(0, b"ab", b"abc")

    def test_negative_position_rejected(self):
        scheme = make_scheme(f=16, n=2)
        log = UpdateLog(scheme, scheme.zero)
        with pytest.raises(SignatureError):
            log.record(-1, b"ab", b"cd")


class TestDistributedMultiScan:
    def build(self):
        scheme = make_scheme(f=16, n=2)
        file = LHFile(scheme, capacity_records=40)
        client = file.client()
        for key in range(120):
            client.insert(Record(key, b"base%04d" % key + b"." * 40))
        return file, client

    def test_finds_each_pattern(self):
        file, client = self.build()
        client.update_blind(3, b"xxALPHAxxx" + b"." * 38)
        client.update_blind(77, b"yyBETABETA" + b"." * 38)
        results = client.scan_many([b"ALPHA?"[:5] + b"x", b"BETABETA"])
        # note: GF(2^16) patterns must be even length; b"ALPHAx" is 6.
        assert [r.key for r in results[b"ALPHAx"]] == [3]
        assert [r.key for r in results[b"BETABETA"]] == [77]

    def test_one_request_per_server_for_many_patterns(self):
        file, client = self.build()
        from repro.sdds.messages import SCAN_REQUEST

        before = file.network.stats.by_kind.get(SCAN_REQUEST, 0)
        client.scan_many([b"ABAB", b"CDCD", b"EFEF", b"GHGHGH"])
        requests = file.network.stats.by_kind[SCAN_REQUEST] - before
        assert requests == file.bucket_count  # not patterns x servers

    def test_matches_individual_scans(self):
        file, client = self.build()
        client.update_blind(10, b"zzNEEDLE.." + b"." * 38)
        patterns = [b"NEEDLE", b"base"]
        many = client.scan_many(patterns)
        for pattern in patterns:
            single = client.scan(pattern)
            assert many[pattern] == single.records

    def test_empty_pattern_list_rejected(self):
        from repro.errors import SDDSError

        file, client = self.build()
        with pytest.raises(SDDSError):
            client.scan_many([])
