"""Tests for the chunked and paired-table fast signing paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.sig import PRIMITIVE, ChunkedSigner, PairedTableSigner, make_scheme


class TestChunkedSigner:
    @given(st.integers(0, 2**32 - 1), st.integers(0, 5000),
           st.integers(1, 2000))
    @settings(max_examples=40, deadline=None)
    def test_equals_reference_signature(self, seed, size, chunk):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=chunk)
        rng = np.random.default_rng(seed)
        page = rng.integers(0, 1 << 16, size).astype(np.int64)
        assert signer.sign(page) == scheme.sign(page, strict=False)

    def test_empty_page(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=100)
        assert signer.sign(np.zeros(0, dtype=np.int64)) == scheme.zero

    def test_signs_beyond_single_page_bound(self):
        """Chunking lets one logical signature cover data longer than
        the single-page certainty bound (Section 4.2 compounding)."""
        scheme = make_scheme(f=8, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=200)
        rng = np.random.default_rng(1)
        long_page = rng.integers(0, 256, 2000).astype(np.int64)  # > 254
        assert signer.sign(long_page) == scheme.sign(long_page, strict=False)

    def test_resign_one_chunk(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=500)
        rng = np.random.default_rng(2)
        page = rng.integers(0, 1 << 16, 2200).astype(np.int64)
        chunks = signer.chunk_signatures(page)
        new_chunk = rng.integers(0, 1 << 16, 500).astype(np.int64)
        updated_page = page.copy()
        updated_page[1000:1500] = new_chunk
        new_sig, new_chunks = signer.resign(chunks, 2, new_chunk)
        assert new_sig == scheme.sign(updated_page, strict=False)
        assert new_chunks[2][0] == scheme.sign(new_chunk)
        assert chunks[2][0] != new_chunks[2][0]

    def test_resign_validates_index_and_length(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=10)
        chunks = signer.chunk_signatures(np.zeros(25, dtype=np.int64))
        with pytest.raises(SignatureError):
            signer.resign(chunks, 9, np.zeros(10, dtype=np.int64))
        with pytest.raises(SignatureError):
            signer.resign(chunks, 0, np.zeros(7, dtype=np.int64))

    def test_chunk_size_validation(self):
        scheme = make_scheme(f=8, n=2)
        with pytest.raises(SignatureError):
            ChunkedSigner(scheme, chunk_symbols=0)
        with pytest.raises(SignatureError):
            ChunkedSigner(scheme, chunk_symbols=1000)  # > f=8 page bound


class TestPairedTableSigner:
    @given(st.lists(st.integers(0, 255), max_size=254))
    @settings(max_examples=60, deadline=None)
    def test_equals_reference_signature(self, symbols):
        scheme = make_scheme(f=8, n=3)
        signer = PairedTableSigner(scheme)
        page = np.array(symbols, dtype=np.int64)
        assert signer.sign(page) == scheme.sign(page)

    def test_bytes_input(self):
        scheme = make_scheme(f=8, n=2)
        signer = PairedTableSigner(scheme)
        assert signer.sign(b"hello world") == scheme.sign(b"hello world")

    def test_odd_length_pages(self):
        scheme = make_scheme(f=8, n=2)
        signer = PairedTableSigner(scheme)
        for size in (1, 3, 253):
            page = np.arange(size, dtype=np.int64) % 256
            assert signer.sign(page) == scheme.sign(page)

    def test_requires_gf8(self):
        with pytest.raises(SignatureError):
            PairedTableSigner(make_scheme(f=16, n=2))

    def test_page_bound_enforced(self):
        scheme = make_scheme(f=8, n=2)
        signer = PairedTableSigner(scheme)
        with pytest.raises(SignatureError):
            signer.sign(np.zeros(255, dtype=np.int64))

    def test_table_halves_gather_count(self):
        """Structural check: one table entry covers two symbols."""
        scheme = make_scheme(f=8, n=2)
        signer = PairedTableSigner(scheme)
        assert len(signer._tables) == scheme.n
        assert signer._tables[0].size == 1 << 16


class TestChunkedSignerEdgeCases:
    """PR 3 regression tests: degenerate page shapes round-trip exactly."""

    def test_empty_page_yields_canonical_empty_chunk(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=16)
        chunks = signer.chunk_signatures(b"")
        assert chunks == [(scheme.sign(b""), 0)]
        assert signer.sign(b"") == scheme.sign(b"")

    def test_one_symbol_page(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=16)
        page = b"\x7f\x01"   # one 16-bit symbol
        chunks = signer.chunk_signatures(page)
        assert [length for _, length in chunks] == [1]
        assert signer.sign(page) == scheme.sign(page)

    def test_exact_chunk_multiple_has_no_phantom_chunk(self):
        scheme = make_scheme(f=16, n=2)
        signer = ChunkedSigner(scheme, chunk_symbols=8)
        page = np.arange(24, dtype=np.int64)   # exactly 3 chunks
        chunks = signer.chunk_signatures(page)
        assert [length for _, length in chunks] == [8, 8, 8]
        assert signer.sign(page) == scheme.sign(page)


class TestPairedTableSharing:
    """PR 3 regression tests: 64 K-entry tables are built once, shared."""

    def test_two_signers_share_the_same_tables(self):
        scheme = make_scheme(f=8, n=2)
        first = PairedTableSigner(scheme)
        second = PairedTableSigner(scheme)
        for mine, theirs in zip(first._tables, second._tables):
            assert mine is theirs
        assert first.sign(b"shared") == scheme.sign(b"shared")

    def test_tables_are_read_only(self):
        scheme = make_scheme(f=8, n=2)
        table = PairedTableSigner(scheme)._tables[0]
        with pytest.raises(ValueError):
            table[0] = 1

    def test_distinct_schemes_get_distinct_tables(self):
        plain = PairedTableSigner(make_scheme(f=8, n=2))
        primitive = PairedTableSigner(make_scheme(f=8, n=2,
                                                  variant=PRIMITIVE))
        assert plain._tables[1] is not primitive._tables[1]
