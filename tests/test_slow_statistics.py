"""High-trial statistical tests (opt in with ``pytest --slow``).

The regular suite bounds collision experiments at ~10^5 trials; these
push to 10^6+ for tighter confidence intervals on the 2^-nf predictions
and run the certainty claims over much larger sample spaces.
"""

import numpy as np
import pytest

from repro.analysis import (
    prop1_sampled,
    prop2_random_pairs,
    prop4_adversarial_switches,
    prop4_switches,
)
from repro.sig import PRIMITIVE, STANDARD, make_scheme

pytestmark = pytest.mark.slow


class TestTightCollisionBounds:
    def test_prop2_million_trials(self):
        scheme = make_scheme(f=4, n=2)
        report = prop2_random_pairs(scheme, 8, trials=1_000_000, seed=1)
        predicted = report.predicted_rate
        sigma = (predicted * (1 - predicted) / report.trials) ** 0.5
        assert abs(report.observed_rate - predicted) < 3.5 * sigma

    def test_prop4_million_trials_both_variants(self):
        for variant in (STANDARD, PRIMITIVE):
            scheme = make_scheme(f=4, n=2, variant=variant)
            report = prop4_switches(scheme, 12, 3, trials=500_000, seed=2)
            predicted = report.predicted_rate
            sigma = (predicted * (1 - predicted) / report.trials) ** 0.5
            assert abs(report.observed_rate - predicted) < 4 * sigma

    def test_adversarial_separation_tight(self):
        standard = prop4_adversarial_switches(
            make_scheme(f=4, n=3, variant=STANDARD),
            page_symbols=14, block_symbols=5, move_distance=5,
            trials=500_000, seed=3,
        )
        primitive = prop4_adversarial_switches(
            make_scheme(f=4, n=3, variant=PRIMITIVE),
            page_symbols=14, block_symbols=5, move_distance=5,
            trials=500_000, seed=3,
        )
        # 2^-8 vs 2^-12: a 16x separation, measured within 20%.
        ratio = standard.observed_rate / primitive.observed_rate
        assert 8 < ratio < 32

    def test_prop1_certainty_large_sample(self):
        report = prop1_sampled(make_scheme(f=16, n=2), page_symbols=1000,
                               trials=20_000, seed=4)
        assert report.collisions == 0

    def test_signature_uniformity_chi_square(self):
        """Signature values of random pages are uniform: chi-square over
        the 256 values of a GF(2^4)/n=2 signature."""
        scheme = make_scheme(f=4, n=2)
        rng = np.random.default_rng(5)
        trials = 512_000
        counts = np.zeros(256, dtype=np.int64)
        for _ in range(trials):
            page = rng.integers(0, 16, 8).astype(np.int64)
            components = scheme.sign(page).components
            counts[components[0] * 16 + components[1]] += 1
        expected = trials / 256
        chi_square = float(((counts - expected) ** 2 / expected).sum())
        # 255 degrees of freedom: mean 255, sd ~22.6; accept within 5 sd.
        assert chi_square < 255 + 5 * 22.6
