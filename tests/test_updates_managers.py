"""Tests for the concurrency managers and interleaving harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.sig import make_scheme
from repro.updates import (
    ClientScript,
    CommitOutcome,
    SignatureManager,
    TimestampManager,
    TrustworthyManager,
    lost_update_race,
    run_schedule,
)


@pytest.fixture()
def sig_manager():
    return SignatureManager(make_scheme(f=16, n=2))


class TestSignatureManager:
    def test_read_commit_cycle(self, sig_manager):
        sig_manager.insert(1, b"v1")
        handle = sig_manager.read(1)
        assert sig_manager.commit(handle, b"v2") is CommitOutcome.APPLIED
        assert sig_manager.value(1) == b"v2"

    def test_pseudo_update_filtered(self, sig_manager):
        sig_manager.insert(1, b"same")
        handle = sig_manager.read(1)
        assert sig_manager.commit(handle, b"same") is CommitOutcome.PSEUDO
        assert sig_manager.value(1) == b"same"

    def test_conflict_on_stale_read(self, sig_manager):
        sig_manager.insert(1, b"base")
        stale = sig_manager.read(1)
        fresh = sig_manager.read(1)
        assert sig_manager.commit(fresh, b"newer") is CommitOutcome.APPLIED
        assert sig_manager.commit(stale, b"loser") is CommitOutcome.CONFLICT
        assert sig_manager.value(1) == b"newer"

    def test_missing_key(self, sig_manager):
        with pytest.raises(KeyNotFoundError):
            sig_manager.read(42)

    def test_zero_storage_overhead(self, sig_manager):
        assert sig_manager.storage_overhead_per_record == 0


class TestTimestampManager:
    def test_correct_but_no_pseudo_detection(self):
        manager = TimestampManager()
        manager.insert(1, b"same")
        handle = manager.read(1)
        # A same-value commit is applied (and bumps the version): the
        # timestamp scheme cannot see that nothing changed.
        assert manager.commit(handle, b"same") is CommitOutcome.APPLIED

    def test_conflict_detection(self):
        manager = TimestampManager()
        manager.insert(1, b"base")
        stale = manager.read(1)
        fresh = manager.read(1)
        assert manager.commit(fresh, b"new") is CommitOutcome.APPLIED
        assert manager.commit(stale, b"old") is CommitOutcome.CONFLICT

    def test_storage_overhead(self):
        assert TimestampManager.storage_overhead_per_record == 8


class TestTrustworthyManager:
    def test_always_applies(self):
        manager = TrustworthyManager()
        manager.insert(1, b"base")
        stale = manager.read(1)
        fresh = manager.read(1)
        assert manager.commit(fresh, b"first") is CommitOutcome.APPLIED
        assert manager.commit(stale, b"second") is CommitOutcome.APPLIED
        # The second commit silently destroyed the first.
        assert manager.value(1) == b"second"


class TestLostUpdateRace:
    def test_signature_manager_prevents_loss(self):
        result = lost_update_race(SignatureManager(make_scheme(f=16, n=2)))
        assert result.lost_updates == 0
        assert result.outcomes["A"] is CommitOutcome.APPLIED
        assert result.outcomes["B"] is CommitOutcome.CONFLICT
        assert result.final_values[1] == b"balance=100+A"

    def test_timestamp_manager_prevents_loss(self):
        result = lost_update_race(TimestampManager())
        assert result.lost_updates == 0
        assert result.outcomes["B"] is CommitOutcome.CONFLICT

    def test_trustworthy_manager_loses_update(self):
        result = lost_update_race(TrustworthyManager())
        assert result.lost_updates == 1
        assert result.final_values[1] == b"balance=100+B"  # A's +A is gone


class TestSchedules:
    def test_serial_schedule_all_apply(self, sig_manager):
        sig_manager.insert(1, b"v")
        scripts = [
            ClientScript("A", 1, lambda value: value + b"1"),
            ClientScript("B", 1, lambda value: value + b"2"),
        ]
        schedule = [("A", "read"), ("A", "commit"), ("B", "read"), ("B", "commit")]
        result = run_schedule(sig_manager, scripts, schedule)
        assert result.outcomes["A"] is CommitOutcome.APPLIED
        assert result.outcomes["B"] is CommitOutcome.APPLIED
        assert result.final_values[1] == b"v12"
        assert result.lost_updates == 0

    def test_commit_before_read_rejected(self, sig_manager):
        sig_manager.insert(1, b"v")
        scripts = [ClientScript("A", 1, lambda v: v)]
        with pytest.raises(ValueError):
            run_schedule(sig_manager, scripts, [("A", "commit")])

    def test_unknown_step_rejected(self, sig_manager):
        sig_manager.insert(1, b"v")
        scripts = [ClientScript("A", 1, lambda v: v)]
        with pytest.raises(ValueError):
            run_schedule(sig_manager, scripts, [("A", "write")])

    @given(st.integers(0, 2**32 - 1), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_no_lost_updates_under_random_interleavings(self, seed, n_clients):
        """Property: under ANY read/commit interleaving of n clients on
        one record, the signature manager never loses an applied update."""
        rng = np.random.default_rng(seed)
        manager = SignatureManager(make_scheme(f=16, n=2))
        manager.insert(1, b"base")
        scripts = [
            ClientScript(f"c{i}", 1,
                         (lambda tag: lambda value: value + tag)(
                             f"+{i}".encode()))
            for i in range(n_clients)
        ]
        # Random interleaving: every client reads once then commits once,
        # in a random global order with reads before their own commit.
        steps = []
        pending = {f"c{i}": ["read", "commit"] for i in range(n_clients)}
        while pending:
            name = str(rng.choice(list(pending)))
            steps.append((name, pending[name].pop(0)))
            if not pending[name]:
                del pending[name]
        result = run_schedule(manager, scripts, steps)
        assert result.lost_updates == 0
        # The final value must contain the tag of every applied commit
        # that was last (chain property): at minimum it ends with an
        # applied client's tag.
        applied = [name for name, outcome in result.outcomes.items()
                   if outcome is CommitOutcome.APPLIED]
        assert applied, "at least one commit must succeed"

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_trustworthy_loses_when_interleaved(self, seed):
        """The canonical interleaving always costs the trustworthy
        manager an update; the signature manager never."""
        trusting = lost_update_race(TrustworthyManager(), key=1)
        assert trusting.lost_updates == 1
        signing = lost_update_race(
            SignatureManager(make_scheme(f=8, n=2)), key=1
        )
        assert signing.lost_updates == 0
