"""Tests for Proposition 6 twisted schemes and the log-interpretation tuning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.gf import GF
from repro.sig import (
    TwistedScheme,
    log_interpretation_scheme,
    make_scheme,
    sign_log_interpreted_fast,
)


class TestTwistedConstruction:
    def test_phi_required(self, gf8):
        with pytest.raises(SignatureError):
            TwistedScheme(gf8, n=2)

    def test_phi_must_be_bijection(self, gf8):
        not_bijective = np.zeros(gf8.size, dtype=np.int64)
        with pytest.raises(SignatureError):
            TwistedScheme(gf8, n=2, phi=not_bijective)

    def test_phi_must_cover_field(self, gf8):
        too_short = np.arange(10, dtype=np.int64)
        with pytest.raises(SignatureError):
            TwistedScheme(gf8, n=2, phi=too_short)

    def test_identity_twist_matches_plain_components(self, gf8, rng):
        """phi = identity: same component values, distinct scheme id."""
        identity = np.arange(gf8.size, dtype=np.int64)
        twisted = TwistedScheme(gf8, n=2, phi=identity, phi_name="id")
        plain = make_scheme(f=8, n=2)
        page = rng.integers(0, 256, 40).astype(np.int64)
        assert twisted.sign(page).components == plain.sign(page).components
        assert twisted.scheme_id != plain.scheme_id


class TestLogInterpretation:
    def test_phi_is_antilog_with_sentinel(self, gf8):
        scheme = log_interpretation_scheme(gf8, n=2)
        for p in range(gf8.order):
            assert scheme.phi[p] == gf8.antilog(p)
        assert scheme.phi[gf8.order] == 0  # log(0) sentinel -> zero symbol

    def test_definition_matches_general_path(self, gf8, rng):
        """sig_phi(P) computed via the TwistedScheme machinery equals the
        definition applied by hand."""
        scheme = log_interpretation_scheme(gf8, n=2)
        plain = make_scheme(f=8, n=2)
        page = rng.integers(0, 256, 30).astype(np.int64)
        mapped = np.array([int(scheme.phi[p]) for p in page], dtype=np.int64)
        assert scheme.sign(page).components == plain.sign(mapped).components

    @given(st.lists(st.integers(0, 255), max_size=100))
    @settings(max_examples=60)
    def test_fast_path_matches_general(self, symbols):
        """The paper's tuned loop (no log lookups) gives the same result
        as phi-then-sign."""
        scheme = log_interpretation_scheme(GF(8), n=3)
        page = np.array(symbols, dtype=np.int64)
        assert sign_log_interpreted_fast(scheme, page) == scheme.sign(page)

    def test_fast_path_gf16(self, rng):
        scheme = log_interpretation_scheme(GF(16), n=2)
        page = rng.integers(0, 1 << 16, 200).astype(np.int64)
        assert sign_log_interpreted_fast(scheme, page) == scheme.sign(page)

    def test_sentinel_symbols_contribute_nothing(self):
        gf8 = GF(8)
        scheme = log_interpretation_scheme(gf8, n=2)
        sentinel_page = np.full(10, gf8.log0_sentinel, dtype=np.int64)
        assert scheme.sign(sentinel_page).is_zero

    def test_bytes_input(self):
        """Twisted schemes accept raw bytes like plain ones."""
        scheme = log_interpretation_scheme(GF(8), n=2)
        assert scheme.sign(b"hello") == scheme.sign(
            np.frombuffer(b"hello", dtype=np.uint8).astype(np.int64)
        )

    def test_page_bound_enforced_on_fast_path(self):
        gf8 = GF(8)
        scheme = log_interpretation_scheme(gf8, n=2)
        from repro.errors import PageTooLongError

        with pytest.raises(PageTooLongError):
            sign_log_interpreted_fast(
                scheme, np.zeros(gf8.order, dtype=np.int64)
            )
