"""Corruption localization: group-testing compound signatures (PR 10).

The load-bearing properties of :mod:`repro.sig.locate`:

* **exactness** -- for random volumes, random ``<= d`` damage sets, and
  random design seeds, :func:`~repro.sig.decode` condemns exactly the
  damaged pages (plain AND twisted schemes, GF(2^8) and GF(2^16)):
  a damaged page fails every one of its test groups, and the d-cover-
  free family guarantees no clean page does;
* **safety** -- damage beyond the ``d`` budget, or locators whose page
  counts drifted apart, decode to an explicit ``OVERFLOW`` verdict
  (or, rarely, the exact set) -- never a silently wrong page list;
* **warm maintenance** -- the incrementally folded locator equals the
  from-scratch fold after arbitrary journaled writes, growth included;
* **wiring** -- ``PageStore.scrub`` condemns through the locator and
  falls back on overflow; the ``uncovered`` field surfaces condemned
  pages beyond the certified map (the growth-tail gap); tree and
  locator anti-entropy land comparable ``sync.*`` accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.gf import GF
from repro.obs import MetricsRegistry, use_registry
from repro.sig import (
    CLEAN,
    LOCATED,
    OVERFLOW,
    LocateDesign,
    LocatorMap,
    SignatureMap,
    log_interpretation_scheme,
    make_scheme,
)
from repro.sig import decode as locate_decode
from repro.sig.incremental import IncrementalSignatureMap
from repro.sim.network import SimNetwork
from repro.store import PageStore
from repro.sync import Replica, sync_by_locator, sync_by_tree

PAGE_SYMBOLS = 8

SCHEMES = {
    "plain-gf16": make_scheme(f=16, n=2),
    "plain-gf8": make_scheme(f=8, n=3),
    "twisted-gf16": log_interpretation_scheme(GF(16), n=2),
    "twisted-gf8": log_interpretation_scheme(GF(8), n=3),
}


def _page_bytes(scheme) -> int:
    return PAGE_SYMBOLS * scheme.scheme_id.symbol_bytes


def _image(scheme, pages: int, seed: int) -> bytes:
    rng = np.random.RandomState(seed & 0xFFFFFFFF)
    return rng.bytes(pages * _page_bytes(scheme))


def _rot(scheme, image: bytes, pages, seed: int) -> bytes:
    """One random single-byte XOR per page: a <= 1-symbol change, so
    every damaged page's signature differs with certainty (Prop. 1)."""
    rng = np.random.RandomState(seed & 0xFFFFFFFF)
    page_bytes = _page_bytes(scheme)
    rotted = bytearray(image)
    for page in pages:
        offset = page * page_bytes + int(rng.randint(page_bytes))
        rotted[offset] ^= int(rng.randint(1, 256))
    return bytes(rotted)


def _locator(scheme, design, image: bytes) -> LocatorMap:
    return LocatorMap.from_map(
        design, SignatureMap.compute(scheme, image, PAGE_SYMBOLS))


# ----------------------------------------------------------------------
# The design: deterministic, seed-parameterized, d-cover-free
# ----------------------------------------------------------------------

class TestLocateDesign:
    def test_deterministic_for_seed(self):
        a = LocateDesign.build(65536, 4, 42)
        b = LocateDesign.build(65536, 4, 42)
        assert a == b
        pages = np.arange(65536, dtype=np.int64)
        assert np.array_equal(a.memberships(pages), b.memberships(pages))

    def test_seed_permutes_memberships(self):
        a = LocateDesign.build(4096, 4, 1)
        b = LocateDesign.build(4096, 4, 2)
        pages = np.arange(4096, dtype=np.int64)
        assert not np.array_equal(a.memberships(pages), b.memberships(pages))

    def test_cover_free_parameters(self):
        """q >= d(k-1)+1 makes the Kautz--Singleton code d-cover-free."""
        for capacity in (256, 4096, 65536, 1 << 20):
            for d in (1, 2, 4):
                design = LocateDesign.build(capacity, d, 0)
                if design.kind == "ks":
                    assert design.q >= d * (design.k - 1) + 1
                    assert design.q ** design.k >= capacity
                    assert design.group_count == design.q ** 2

    def test_distinct_pages_share_few_groups(self):
        """Two degree-<k codewords agree on < k columns, so any two
        pages share at most k-1 groups -- the cover-free core."""
        design = LocateDesign.build(4096, 4, 7)
        pages = np.arange(4096, dtype=np.int64)
        groups = design.memberships(pages)
        rng = np.random.RandomState(7)
        for _ in range(200):
            a, b = rng.choice(4096, size=2, replace=False)
            shared = len(set(groups[a]) & set(groups[b]))
            assert shared <= design.k - 1

    def test_identity_fallback_for_tiny_volumes(self):
        design = LocateDesign.build(4, 4, 0)
        assert design.kind == "identity"
        assert design.group_count == 4

    def test_sublinear_growth(self):
        """289 groups cover a million pages at d=4: O((d log N)^2)."""
        design = LocateDesign.build(1 << 20, 4, 0)
        assert design.group_count <= 512


# ----------------------------------------------------------------------
# Decode exactness (the hypothesis core)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("label", sorted(SCHEMES))
class TestDecodeExactness:
    @given(pages=st.integers(1, 96), damage_size=st.integers(0, 4),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_locates_exactly(self, label, pages, damage_size, seed):
        scheme = SCHEMES[label]
        design = LocateDesign.build(pages, 4, seed)
        image = _image(scheme, pages, seed)
        damage = sorted(
            np.random.RandomState(seed ^ 0xA5A5)
            .choice(pages, size=min(damage_size, pages),
                    replace=False).tolist())
        expected = _locator(scheme, design, image)
        actual = _locator(scheme, design,
                          _rot(scheme, image, damage, seed ^ 0x5A5A))
        verdict = locate_decode(expected, actual)
        if not damage:
            assert verdict.status == CLEAN
            assert verdict.pages == ()
        else:
            assert verdict.status == LOCATED
            assert list(verdict.pages) == damage

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_over_budget_never_lies(self, label, seed):
        """3d damaged pages: OVERFLOW or the exact set -- never wrong."""
        scheme = SCHEMES[label]
        pages = 96
        design = LocateDesign.build(pages, 2, seed)
        damage = sorted(np.random.RandomState(seed & 0xFFFFFFFF)
                        .choice(pages, size=6, replace=False).tolist())
        image = _image(scheme, pages, seed)
        expected = _locator(scheme, design, image)
        actual = _locator(scheme, design,
                          _rot(scheme, image, damage, ~seed))
        verdict = locate_decode(expected, actual)
        assert verdict.status == OVERFLOW \
            or list(verdict.pages) == damage


class TestDecodeSafety:
    def test_length_drift_overflows(self):
        """Locators over different page counts are not comparable page
        sets; decode reports OVERFLOW, not a guess."""
        scheme = SCHEMES["plain-gf16"]
        design = LocateDesign.build(64, 4, 0)
        a = _locator(scheme, design, _image(scheme, 48, 1))
        b = _locator(scheme, design, _image(scheme, 64, 1))
        verdict = locate_decode(a, b)
        assert verdict.status == OVERFLOW
        assert verdict.overflowed

    def test_design_mismatch_raises(self):
        scheme = SCHEMES["plain-gf16"]
        image = _image(scheme, 64, 1)
        a = _locator(scheme, LocateDesign.build(64, 4, 0), image)
        b = _locator(scheme, LocateDesign.build(64, 4, 1), image)
        with pytest.raises(SignatureError):
            locate_decode(a, b)

    def test_scheme_mismatch_raises(self):
        design = LocateDesign.build(64, 4, 0)
        a = _locator(SCHEMES["plain-gf16"], design,
                     _image(SCHEMES["plain-gf16"], 64, 1))
        b = _locator(SCHEMES["twisted-gf16"], design,
                     _image(SCHEMES["twisted-gf16"], 64, 1))
        with pytest.raises(SignatureError):
            locate_decode(a, b)


# ----------------------------------------------------------------------
# Warm incremental maintenance == from-scratch
# ----------------------------------------------------------------------

@pytest.mark.parametrize("label", sorted(SCHEMES))
class TestIncrementalLocator:
    @given(seed=st.integers(0, 2**31 - 1),
           ops=st.lists(st.tuples(st.integers(0, 127), st.integers(1, 6)),
                        min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_folded_equals_from_scratch(self, label, seed, ops):
        """After arbitrary journaled symbol-aligned writes (growth
        included), the warm locator equals a cold fold of the image."""
        scheme = SCHEMES[label]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        page_bytes = _page_bytes(scheme)
        replica = Replica("w", scheme, _image(scheme, 16, seed), page_bytes)
        replica.locator_map(d=2, seed=7)   # cache the warm locator
        rng = np.random.RandomState(seed & 0xFFFFFFFF)
        for symbol_offset, symbols in ops:
            content = rng.bytes(symbols * symbol_bytes)
            replica.write_at(symbol_offset * symbol_bytes, content)
            warm = replica.locator_map(d=2, seed=7)
            cold = LocatorMap.from_map(
                warm.design,
                SignatureMap.compute(scheme, bytes(replica.data),
                                     PAGE_SYMBOLS))
            assert warm == cold

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_growth_past_capacity_rederives(self, label, seed):
        """Growing past the design's capacity yields a fresh (larger)
        design rather than an out-of-range locator."""
        scheme = SCHEMES[label]
        page_bytes = _page_bytes(scheme)
        replica = Replica("g", scheme, _image(scheme, 8, seed), page_bytes)
        small = replica.locator_map(d=2, seed=3)
        replica.write_page(63, b"\x01" * page_bytes)   # 8 -> 64 pages
        grown = replica.locator_map(d=2, seed=3)
        assert grown.page_count == 64
        assert grown.design.page_capacity >= 64
        assert grown == LocatorMap.from_map(
            grown.design,
            SignatureMap.compute(scheme, bytes(replica.data), PAGE_SYMBOLS))
        assert small.design.page_capacity <= grown.design.page_capacity


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

class TestWireFormat:
    def test_roundtrip(self):
        scheme = SCHEMES["plain-gf16"]
        design = LocateDesign.build(64, 4, 9)
        locator = _locator(scheme, design, _image(scheme, 48, 2))
        back = LocatorMap.from_bytes(locator.to_bytes(), scheme)
        assert back == locator
        assert back.design == design

    def test_truncated_blob_raises(self):
        scheme = SCHEMES["plain-gf16"]
        locator = _locator(scheme, LocateDesign.build(64, 4, 9),
                           _image(scheme, 48, 2))
        blob = locator.to_bytes()
        with pytest.raises(SignatureError):
            LocatorMap.from_bytes(blob[:-3], scheme)
        with pytest.raises(SignatureError):
            LocatorMap.from_bytes(b"XX" + blob[2:], scheme)


# ----------------------------------------------------------------------
# SignatureMap.changed_pages: short-final-page pin
# ----------------------------------------------------------------------

class TestChangedPagesShortFinalPage:
    def test_rot_in_short_final_page_is_reported(self):
        """A volume whose final page is short: damage there must land
        on the final index, and equal maps must report nothing."""
        scheme = SCHEMES["plain-gf16"]
        page_bytes = _page_bytes(scheme)
        image = _image(scheme, 5, 3)[:5 * page_bytes - page_bytes // 2]
        a = SignatureMap.compute(scheme, image, PAGE_SYMBOLS)
        assert a.changed_pages(
            SignatureMap.compute(scheme, image, PAGE_SYMBOLS)) == []
        rotted = bytearray(image)
        rotted[-1] ^= 0x40
        b = SignatureMap.compute(scheme, bytes(rotted), PAGE_SYMBOLS)
        assert a.changed_pages(b) == [4]

    def test_tail_only_in_one_map_is_reported(self):
        scheme = SCHEMES["plain-gf16"]
        page_bytes = _page_bytes(scheme)
        image = _image(scheme, 4, 3)
        longer = image + b"\x07" * (page_bytes // 2)
        a = SignatureMap.compute(scheme, image, PAGE_SYMBOLS)
        b = SignatureMap.compute(scheme, longer, PAGE_SYMBOLS)
        assert a.changed_pages(b) == [4]
        assert b.changed_pages(a) == [4]


# ----------------------------------------------------------------------
# PageStore scrub wiring
# ----------------------------------------------------------------------

SCHEME16 = SCHEMES["plain-gf16"]
STORE_PAGE_BYTES = 64


def _store(tmp_path, pages: int = 32, **kwargs) -> PageStore:
    store = PageStore(SCHEME16, tmp_path / "s", **kwargs)
    for index in range(pages):
        store.write_page("v", index, bytes([index % 255 + 1])
                         * STORE_PAGE_BYTES, STORE_PAGE_BYTES)
    return store


class TestStoreScrubLocate:
    def test_locate_condemns_exactly(self, tmp_path):
        store = _store(tmp_path, locate_d=4)
        replica = store._require("v").replica
        store.signature_map("v")           # warm the certified state
        for page in (3, 17, 29):           # silent rot, unjournaled
            replica.data[page * STORE_PAGE_BYTES + 5] ^= 0x20
        with use_registry(MetricsRegistry()) as registry:
            report = store.scrub("v")
        assert report.method == "locate"
        assert not report.overflow
        assert report.condemned == (3, 17, 29)
        assert sorted(report.expected) == [3, 17, 29]
        assert report.uncovered == ()
        snapshot = registry.snapshot()
        assert snapshot["store.locate.scrubs"]["volume=v"] == 1
        assert snapshot["store.locate.located"][""] == 3

    def test_over_budget_falls_back_to_tree(self, tmp_path):
        store = _store(tmp_path, locate_d=2)
        replica = store._require("v").replica
        store.signature_map("v")
        damaged = list(range(0, 32, 2))    # 16 pages >> d=2
        for page in damaged:
            replica.data[page * STORE_PAGE_BYTES] ^= 0x01
        with use_registry(MetricsRegistry()) as registry:
            report = store.scrub("v")
        assert report.overflow
        assert report.method == "tree"
        assert list(report.condemned) == damaged
        assert registry.snapshot()["store.locate.overflows"][""] == 1

    def test_uncovered_pages_surface(self, tmp_path):
        """Regression for the growth-tail gap: condemned pages beyond
        the certified map must appear in ``uncovered`` (their expected
        signatures cannot be certified), not vanish from the report."""
        store = _store(tmp_path, pages=8)
        replica = store._require("v").replica
        full = replica.signature_map()
        # A stale checkpoint: the page list was truncated but the
        # recorded length still covers the whole image, so the fold
        # sees nothing to resize.  from_warm trusts the caller; the
        # mismatch must surface through scrub.
        stale = SignatureMap(SCHEME16, full.page_symbols,
                             list(full.signatures[:4]), full.total_symbols)
        replica._incremental = IncrementalSignatureMap(stale)
        replica._tree = None
        replica._tree_fanout = None
        replica._locator = None
        with use_registry(MetricsRegistry()) as registry:
            report = store.scrub("v")
        assert report.method == "map"
        assert report.condemned == (4, 5, 6, 7)
        assert report.uncovered == (4, 5, 6, 7)
        assert report.expected == {}       # nothing certified to offer
        assert registry.snapshot()["store.pages_uncovered"][""] == 4

    def test_clean_scrub_has_no_uncovered(self, tmp_path):
        store = _store(tmp_path, locate_d=4)
        report = store.scrub("v")
        assert report.condemned == ()
        assert report.uncovered == ()
        assert not report.overflow


# ----------------------------------------------------------------------
# Anti-entropy accounting and the locator protocol
# ----------------------------------------------------------------------

class TestSyncAccounting:
    def _pair(self, pages: int = 1024, divergent=(5, 230, 941)):
        image = _image(SCHEME16, pages, 11)
        page_bytes = _page_bytes(SCHEME16)
        source = Replica("src", SCHEME16, image, page_bytes)
        target = Replica("tgt", SCHEME16,
                         _rot(SCHEME16, image, divergent, 13), page_bytes)
        return image, source, target

    def test_tree_sync_emits_localization_counters(self):
        image, source, target = self._pair()
        with use_registry(MetricsRegistry()) as registry:
            sync_by_tree(source, target, SimNetwork())
        assert bytes(target.data) == image
        snapshot = registry.snapshot()
        assert snapshot["sync.pages_localized"]["protocol=tree"] == 3
        assert snapshot["sync.bytes_saved"]["protocol=tree"] > 0

    def test_locator_sync_converges_and_saves_bytes(self):
        image, source, target = self._pair()
        with use_registry(MetricsRegistry()) as registry:
            report = sync_by_locator(source, target, SimNetwork(),
                                     d=4, seed=0)
        assert bytes(target.data) == image
        snapshot = registry.snapshot()
        assert snapshot["sync.pages_localized"]["protocol=locator"] == 3
        assert snapshot["sync.locate.exchanges"][""] == 1
        assert "sync.locate.fallbacks" not in snapshot
        saved = snapshot["sync.bytes_saved"]["protocol=locator"]
        map_cost = 16 + 4 * 1024
        assert saved == map_cost - report.signature_bytes
        assert report.signature_bytes * 4 <= map_cost

    def test_locator_sync_overflow_falls_back(self):
        image, source, target = self._pair(
            divergent=tuple(range(0, 1024, 64)))   # 16 pages >> d=2
        with use_registry(MetricsRegistry()) as registry:
            sync_by_locator(source, target, SimNetwork(), d=2, seed=0)
        assert bytes(target.data) == image
        assert registry.snapshot()["sync.locate.fallbacks"][""] == 1
