"""Incremental O(|delta|) maintenance: journals, folds, warm trees.

The load-bearing property: after ANY sequence of journaled writes --
mixed sizes, page-straddling, overlapping, growth, truncation -- the
incrementally maintained :class:`~repro.sig.IncrementalSignatureMap` is
byte-identical to ``SignatureMap.compute`` over the mutated buffer, and
the warm :class:`~repro.sig.SignatureTree` updated through
``apply_leaf_deltas`` is node-identical to a from-scratch rebuild.
Verified for plain AND twisted schemes over GF(2^8) and GF(2^16)
(twisted schemes are the hard case: zero symbols are not
signature-neutral there, so growth padding must be signed explicitly).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.gf import GF
from repro.sig import (
    IncrementalSignatureMap,
    SignatureMap,
    SignatureTree,
    WriteJournal,
    aligned_span,
    get_batch_signer,
    log_interpretation_scheme,
    make_scheme,
)
from repro.sig.algebra import apply_update, delta_signature, shift

PAGE_SYMBOLS = 16
FANOUT = 4

SCHEMES = {
    "plain-gf16": make_scheme(f=16, n=2),
    "plain-gf8": make_scheme(f=8, n=4),
    "twisted-gf16": log_interpretation_scheme(GF(16), n=2),
    "twisted-gf8": log_interpretation_scheme(GF(8), n=2),
}


class TrackedBuffer:
    """A byte buffer whose writes feed a journal, like the capture sites."""

    def __init__(self, scheme, initial: bytes):
        self.scheme = scheme
        self.symbol_bytes = scheme.scheme_id.symbol_bytes
        self.data = bytearray(initial)
        self.inc = IncrementalSignatureMap.from_data(
            scheme, bytes(initial), PAGE_SYMBOLS
        )
        self.tree = SignatureTree.from_map(self.inc.map, FANOUT)

    def write(self, offset: int, content: bytes) -> None:
        end = offset + len(content)
        if end > len(self.data):
            # Grown space starts zero-filled and symbol-aligned, the
            # way RecordHeap._grow guarantees.
            grown = -(-end // self.symbol_bytes) * self.symbol_bytes
            self.data.extend(bytes(grown - len(self.data)))
        lo, hi = aligned_span(offset, len(content), self.symbol_bytes)
        hi = min(hi, len(self.data))
        before = bytes(self.data[lo:hi])
        self.data[offset:end] = content
        self.inc.journal.record(lo, before, bytes(self.data[lo:hi]))

    def truncate(self, new_symbols: int) -> None:
        new_length = new_symbols * self.symbol_bytes
        if new_length >= len(self.data):
            return
        tail = len(self.data) - new_length
        before = bytes(self.data[new_length:])
        self.data[new_length:] = bytes(tail)
        self.inc.journal.record(new_length, before, bytes(tail))
        del self.data[new_length:]

    def fold(self) -> None:
        report = self.inc.apply_journal(self.inc.journal,
                                        total_bytes=len(self.data))
        if report.resized:
            self.tree = SignatureTree.from_map(self.inc.map, FANOUT)
        else:
            self.tree.apply_leaf_deltas(report.leaf_deltas)

    def check(self) -> None:
        fresh = SignatureMap.compute(self.scheme, bytes(self.data),
                                     PAGE_SYMBOLS)
        assert self.inc.map.total_symbols == fresh.total_symbols
        assert self.inc.map.signatures == fresh.signatures
        fresh_tree = SignatureTree.from_map(fresh, FANOUT)
        assert len(self.tree.levels) == len(fresh_tree.levels)
        for warm_level, fresh_level in zip(self.tree.levels,
                                           fresh_tree.levels):
            assert [n.signature for n in warm_level] == \
                [n.signature for n in fresh_level]
            assert [n.symbols for n in warm_level] == \
                [n.symbols for n in fresh_level]


write_ops = st.tuples(
    st.just("write"),
    st.integers(0, 50 * PAGE_SYMBOLS * 2),   # byte offset, page-straddling
    st.binary(min_size=1, max_size=3 * PAGE_SYMBOLS * 2),
)
truncate_ops = st.tuples(st.just("truncate"), st.integers(1, 60))
fold_ops = st.tuples(st.just("fold"))
op_lists = st.lists(st.one_of(write_ops, truncate_ops, fold_ops),
                    max_size=14)


@pytest.mark.parametrize("name", sorted(SCHEMES))
@settings(max_examples=25, deadline=None)
@given(initial=st.binary(min_size=2, max_size=6 * PAGE_SYMBOLS * 2),
       ops=op_lists)
def test_any_write_sequence_keeps_map_and_tree_exact(name, initial, ops):
    scheme = SCHEMES[name]
    symbol_bytes = scheme.scheme_id.symbol_bytes
    aligned = (len(initial) // symbol_bytes) * symbol_bytes
    buffer = TrackedBuffer(scheme, initial[:max(symbol_bytes, aligned)])
    for op in ops:
        if op[0] == "write":
            buffer.write(op[1], op[2])
        elif op[0] == "truncate":
            buffer.truncate(op[1])
        else:
            buffer.fold()
    buffer.fold()
    buffer.check()


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_overlapping_writes_telescope(name):
    """Re-journaling the same region repeatedly folds to the final state."""
    scheme = SCHEMES[name]
    rng = np.random.default_rng(9)
    size = 10 * PAGE_SYMBOLS * scheme.scheme_id.symbol_bytes
    buffer = TrackedBuffer(
        scheme, rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
    )
    for step in range(20):
        offset = int(rng.integers(0, size - 40))
        content = rng.integers(0, 256, size=int(rng.integers(1, 40)),
                               dtype=np.uint8).tobytes()
        buffer.write(offset, content)
    buffer.fold()
    buffer.check()


# ----------------------------------------------------------------------
# The fused delta kernel (satellite: linearity fast path)
# ----------------------------------------------------------------------

def test_fused_delta_equals_explicit_on_plain_schemes():
    """Plain schemes are linear in raw symbols: one sign of b XOR a
    equals the explicit sign-both-then-XOR path, for every region."""
    rng = np.random.default_rng(3)
    for name in ("plain-gf16", "plain-gf8"):
        scheme = SCHEMES[name]
        assert scheme.is_linear
        for length in (2, 31, 64):
            size = length * scheme.scheme_id.symbol_bytes
            before = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            after = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            fused = delta_signature(scheme, before, after)
            explicit = scheme.sign(before) ^ scheme.sign(after)
            assert fused == explicit


def test_twisted_schemes_take_the_explicit_path():
    """Twisted schemes are NOT raw-symbol linear; the explicit fallback
    still satisfies Proposition 3 exactly."""
    rng = np.random.default_rng(4)
    for name in ("twisted-gf16", "twisted-gf8"):
        scheme = SCHEMES[name]
        assert not scheme.is_linear
        symbol_bytes = scheme.scheme_id.symbol_bytes
        page = rng.integers(0, 256, size=48 * symbol_bytes,
                            dtype=np.uint8).tobytes()
        position = 10
        at = position * symbol_bytes
        width = 8 * symbol_bytes
        replacement = rng.integers(0, 256, size=width,
                                   dtype=np.uint8).tobytes()
        updated = page[:at] + replacement + page[at + width:]
        assert apply_update(
            scheme, scheme.sign(page), page[at:at + width], replacement,
            position,
        ) == scheme.sign(updated)


# ----------------------------------------------------------------------
# Engine batch kernels: fast/slow/uniform paths agree
# ----------------------------------------------------------------------

def _regions_for(scheme, rng, sizes):
    symbol_bytes = scheme.scheme_id.symbol_bytes
    page_bytes = PAGE_SYMBOLS * symbol_bytes
    buffer = rng.integers(0, 256, size=12 * page_bytes,
                          dtype=np.uint8).tobytes()
    regions = []
    mutated = bytearray(buffer)
    for index, symbols in enumerate(sizes):
        page = index % 12
        at = page * page_bytes + (index % 3) * symbol_bytes
        width = symbols * symbol_bytes
        before = bytes(mutated[at:at + width])
        after = rng.integers(0, 256, size=width, dtype=np.uint8).tobytes()
        mutated[at:at + width] = after
        regions.append((page, (at - page * page_bytes) // symbol_bytes,
                        before, after))
    return buffer, bytes(mutated), regions


@pytest.mark.parametrize("sizes", [
    [4] * 9,                 # uniform widths: the reshape fast path
    [1, 7, 3, 12, 5, 2],     # ragged widths: the packed-span path
])
def test_apply_deltas_byte_and_array_regions_agree(sizes):
    scheme = SCHEMES["plain-gf16"]
    signer = get_batch_signer(scheme)
    rng = np.random.default_rng(11)
    buffer, mutated, regions = _regions_for(scheme, rng, sizes)

    map_bytes = SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS)
    net_bytes = signer.apply_deltas(map_bytes, regions)

    # Symbol-array regions are ineligible for the concatenation fast
    # path and exercise the per-region fallback.
    array_regions = [
        (page, position, scheme.to_symbols(before), scheme.to_symbols(after))
        for page, position, before, after in regions
    ]
    map_arrays = SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS)
    net_arrays = signer.apply_deltas(map_arrays, array_regions)

    expected = SignatureMap.compute(scheme, mutated, PAGE_SYMBOLS)
    assert map_bytes.signatures == expected.signatures
    assert map_arrays.signatures == expected.signatures
    assert net_bytes == net_arrays


def test_delta_signature_many_matches_shifted_single_deltas():
    scheme = SCHEMES["twisted-gf16"]
    signer = get_batch_signer(scheme)
    rng = np.random.default_rng(12)
    regions = []
    for position in (0, 3, 17):
        width = int(rng.integers(1, 9)) * 2
        before = rng.integers(0, 256, size=width, dtype=np.uint8).tobytes()
        after = rng.integers(0, 256, size=width, dtype=np.uint8).tobytes()
        regions.append((position, before, after))
    produced = signer.delta_signature_many(regions)
    for (position, before, after), sig in zip(regions, produced):
        assert sig == shift(scheme, delta_signature(scheme, before, after),
                            position)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def test_journal_rejects_misaligned_and_mismatched_regions():
    journal = WriteJournal(symbol_bytes=2)
    with pytest.raises(SignatureError):
        journal.record(1, b"ab", b"cd")          # odd offset
    with pytest.raises(SignatureError):
        journal.record(0, b"abc", b"abc")        # odd length
    with pytest.raises(SignatureError):
        journal.record(0, b"ab", b"abcd")        # length mismatch
    journal.record(0, b"ab", b"ab")
    assert len(journal) == 1 and journal.byte_count == 2


def test_aligned_span_and_bounds():
    assert aligned_span(3, 5, 2) == (2, 8)
    assert aligned_span(4, 4, 2) == (4, 8)
    assert aligned_span(0, 0, 2) == (0, 0)
    with pytest.raises(SignatureError):
        aligned_span(-1, 4, 2)


def test_apply_deltas_rejects_out_of_range_regions():
    scheme = SCHEMES["plain-gf16"]
    signer = get_batch_signer(scheme)
    buffer = bytes(8 * PAGE_SYMBOLS * 2)
    sig_map = SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS)
    with pytest.raises(SignatureError):
        signer.apply_deltas(sig_map, [(99, 0, b"ab", b"cd")])
    with pytest.raises(SignatureError):
        signer.apply_deltas(
            sig_map, [(0, PAGE_SYMBOLS - 1, b"abcd", b"wxyz")]
        )


def test_apply_leaf_deltas_rejects_foreign_and_out_of_range():
    scheme = SCHEMES["plain-gf16"]
    other = SCHEMES["plain-gf8"]
    buffer = bytes(range(256)) * 4
    tree = SignatureTree.from_map(
        SignatureMap.compute(scheme, buffer, PAGE_SYMBOLS), FANOUT
    )
    delta = delta_signature(scheme, b"abcd", b"wxyz")
    with pytest.raises(SignatureError):
        tree.apply_leaf_deltas({99: delta})
    foreign = delta_signature(other, b"abcd", b"wxyz")
    with pytest.raises(SignatureError):
        tree.apply_leaf_deltas({0: foreign})
