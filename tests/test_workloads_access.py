"""Tests for the access-pattern generators and a skewed-contention study."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sdds import LHFile, UpdateStatus
from repro.sig import make_scheme
from repro.workloads import (
    hot_set_fraction,
    make_records,
    mixed_workload,
    zipf_indices,
)


class TestZipf:
    def test_range(self):
        rng = np.random.default_rng(0)
        indices = zipf_indices(50, 2000, 1.2, rng)
        assert indices.min() >= 0
        assert indices.max() < 50

    def test_zero_skew_is_roughly_uniform(self):
        rng = np.random.default_rng(1)
        indices = zipf_indices(10, 50_000, 0.0, rng)
        counts = np.bincount(indices, minlength=10)
        assert counts.min() > 4000
        assert counts.max() < 6000

    def test_skew_orders_frequencies(self):
        rng = np.random.default_rng(2)
        indices = zipf_indices(20, 100_000, 1.0, rng)
        counts = np.bincount(indices, minlength=20)
        assert counts[0] > counts[5] > counts[19]

    def test_higher_skew_hotter_head(self):
        rng = np.random.default_rng(3)
        mild = zipf_indices(100, 20_000, 0.5, rng)
        hard = zipf_indices(100, 20_000, 1.5, rng)
        assert (hard < 5).mean() > (mild < 5).mean()

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ReproError):
            zipf_indices(0, 10, 1.0, rng)
        with pytest.raises(ReproError):
            zipf_indices(10, 10, -1.0, rng)


class TestMixedWorkload:
    def test_kinds_and_shares(self):
        rng = np.random.default_rng(5)
        operations = mixed_workload(100, 10_000, rng, read_fraction=0.6,
                                    pseudo_fraction=0.5)
        kinds = {"read": 0, "update": 0, "pseudo_update": 0}
        for op in operations:
            kinds[op.kind] += 1
        assert 0.55 < kinds["read"] / len(operations) < 0.65
        updates = kinds["update"] + kinds["pseudo_update"]
        assert 0.4 < kinds["pseudo_update"] / updates < 0.6

    def test_hot_set_fraction(self):
        rng = np.random.default_rng(6)
        operations = mixed_workload(1000, 20_000, rng, skew=1.2)
        assert hot_set_fraction(operations, 10) > \
            hot_set_fraction(operations, 10) * 0  # sanity
        assert hot_set_fraction(operations, 10) > 0.25
        assert hot_set_fraction([], 5) == 0.0

    def test_fraction_validation(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ReproError):
            mixed_workload(10, 5, rng, read_fraction=2.0)


class TestSkewedContentionStudy:
    """Conflict rates under skew: the optimistic scheme's stress case."""

    def run_contended(self, skew, seed=8, clients=4, rounds=400):
        scheme = make_scheme(f=16, n=2)
        file = LHFile(scheme, capacity_records=128)
        records = make_records(50, 64, seed=seed)
        loader = file.client("loader")
        for record in records:
            loader.insert(record)
        keys = [record.key for record in records]
        workers = [file.client(f"w{i}") for i in range(clients)]
        rng = np.random.default_rng(seed)
        indices = zipf_indices(len(keys), rounds, skew, rng)
        conflicts = applied = pseudo = 0
        # Each round: every worker reads the same hot record, then all
        # commit -- only the first wins, the rest must roll back.
        for round_start in range(0, rounds, clients):
            batch = indices[round_start:round_start + clients]
            handles = []
            for worker, index in zip(workers, batch):
                key = keys[int(index)]
                value = worker.search(key).record.value
                handles.append((worker, key, value))
            for i, (worker, key, value) in enumerate(handles):
                after = bytes([i + 1]) * 64
                result = worker.update_normal(key, value, after)
                if result.status == UpdateStatus.APPLIED:
                    applied += 1
                elif result.status == UpdateStatus.CONFLICT:
                    conflicts += 1
                else:
                    pseudo += 1
        return applied, conflicts, pseudo

    def test_no_lost_updates_at_any_skew(self):
        for skew in (0.0, 1.5):
            applied, conflicts, pseudo = self.run_contended(skew)
            assert applied > 0
            # Every commit accounted for: applied, visibly rolled back,
            # or filtered as a pseudo-update -- no silent loss.
            assert applied + conflicts + pseudo == 400

    def test_skew_increases_conflicts(self):
        _, uniform_conflicts, _ = self.run_contended(0.0)
        _, hot_conflicts, _ = self.run_contended(2.0)
        assert hot_conflicts > uniform_conflicts
