"""Tests for the access-pattern generators and a skewed-contention study."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sdds import LHFile, UpdateStatus
from repro.sig import make_scheme
from repro.workloads import (
    hot_set_fraction,
    make_records,
    mixed_workload,
    poisson_arrivals,
    shifting_hotspot_indices,
    zipf_indices,
)


class TestZipf:
    def test_range(self):
        rng = np.random.default_rng(0)
        indices = zipf_indices(50, 2000, 1.2, rng)
        assert indices.min() >= 0
        assert indices.max() < 50

    def test_zero_skew_is_roughly_uniform(self):
        rng = np.random.default_rng(1)
        indices = zipf_indices(10, 50_000, 0.0, rng)
        counts = np.bincount(indices, minlength=10)
        assert counts.min() > 4000
        assert counts.max() < 6000

    def test_skew_orders_frequencies(self):
        rng = np.random.default_rng(2)
        indices = zipf_indices(20, 100_000, 1.0, rng)
        counts = np.bincount(indices, minlength=20)
        assert counts[0] > counts[5] > counts[19]

    def test_higher_skew_hotter_head(self):
        rng = np.random.default_rng(3)
        mild = zipf_indices(100, 20_000, 0.5, rng)
        hard = zipf_indices(100, 20_000, 1.5, rng)
        assert (hard < 5).mean() > (mild < 5).mean()

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ReproError):
            zipf_indices(0, 10, 1.0, rng)
        with pytest.raises(ReproError):
            zipf_indices(10, 10, -1.0, rng)


class TestMixedWorkload:
    def test_kinds_and_shares(self):
        rng = np.random.default_rng(5)
        operations = mixed_workload(100, 10_000, rng, read_fraction=0.6,
                                    pseudo_fraction=0.5)
        kinds = {"read": 0, "update": 0, "pseudo_update": 0}
        for op in operations:
            kinds[op.kind] += 1
        assert 0.55 < kinds["read"] / len(operations) < 0.65
        updates = kinds["update"] + kinds["pseudo_update"]
        assert 0.4 < kinds["pseudo_update"] / updates < 0.6

    def test_hot_set_fraction(self):
        rng = np.random.default_rng(6)
        operations = mixed_workload(1000, 20_000, rng, skew=1.2)
        assert hot_set_fraction(operations, 10) > \
            hot_set_fraction(operations, 10) * 0  # sanity
        assert hot_set_fraction(operations, 10) > 0.25
        assert hot_set_fraction([], 5) == 0.0

    def test_fraction_validation(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ReproError):
            mixed_workload(10, 5, rng, read_fraction=2.0)


class TestSkewedContentionStudy:
    """Conflict rates under skew: the optimistic scheme's stress case."""

    def run_contended(self, skew, seed=8, clients=4, rounds=400):
        scheme = make_scheme(f=16, n=2)
        file = LHFile(scheme, capacity_records=128)
        records = make_records(50, 64, seed=seed)
        loader = file.client("loader")
        for record in records:
            loader.insert(record)
        keys = [record.key for record in records]
        workers = [file.client(f"w{i}") for i in range(clients)]
        rng = np.random.default_rng(seed)
        indices = zipf_indices(len(keys), rounds, skew, rng)
        conflicts = applied = pseudo = 0
        # Each round: every worker reads the same hot record, then all
        # commit -- only the first wins, the rest must roll back.
        for round_start in range(0, rounds, clients):
            batch = indices[round_start:round_start + clients]
            handles = []
            for worker, index in zip(workers, batch):
                key = keys[int(index)]
                value = worker.search(key).record.value
                handles.append((worker, key, value))
            for i, (worker, key, value) in enumerate(handles):
                after = bytes([i + 1]) * 64
                result = worker.update_normal(key, value, after)
                if result.status == UpdateStatus.APPLIED:
                    applied += 1
                elif result.status == UpdateStatus.CONFLICT:
                    conflicts += 1
                else:
                    pseudo += 1
        return applied, conflicts, pseudo

    def test_no_lost_updates_at_any_skew(self):
        for skew in (0.0, 1.5):
            applied, conflicts, pseudo = self.run_contended(skew)
            assert applied > 0
            # Every commit accounted for: applied, visibly rolled back,
            # or filtered as a pseudo-update -- no silent loss.
            assert applied + conflicts + pseudo == 400

    def test_skew_increases_conflicts(self):
        _, uniform_conflicts, _ = self.run_contended(0.0)
        _, hot_conflicts, _ = self.run_contended(2.0)
        assert hot_conflicts > uniform_conflicts


class TestPoissonArrivals:
    def test_monotone_and_after_start(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(100.0, 5000, rng, start=2.0)
        assert times.shape == (5000,)
        assert times[0] > 2.0
        assert np.all(np.diff(times) > 0)

    def test_mean_gap_matches_rate(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(250.0, 100_000, rng)
        gaps = np.diff(times)
        assert np.mean(gaps) == pytest.approx(1.0 / 250.0, rel=0.02)

    def test_open_loop_rate_is_load_independent(self):
        # The schedule is precomputed: the same rng yields the same
        # arrivals no matter what the serving side does with them.
        first = poisson_arrivals(50.0, 1000, np.random.default_rng(7))
        second = poisson_arrivals(50.0, 1000, np.random.default_rng(7))
        assert np.array_equal(first, second)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ReproError):
            poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ReproError):
            poisson_arrivals(10.0, -1, rng)
        assert poisson_arrivals(10.0, 0, rng).shape == (0,)


class TestShiftingHotspot:
    def test_range(self):
        rng = np.random.default_rng(0)
        indices = shifting_hotspot_indices(80, 5000, 1.1, rng, period=500)
        assert indices.min() >= 0
        assert indices.max() < 80

    def test_hot_set_rotates_between_periods(self):
        rng = np.random.default_rng(2)
        n_items, period = 1000, 2000
        indices = shifting_hotspot_indices(n_items, 2 * period, 1.4, rng,
                                           period=period)
        first = indices[:period]
        second = indices[period:]

        def hot_set(window, top=10):
            counts = np.bincount(window, minlength=n_items)
            return set(np.argsort(counts)[-top:].tolist())

        # The shift moves the head of the Zipf distribution: the two
        # periods' hottest keys must be (mostly) disjoint.
        assert len(hot_set(first) & hot_set(second)) <= 2

    def test_shift_step_of_zero_keeps_hotspot_fixed(self):
        rng = np.random.default_rng(3)
        indices = shifting_hotspot_indices(100, 4000, 1.4, rng,
                                           period=1000, step=0)
        ranks = zipf_indices(100, 4000, 1.4, np.random.default_rng(3))
        assert np.array_equal(indices, ranks)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ReproError):
            shifting_hotspot_indices(10, 5, 1.0, rng, period=0)
        with pytest.raises(ReproError):
            shifting_hotspot_indices(10, 5, 1.0, rng, step=-1)
