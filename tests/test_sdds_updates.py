"""Tests for the Section 2.2 update protocol over the SDDS (client side)."""

import random

from repro.sdds import LHFile, Record, UpdateOutcome, UpdateStatus
from repro.sdds.messages import UPDATE
from repro.sig import make_scheme


def build_file(store_signatures=False, n_records=120, value_bytes=100, seed=2):
    scheme = make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=50,
                  store_signatures=store_signatures)
    client = file.client()
    keys = random.Random(seed).sample(range(1_000_000), n_records)
    for key in keys:
        client.insert(Record(key, bytes([key % 256]) * value_bytes))
    return file, client, keys


class TestNormalUpdates:
    def test_pseudo_update_zero_traffic(self):
        """'Such updates terminate at the client' -- zero messages."""
        file, client, keys = build_file()
        value = client.search(keys[0]).record.value
        net_before = file.network.stats.messages
        result = client.update_normal(keys[0], value, value)
        assert result.status == UpdateStatus.PSEUDO
        assert file.network.stats.messages == net_before
        assert result.messages == 0
        assert result.bytes == 0

    def test_true_update_applied(self):
        file, client, keys = build_file()
        value = client.search(keys[0]).record.value
        new_value = b"N" * len(value)
        result = client.update_normal(keys[0], value, new_value)
        assert result.status == UpdateStatus.APPLIED
        assert client.search(keys[0]).record.value == new_value

    def test_true_update_ships_sb_not_rb(self):
        """The update message carries the after-image plus a 4 B
        signature -- never the before-image."""
        file, client, keys = build_file()
        value = client.search(keys[0]).record.value
        net_before = file.network.stats.bytes
        client.update_normal(keys[0], value, b"M" * len(value))
        shipped = file.network.stats.bytes - net_before
        # After-image + signature + header + ack: far below 2x record size.
        assert shipped < 2 * len(value)

    def test_conflict_detected_and_rolled_back(self):
        """Two clients read the same record; the slower commit rolls
        back instead of overriding (no lost updates)."""
        file, fast, keys = build_file()
        slow = file.client("slow")
        key = keys[0]
        before_fast = fast.search(key).record.value
        before_slow = slow.search(key).record.value
        assert before_fast == before_slow
        assert fast.update_normal(
            key, before_fast, b"F" * len(before_fast)
        ).status == UpdateStatus.APPLIED
        result = slow.update_normal(key, before_slow, b"S" * len(before_slow))
        assert result.status == UpdateStatus.CONFLICT
        # The fast client's update survived.
        assert fast.search(key).record.value == b"F" * len(before_fast)

    def test_redo_after_conflict_succeeds(self):
        """The paper: 'The application may read R again and redo the
        update.'"""
        file, a, keys = build_file()
        b = file.client("b")
        key = keys[0]
        value = a.search(key).record.value
        b_value = b.search(key).record.value
        a.update_normal(key, value, b"A" * len(value))
        assert b.update_normal(key, b_value, b"B" * len(value)).status == \
            UpdateStatus.CONFLICT
        fresh = b.search(key).record.value
        assert b.update_normal(key, fresh, b"B" * len(value)).status == \
            UpdateStatus.APPLIED

    def test_missing_record(self):
        file, client, keys = build_file(n_records=10)
        result = client.update_normal(999_999_999 % (1 << 32), b"x", b"y")
        assert result.status == UpdateStatus.MISSING


class TestBlindUpdates:
    def test_pseudo_blind_ships_only_signatures(self):
        """A blind pseudo-update exchanges key + 4 B signature -- the
        multi-MB surveillance image never crosses the network."""
        file, client, keys = build_file(value_bytes=1000)
        current = client.search(keys[0]).record.value
        net_before = file.network.stats.bytes
        result = client.update_blind(keys[0], current)
        shipped = file.network.stats.bytes - net_before
        assert result.status == UpdateStatus.PSEUDO
        assert shipped < 100  # headers + key + one 4 B signature

    def test_true_blind_update_applied(self):
        file, client, keys = build_file()
        new_value = b"Z" * 100
        result = client.update_blind(keys[0], new_value)
        assert result.status == UpdateStatus.APPLIED
        assert client.search(keys[0]).record.value == new_value

    def test_blind_update_missing_key(self):
        file, client, _keys = build_file(n_records=10)
        result = client.update_blind(123_456_789, b"x")
        assert result.status == UpdateStatus.MISSING

    def test_blind_conflict_window(self):
        """A concurrent update between the signature fetch and the
        conditional write is caught by the server-side re-check."""
        file, client, keys = build_file()
        key = keys[0]
        server, _ = client._locate(key, "probe", 0)
        current = client.search(key).record.value
        new_value = b"Q" * len(current)
        sig_now = server.record_signature(key)
        # Interleave: another writer changes the record first.
        server.conditional_update(key, b"I" * len(current), sig_now)
        outcome = server.conditional_update(key, new_value, sig_now)
        assert outcome is UpdateOutcome.CONFLICT


class TestStoredSignatureVariant:
    def test_signatures_stored_on_insert(self):
        file, client, keys = build_file(store_signatures=True)
        server, _ = client._locate(keys[0], "probe", 0)
        assert keys[0] in server._stored_sigs

    def test_server_skips_computation_on_sig_request(self):
        """'The server simply extracts S from R, instead of dynamically
        calculating it.'"""
        file, client, keys = build_file(store_signatures=True)
        server, _ = client._locate(keys[0], "probe", 0)
        computations_before = server.stats.sig_computations
        client.update_blind(keys[0], client.search(keys[0]).record.value)
        assert server.stats.sig_computations == computations_before

    def test_stored_signature_stays_current(self):
        file, client, keys = build_file(store_signatures=True)
        new_value = b"W" * 100
        client.update_blind(keys[0], new_value)
        server, _ = client._locate(keys[0], "probe", 0)
        assert server._stored_sigs[keys[0]] == \
            file.scheme.sign(new_value, strict=False)

    def test_stored_signatures_move_on_split(self):
        scheme = make_scheme(f=16, n=2)
        file = LHFile(scheme, capacity_records=10, store_signatures=True)
        client = file.client()
        keys = random.Random(1).sample(range(100_000), 100)
        for key in keys:
            client.insert(Record(key, bytes([key % 256]) * 50))
        assert file.bucket_count > 1
        for key in keys:
            server, _ = client._locate(key, "probe", 0)
            assert server._stored_sigs.get(key) == \
                file.scheme.sign(server.search(key).value, strict=False)

    def test_storage_overhead_is_4_bytes(self):
        file, _client, _keys = build_file(store_signatures=True)
        assert file.scheme.signature_bytes == 4


class TestServerStats:
    def test_counters_track_outcomes(self):
        file, client, keys = build_file()
        value = client.search(keys[0]).record.value
        client.update_normal(keys[0], value, b"1" * len(value))
        client.update_normal(keys[0], value, b"2" * len(value))  # stale: conflict
        applied = sum(s.stats.updates_applied for s in file.servers)
        rejected = sum(s.stats.updates_rejected for s in file.servers)
        assert applied == 1
        assert rejected == 1

    def test_update_message_kind_accounted(self):
        file, client, keys = build_file()
        value = client.search(keys[0]).record.value
        client.update_normal(keys[0], value, b"3" * len(value))
        assert file.network.stats.by_kind[UPDATE] == 1
