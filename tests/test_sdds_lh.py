"""Tests for LH* addressing mathematics and the LH* file."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SDDSError
from repro.sdds import (
    ClientImage,
    FileState,
    LHAddressing,
    LHFile,
    Record,
)
from repro.sig import make_scheme


class TestHashFamily:
    def test_h0_is_mod_n(self):
        addressing = LHAddressing(initial_buckets=4)
        for key in range(20):
            assert addressing.h(0, key) == key % 4

    def test_level_doubles_range(self):
        addressing = LHAddressing()
        assert addressing.h(3, 13) == 13 % 8

    def test_consistency_between_levels(self):
        """h_{i+1}(c) is either h_i(c) or h_i(c) + N*2^i -- the property
        linear hashing splits rely on."""
        addressing = LHAddressing()
        for key in range(1000):
            for level in range(5):
                low = addressing.h(level, key)
                high = addressing.h(level + 1, key)
                assert high in (low, low + (1 << level))

    def test_negative_level_rejected(self):
        with pytest.raises(SDDSError):
            LHAddressing().h(-1, 5)

    def test_bucket_count(self):
        addressing = LHAddressing()
        assert addressing.bucket_count(0, 0) == 1
        assert addressing.bucket_count(3, 5) == 13


class TestFileState:
    def test_split_advances_pointer(self):
        addressing = LHAddressing()
        state = FileState()
        state.after_split(addressing)
        assert (state.level, state.pointer) == (1, 0)  # 2^0 buckets: wraps

    def test_pointer_wraps_to_next_level(self):
        addressing = LHAddressing()
        state = FileState(level=1, pointer=1)
        state.after_split(addressing)
        assert (state.level, state.pointer) == (2, 0)


class TestClientAddressing:
    def test_fresh_image_goes_to_h0(self):
        addressing = LHAddressing()
        assert addressing.client_address(12345, 0, 0) == 0

    def test_image_ahead_of_pointer_uses_next_level(self):
        addressing = LHAddressing()
        # image (i'=1, n'=1): addresses below the pointer rehash at i'+1.
        key = 4  # h_1(4) = 0 < n' = 1, so h_2(4) = 0
        assert addressing.client_address(key, 1, 1) == addressing.h(2, key)

    def test_correct_with_exact_image(self):
        """With the true (i, n), the client address is the true address."""
        addressing = LHAddressing()
        state = FileState()
        # Simulate a sequence of splits and verify addresses stay in range.
        for _ in range(10):
            state.after_split(addressing)
        buckets = addressing.bucket_count(state.level, state.pointer)
        for key in range(500):
            address = addressing.client_address(key, state.level, state.pointer)
            assert 0 <= address < buckets


class TestServerForwarding:
    def test_owned_key_not_forwarded(self):
        addressing = LHAddressing()
        assert addressing.server_forward(8, bucket_id=0, bucket_level=3) is None

    def test_misdirected_key_forwarded_conservatively(self):
        """The [LNS96] correction: when h_{j-1} gives an address between
        this bucket and h_j, forward there first (the bucket may not have
        split as far as h_j assumes)."""
        addressing = LHAddressing()
        target = addressing.server_forward(5, bucket_id=0, bucket_level=3)
        assert target == addressing.h(2, 5) == 1

    def test_forwarding_reaches_owner_within_two_hops(self):
        """Simulate a consistent LH* file state and check the forwarding
        chain converges in <= 2 hops from every *legitimate* client
        guess -- i.e. from the address computed out of any image that is
        not ahead of the true file state (client images never are)."""
        addressing = LHAddressing()
        level, pointer = 3, 3  # buckets 0..10
        buckets = addressing.bucket_count(level, pointer)
        levels = [
            level + 1 if (b < pointer or b >= (1 << level)) else level
            for b in range(buckets)
        ]
        images = [
            (i, n)
            for i in range(level + 1)
            for n in range(0, (1 << i) if i < level else pointer + 1)
        ]
        for key in range(500):
            owner = addressing.client_address(key, level, pointer)
            for image_level, image_pointer in images:
                start = addressing.client_address(key, image_level, image_pointer)
                assert start < buckets, "stale image guessed a nonexistent bucket"
                current, hops = start, 0
                while True:
                    target = addressing.server_forward(
                        key, current, levels[current]
                    )
                    if target is None:
                        break
                    current, hops = target, hops + 1
                    assert hops <= 2, (key, image_level, image_pointer)
                assert current == owner, (key, image_level, image_pointer)


class TestImageAdjustment:
    def test_adjustment_moves_forward(self):
        addressing = LHAddressing()
        image = ClientImage(0, 0)
        adjusted = addressing.adjust_image(image, server_level=3, server_address=2)
        assert (adjusted.level, adjusted.pointer) == (2, 3)

    def test_pointer_overflow_rolls_level(self):
        addressing = LHAddressing()
        image = ClientImage(2, 0)
        adjusted = addressing.adjust_image(image, server_level=3, server_address=3)
        assert (adjusted.level, adjusted.pointer) == (3, 0)

    def test_stale_iam_ignored(self):
        addressing = LHAddressing()
        image = ClientImage(5, 2)
        adjusted = addressing.adjust_image(image, server_level=3, server_address=0)
        assert adjusted == image


class TestLHFileIntegration:
    def make_file(self, n_records=500, capacity=25, seed=3):
        scheme = make_scheme(f=8, n=2)
        file = LHFile(scheme, capacity_records=capacity)
        client = file.client()
        keys = random.Random(seed).sample(range(1_000_000), n_records)
        for key in keys:
            result = client.insert(Record(key, f"value-{key}".encode()))
            assert result.status == "inserted"
        return file, client, keys

    def test_grows_and_places_correctly(self):
        file, _client, _keys = self.make_file()
        assert file.bucket_count > 1
        assert file.load_factor <= file.split_load_factor + 1e-9
        file.check_placement()

    def test_every_key_found(self):
        file, client, keys = self.make_file()
        for key in keys:
            result = client.search(key)
            assert result.status == "found"
            assert result.record.key == key

    def test_stale_client_two_forward_bound(self):
        """The LH* theorem: any client image needs at most 2 forwards."""
        file, _client, keys = self.make_file(n_records=800)
        stale = file.client("stale")
        for key in keys:
            result = stale.search(key)
            assert result.status == "found"
            assert result.forwards <= 2

    def test_client_image_converges(self):
        """After IAMs, repeating the same accesses needs no forwards."""
        file, _client, keys = self.make_file()
        learner = file.client("learner")
        for key in keys:
            learner.search(key)
        second_pass_forwards = sum(
            learner.search(key).forwards for key in keys
        )
        assert second_pass_forwards == 0

    def test_duplicate_insert_reported(self):
        file, client, keys = self.make_file(n_records=50)
        result = client.insert(Record(keys[0], b"dup"))
        assert result.status == "duplicate"

    def test_delete_then_missing(self):
        file, client, keys = self.make_file(n_records=50)
        assert client.delete(keys[0]).status == "deleted"
        assert client.search(keys[0]).status == "missing"
        assert client.delete(keys[0]).status == "missing"

    def test_splits_preserve_all_records(self):
        file, client, keys = self.make_file(n_records=400, capacity=10)
        assert file.record_count == len(keys)
        assert sorted(
            key for server in file.servers for key in server.bucket.keys()
        ) == sorted(keys)

    def test_split_traffic_accounted(self):
        file, _client, _keys = self.make_file()
        assert file.network.stats.by_kind["split_transfer"] == file.splits_performed

    def test_load_factor_controlled(self):
        file, _client, _keys = self.make_file(n_records=1000, capacity=20)
        assert file.load_factor <= 0.8 + 1e-9

    def test_bad_load_factor_rejected(self):
        with pytest.raises(SDDSError):
            LHFile(make_scheme(f=8, n=2), split_load_factor=0.0)

    def test_unknown_bucket_rejected(self):
        file, _client, _keys = self.make_file(n_records=10)
        with pytest.raises(SDDSError):
            file.server(999)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_placement_invariant_random_workloads(self, seed):
        rng = random.Random(seed)
        scheme = make_scheme(f=8, n=2)
        file = LHFile(scheme, capacity_records=8)
        client = file.client()
        live = set()
        for _step in range(300):
            if rng.random() < 0.7 or not live:
                key = rng.randrange(100_000)
                result = client.insert(Record(key, b"v"))
                if result.status == "inserted":
                    live.add(key)
            else:
                key = rng.choice(list(live))
                client.delete(key)
                live.discard(key)
        file.check_placement()
        assert file.record_count == len(live)
        for key in live:
            assert client.search(key).status == "found"
