"""Tests for fault plans, the faulty network, retries, and the wire seal."""

import pytest

from repro.cluster import (
    Crash,
    EventLoop,
    FaultPlan,
    FaultyNetwork,
    LinkFaults,
    Partition,
    RetryPolicy,
)
from repro.cluster import wire
from repro.obs import MetricsRegistry, use_registry
from repro.sig import make_scheme
from repro.sim import SimNetwork


class TestLinkFaults:
    def test_clean_by_default(self):
        assert LinkFaults().is_clean

    def test_any_fault_breaks_clean(self):
        for kwargs in ({"drop": 0.1}, {"duplicate": 0.1}, {"corrupt": 0.1},
                       {"jitter": 1e-3}, {"reorder": 0.1}):
            assert not LinkFaults(**kwargs).is_clean

    def test_probabilities_validated(self):
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            with pytest.raises(ValueError):
                LinkFaults(**{name: 1.5})
            with pytest.raises(ValueError):
                LinkFaults(**{name: -0.1})
        with pytest.raises(ValueError):
            LinkFaults(jitter=-1.0)


class TestPartition:
    def test_severs_across_groups_while_active(self):
        partition = Partition(start=1.0, heal_at=2.0, groups=(("a",), ("b",)))
        assert partition.severs(1.5, "a", "b")
        assert not partition.severs(1.5, "a", "a")

    def test_heals_on_schedule(self):
        partition = Partition(start=1.0, heal_at=2.0, groups=(("a",), ("b",)))
        assert not partition.severs(0.5, "a", "b")
        assert not partition.severs(2.0, "a", "b")

    def test_unlisted_nodes_form_implicit_group(self):
        partition = Partition(start=0.0, heal_at=1.0, groups=(("a",),))
        assert partition.severs(0.5, "a", "x")
        assert not partition.severs(0.5, "x", "y")

    def test_must_heal_after_start(self):
        with pytest.raises(ValueError):
            Partition(start=1.0, heal_at=1.0, groups=())


class TestFaultPlan:
    def test_link_override(self):
        bad = LinkFaults(drop=0.5)
        plan = FaultPlan(links={("a", "b"): bad})
        assert plan.link("a", "b") is bad
        assert plan.link("b", "a").is_clean

    def test_severed_consults_all_partitions(self):
        plan = FaultPlan(partitions=(
            Partition(start=0.0, heal_at=1.0, groups=(("a",),)),
            Partition(start=2.0, heal_at=3.0, groups=(("b",),)),
        ))
        assert plan.severed(0.5, "a", "b")
        assert not plan.severed(1.5, "a", "b")
        assert plan.severed(2.5, "a", "b")

    def test_crash_validation(self):
        with pytest.raises(ValueError):
            Crash("node0", at=1.0, recover_at=0.5)

    def test_lossy_preset(self):
        plan = FaultPlan.lossy(drop=0.2)
        assert plan.default.drop == 0.2
        assert plan.default.corrupt > 0


def make_transport(plan, seed=0):
    network = SimNetwork()
    loop = EventLoop(network.clock)
    return FaultyNetwork(network, loop, plan, seed=seed), loop


class TestFaultyNetwork:
    def test_clean_link_delivers_everything(self):
        transport, loop = make_transport(FaultPlan())
        got = []
        for n in range(20):
            transport.transmit("a", "b", "x", bytes([n]), got.append)
        loop.run_until_idle()
        assert got == [bytes([n]) for n in range(20)]
        assert transport.injected == {}

    def test_network_and_loop_must_share_a_clock(self):
        with pytest.raises(ValueError):
            FaultyNetwork(SimNetwork(), EventLoop(), FaultPlan())

    def test_drops_are_seeded_and_accounted(self):
        plan = FaultPlan(default=LinkFaults(drop=0.5))
        with use_registry(MetricsRegistry()) as registry:
            transport, loop = make_transport(plan, seed=3)
            got = []
            for n in range(100):
                transport.transmit("a", "b", "x", bytes([n]), got.append)
            loop.run_until_idle()
        dropped = transport.injected["drop"]
        assert 0 < dropped < 100
        assert len(got) == 100 - dropped
        assert registry.total("cluster.faults_injected", type="drop") == \
            dropped
        # Dropped bytes still burn wire accounting: the sender sent them.
        assert transport.inner.stats.messages == 100

    def test_same_seed_same_draws(self):
        def run(seed):
            plan = FaultPlan(default=LinkFaults(drop=0.3, jitter=1e-4))
            transport, loop = make_transport(plan, seed=seed)
            got = []
            for n in range(50):
                transport.transmit("a", "b", "x", bytes([n]), got.append)
            loop.run_until_idle()
            return got

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_duplicates_deliver_twice(self):
        plan = FaultPlan(default=LinkFaults(duplicate=1.0))
        transport, loop = make_transport(plan)
        got = []
        transport.transmit("a", "b", "x", b"payload", got.append)
        loop.run_until_idle()
        assert got == [b"payload", b"payload"]
        assert transport.injected["duplicate"] == 1

    def test_corruption_changes_exactly_one_byte(self):
        plan = FaultPlan(default=LinkFaults(corrupt=1.0))
        transport, loop = make_transport(plan)
        payload = bytes(range(64))
        got = []
        transport.transmit("a", "b", "x", payload, got.append)
        loop.run_until_idle()
        (delivered,) = got
        diffs = [i for i in range(64) if delivered[i] != payload[i]]
        assert len(diffs) == 1
        assert transport.injected["corrupt"] == 1

    def test_every_corruption_breaks_the_seal(self):
        """The detection guarantee: a one-byte flip is always caught."""
        scheme = make_scheme()
        plan = FaultPlan(default=LinkFaults(corrupt=1.0))
        transport, loop = make_transport(plan, seed=11)
        sealed = wire.seal(scheme, b"the paper's integrity argument")
        got = []
        for _ in range(50):
            transport.transmit("a", "b", "x", sealed, got.append)
        loop.run_until_idle()
        assert len(got) == 50
        assert transport.injected["corrupt"] == 50
        assert all(wire.unseal(scheme, body) is None for body in got)

    def test_partition_drops_until_heal(self):
        plan = FaultPlan(partitions=(
            Partition(start=0.0, heal_at=1.0, groups=(("a",), ("b",))),
        ))
        transport, loop = make_transport(plan)
        got = []
        transport.transmit("a", "b", "x", b"early", got.append)
        loop.run_until(2.0)
        transport.transmit("a", "b", "x", b"late", got.append)
        loop.run_until_idle()
        assert got == [b"late"]
        assert transport.injected["partition_drop"] == 1

    def test_reorder_lets_later_messages_overtake(self):
        plan = FaultPlan(links={
            ("a", "b"): LinkFaults(reorder=1.0, reorder_delay=5e-3),
        })
        transport, loop = make_transport(plan)
        got = []
        transport.transmit("a", "b", "x", b"first", got.append)
        plan.links[("a", "b")] = LinkFaults()  # second message goes clean
        transport.transmit("a", "b", "x", b"second", got.append)
        loop.run_until_idle()
        assert got == [b"second", b"first"]


class TestRetryPolicy:
    def test_exponential_ladder_with_cap(self):
        policy = RetryPolicy(timeout=1e-3, backoff=2.0, max_timeout=5e-3,
                             max_attempts=8, jitter=0.0)
        ladder = [policy.timeout_for(a) for a in range(5)]
        assert ladder == pytest.approx([1e-3, 2e-3, 4e-3, 5e-3, 5e-3])

    def test_jitter_stays_proportional(self):
        import random
        policy = RetryPolicy(timeout=1e-2, max_timeout=1e-2, jitter=0.5)
        rng = random.Random(0)
        for attempt in range(5):
            t = policy.timeout_for(attempt, rng)
            assert 1e-2 <= t <= 1.5e-2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=1.0, max_timeout=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy().timeout_for(-1)


class TestWire:
    def test_request_roundtrip(self):
        body = wire.encode_request(wire.OP_INSERT, 42, 7, b"value")
        assert wire.decode_request(body) == (wire.OP_INSERT, 42, 7, b"value")

    def test_reply_roundtrip(self):
        body = wire.encode_reply(wire.ST_FOUND, 42, b"value")
        assert wire.decode_reply(body) == (wire.ST_FOUND, 42, b"value")

    def test_mirror_roundtrip(self):
        body = wire.encode_mirror(1000, 3, b"page bytes")
        assert wire.decode_mirror(body) == (1000, 3, b"page bytes")

    def test_seal_roundtrip(self):
        scheme = make_scheme()
        sealed = wire.seal(scheme, b"hello cluster")
        assert len(sealed) == len(b"hello cluster") + scheme.signature_bytes
        assert wire.unseal(scheme, sealed) == b"hello cluster"

    def test_every_single_byte_flip_detected(self):
        """Proposition 2 on the wire: n=2 certainly catches 1-byte flips."""
        scheme = make_scheme()
        sealed = wire.seal(scheme, b"a body worth protecting")
        for position in range(len(sealed)):
            for mask in (0x01, 0x80, 0xFF):
                tampered = bytearray(sealed)
                tampered[position] ^= mask
                assert wire.unseal(scheme, bytes(tampered)) is None

    def test_truncated_payload_rejected(self):
        scheme = make_scheme()
        assert wire.unseal(scheme, b"") is None
        assert wire.unseal(scheme, b"ab") is None
        with pytest.raises(wire.WireError):
            wire.decode_request(b"")
        with pytest.raises(wire.WireError):
            wire.decode_reply(b"")
        with pytest.raises(wire.WireError):
            wire.decode_mirror(b"")

    def test_invalid_codes_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode_request(99, 0, 0)
        with pytest.raises(wire.WireError):
            wire.encode_reply(99, 0)
