"""Tests for the LH*RS-style high-availability store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError, ParityError
from repro.parity.lhrs import LHRSStore
from repro.sig import make_scheme


def make_store(m=3, k=2, record_bytes=64):
    return LHRSStore(make_scheme(f=16, n=2), m, k, record_bytes)


def fill(store, count=20, seed=0, value_bytes=40):
    rng = np.random.default_rng(seed)
    values = {}
    for key in range(count):
        value = bytes(rng.integers(0, 256, value_bytes, dtype=np.uint8))
        store.insert(key, value)
        values[key] = value
    return values


class TestRecordOperations:
    def test_insert_get(self):
        store = make_store()
        store.insert(7, b"payload")
        assert store.get(7) == b"payload"
        assert 7 in store
        assert len(store) == 1

    def test_variable_lengths(self):
        store = make_store()
        for key, size in enumerate((0, 1, 17, 60)):
            store.insert(key, b"x" * size)
        for key, size in enumerate((0, 1, 17, 60)):
            assert store.get(key) == b"x" * size

    def test_value_too_long(self):
        store = make_store(record_bytes=32)
        with pytest.raises(ParityError):
            store.insert(1, b"y" * 29)  # 28 is the max with the 4 B frame

    def test_duplicate_insert(self):
        store = make_store()
        store.insert(1, b"a")
        with pytest.raises(ParityError):
            store.insert(1, b"b")

    def test_update(self):
        store = make_store()
        store.insert(1, b"old")
        store.update(1, b"new value")
        assert store.get(1) == b"new value"

    def test_delete_and_slot_reuse(self):
        store = make_store()
        values = fill(store, 9)
        deleted = store.delete(3)
        assert deleted == values[3]
        assert 3 not in store
        with pytest.raises(KeyNotFoundError):
            store.get(3)
        # A new key in the same bucket reuses the freed rank.
        store.insert(3 + store.m * 100, b"reuser")
        assert store.get(3 + store.m * 100) == b"reuser"

    def test_keys_sorted(self):
        store = make_store()
        fill(store, 7)
        assert store.keys() == list(range(7))

    def test_bad_record_bytes(self):
        with pytest.raises(ParityError):
            LHRSStore(make_scheme(f=16, n=2), 2, 1, record_bytes=7)
        with pytest.raises(ParityError):
            LHRSStore(make_scheme(f=16, n=2), 2, 1, record_bytes=33)


class TestAudit:
    def test_consistent_after_mixed_operations(self):
        store = make_store()
        fill(store, 25)
        store.update(4, b"changed")
        store.delete(9)
        store.insert(100, b"late arrival")
        assert store.audit() == []

    def test_detects_missed_parity_update(self):
        store = make_store()
        fill(store, 10)
        store.corrupt_parity(1, rank=2, symbol=5)
        assert 2 in store.audit()
        assert not store.audit_rank(2)
        assert store.audit_rank(0)

    def test_audit_bad_rank(self):
        store = make_store()
        fill(store, 3)
        with pytest.raises(ParityError):
            store.audit_rank(99)


class TestFailureRecovery:
    def test_single_bucket_recovery(self):
        store = make_store()
        values = fill(store, 30, seed=1)
        store.fail_bucket(1)
        # Keys of bucket 1 are gone until recovery.
        lost = [key for key in values if key % store.m == 1]
        for key in lost:
            assert key not in store
        restored = store.recover()
        assert restored == len(lost)
        for key, value in values.items():
            assert store.get(key) == value
        assert store.audit() == []

    def test_k_bucket_recovery(self):
        store = make_store(m=4, k=2)
        values = fill(store, 40, seed=2)
        store.fail_bucket(0)
        store.fail_bucket(3)
        store.recover()
        for key, value in values.items():
            assert store.get(key) == value

    def test_too_many_failures(self):
        store = make_store(m=3, k=1)
        fill(store, 12, seed=3)
        store.fail_bucket(0)
        store.fail_bucket(2)
        with pytest.raises(ParityError):
            store.recover()

    def test_failed_bucket_blocks_access(self):
        store = make_store()
        fill(store, 9, seed=4)
        store.fail_bucket(0)
        surviving = next(key for key in range(9) if key % store.m != 0)
        assert store.get(surviving) is not None
        with pytest.raises(ParityError):
            store.insert(store.m * 50, b"x")  # hashes to bucket 0

    def test_recover_with_no_failures(self):
        store = make_store()
        fill(store, 5)
        assert store.recover() == 0

    def test_recovery_after_updates_and_deletes(self):
        store = make_store(m=3, k=2)
        values = fill(store, 21, seed=5)
        store.update(2, b"fresh-2")
        values[2] = b"fresh-2"
        store.delete(5)
        del values[5]
        store.fail_bucket(2)
        store.recover()
        for key, value in values.items():
            assert store.get(key) == value
        assert 5 not in store

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_random_workload_then_recovery(self, seed):
        rng = np.random.default_rng(seed)
        store = make_store(m=3, k=2, record_bytes=32)
        reference = {}
        for step in range(60):
            action = rng.random()
            key = int(rng.integers(0, 40))
            if action < 0.5:
                if key not in reference:
                    value = bytes(rng.integers(0, 256, int(rng.integers(0, 28)),
                                               dtype=np.uint8))
                    store.insert(key, value)
                    reference[key] = value
            elif action < 0.8:
                if key in reference:
                    value = bytes(rng.integers(0, 256, int(rng.integers(0, 28)),
                                               dtype=np.uint8))
                    store.update(key, value)
                    reference[key] = value
            else:
                if key in reference:
                    store.delete(key)
                    del reference[key]
        assert store.audit() == []
        victims = set(int(v) for v in rng.choice(3, size=2, replace=False))
        for victim in victims:
            store.fail_bucket(victim)
        store.recover()
        assert sorted(store.keys()) == sorted(reference)
        for key, value in reference.items():
            assert store.get(key) == value
        assert store.audit() == []
