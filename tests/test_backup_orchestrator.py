"""Tests for whole-file backup and disaster recovery."""

import pytest

from repro.backup import BackupEngine
from repro.backup.orchestrator import FileBackupOrchestrator
from repro.errors import BackupError
from repro.sdds import LHFile, Record
from repro.sig import make_scheme
from repro.sim import SimClock, SimDisk
from repro.workloads import make_records


def build_file(n_records=200, capacity=25, seed=6):
    scheme = make_scheme(f=16, n=2)
    file = LHFile(scheme, capacity_records=capacity)
    client = file.client()
    records = make_records(n_records, 80, seed=seed)
    for record in records:
        client.insert(record)
    return file, client, records


def make_orchestrator(scheme):
    engine = BackupEngine(scheme, SimDisk(SimClock()), page_bytes=1024)
    return FileBackupOrchestrator(engine)


class TestBackupRestoreCycle:
    def test_restored_file_equals_original(self):
        file, _client, records = build_file()
        orchestrator = make_orchestrator(file.scheme)
        orchestrator.backup_file(file, "prod")
        restored = orchestrator.restore_file("prod", capacity_records=25)
        assert restored.bucket_count == file.bucket_count
        assert restored.record_count == file.record_count
        assert (restored.state.level, restored.state.pointer) == \
            (file.state.level, file.state.pointer)
        client = restored.client()
        for record in records:
            result = client.search(record.key)
            assert result.status == "found"
            assert result.record == record

    def test_placement_identical(self):
        file, _client, _records = build_file()
        orchestrator = make_orchestrator(file.scheme)
        orchestrator.backup_file(file, "prod")
        restored = orchestrator.restore_file("prod", capacity_records=25)
        for original, copy in zip(file.servers, restored.servers):
            assert sorted(original.bucket.keys()) == sorted(copy.bucket.keys())
            assert original.bucket.level == copy.bucket.level

    def test_restored_file_keeps_working(self):
        """The restored file is live: inserts route, split, and update."""
        file, _client, records = build_file(n_records=80)
        orchestrator = make_orchestrator(file.scheme)
        orchestrator.backup_file(file, "prod")
        restored = orchestrator.restore_file("prod", capacity_records=25)
        client = restored.client()
        new_keys = [record.key + 1 for record in records[:40]
                    if record.key + 1 not in
                    {r.key for r in records}]
        for key in new_keys:
            client.insert(Record(key, b"fresh" * 16))
        restored.check_placement()
        for key in new_keys:
            assert client.search(key).status == "found"


class TestIncrementalFileBackup:
    def test_quiet_file_writes_nothing(self):
        file, _client, _records = build_file()
        orchestrator = make_orchestrator(file.scheme)
        first = orchestrator.backup_file(file, "prod")
        assert first.pages_written == first.pages_total
        second = orchestrator.backup_file(file, "prod")
        assert second.pages_written == 0

    def test_single_update_touches_one_bucket(self):
        file, client, records = build_file()
        orchestrator = make_orchestrator(file.scheme)
        orchestrator.backup_file(file, "prod")
        client.update_blind(records[0].key, b"Z" * 80)
        report = orchestrator.backup_file(file, "prod")
        touched = [r for r in report.bucket_reports if r.pages_written]
        assert len(touched) == 1
        assert 1 <= touched[0].pages_written <= 3

    def test_growth_after_backup(self):
        """Splits after a backup only dirty the moved data."""
        file, client, _records = build_file(n_records=100, capacity=30)
        orchestrator = make_orchestrator(file.scheme)
        orchestrator.backup_file(file, "prod")
        more = make_records(60, 80, seed=77)
        existing = {r.key for server in file.servers
                    for r in server.bucket.records()}
        for record in more:
            if record.key not in existing:
                client.insert(record)
        report = orchestrator.backup_file(file, "prod")
        assert report.pages_written > 0
        restored = orchestrator.restore_file("prod", capacity_records=30)
        assert restored.record_count == file.record_count


class TestMetadata:
    def test_truncated_metadata_rejected(self):
        scheme = make_scheme(f=16, n=2)
        orchestrator = make_orchestrator(scheme)
        with pytest.raises(BackupError):
            orchestrator._decode_metadata(b"abc")

    def test_unknown_label_rejected(self):
        scheme = make_scheme(f=16, n=2)
        orchestrator = make_orchestrator(scheme)
        with pytest.raises(BackupError):
            orchestrator.restore_file("never-backed-up")
