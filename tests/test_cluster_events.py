"""Tests for the deterministic event loop under the simulated clock."""

import pytest

from repro.cluster import EventError, EventLoop
from repro.sim import SimClock


class TestScheduling:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.at(0.3, lambda: order.append("c"))
        loop.at(0.1, lambda: order.append("a"))
        loop.at(0.2, lambda: order.append("b"))
        loop.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        for tag in range(10):
            loop.at(0.5, lambda tag=tag: order.append(tag))
        loop.run_until(1.0)
        assert order == list(range(10))

    def test_clock_tracks_event_times(self):
        loop = EventLoop()
        seen = []
        loop.at(0.25, lambda: seen.append(loop.clock.now))
        loop.run_until(1.0)
        assert seen == [0.25]
        assert loop.clock.now == 1.0  # advanced to the deadline

    def test_after_is_relative(self):
        clock = SimClock()
        clock.advance(5.0)
        loop = EventLoop(clock)
        timer = loop.after(0.5, lambda: None)
        assert timer.time == pytest.approx(5.5)

    def test_callback_can_schedule_more_events(self):
        loop = EventLoop()
        order = []

        def first():
            order.append("first")
            loop.after(0.0, lambda: order.append("second"))

        loop.at(0.1, first)
        loop.run_until(1.0)
        assert order == ["first", "second"]

    def test_past_event_rejected(self):
        loop = EventLoop()
        loop.clock.advance(1.0)
        with pytest.raises(EventError):
            loop.at(0.5, lambda: None)

    def test_nonfinite_times_rejected(self):
        loop = EventLoop()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(EventError):
                loop.at(bad, lambda: None)
            with pytest.raises(EventError):
                loop.after(bad, lambda: None)
        with pytest.raises(EventError):
            loop.after(-0.1, lambda: None)
        with pytest.raises(EventError):
            loop.run_until(float("nan"))

    def test_cancelled_timer_never_fires(self):
        loop = EventLoop()
        fired = []
        timer = loop.at(0.1, lambda: fired.append(1))
        timer.cancel()
        loop.run_until(1.0)
        assert not fired
        assert loop.pending == 0


class TestRunUntil:
    def test_stop_predicate_short_circuits(self):
        loop = EventLoop()
        fired = []
        loop.at(0.1, lambda: fired.append("a"))
        loop.at(0.2, lambda: fired.append("b"))
        assert loop.run_until(1.0, stop=lambda: bool(fired))
        assert fired == ["a"]
        assert loop.clock.now == pytest.approx(0.1)
        assert loop.pending == 1  # "b" still queued

    def test_stop_checked_before_any_event(self):
        loop = EventLoop()
        fired = []
        loop.at(0.1, lambda: fired.append(1))
        assert loop.run_until(1.0, stop=lambda: True)
        assert not fired
        assert loop.clock.now == 0.0

    def test_timeout_advances_to_deadline(self):
        loop = EventLoop()
        assert not loop.run_until(0.75)
        assert loop.clock.now == 0.75

    def test_later_events_stay_queued(self):
        loop = EventLoop()
        fired = []
        loop.at(2.0, lambda: fired.append(1))
        assert not loop.run_until(1.0)
        assert not fired
        assert loop.pending == 1


class TestRunUntilIdle:
    def test_drains_cascading_events(self):
        loop = EventLoop()
        order = []

        def cascade(depth):
            order.append(depth)
            if depth < 5:
                loop.after(0.01, lambda: cascade(depth + 1))

        loop.at(0.0, lambda: cascade(0))
        assert loop.run_until_idle() == 6
        assert order == list(range(6))

    def test_self_rescheduling_loop_detected(self):
        loop = EventLoop()

        def forever():
            loop.after(1.0, forever)

        loop.at(0.0, forever)
        with pytest.raises(EventError):
            loop.run_until_idle(max_seconds=10.0)

    def test_empty_loop_is_a_noop(self):
        loop = EventLoop()
        assert loop.run_until_idle() == 0
        assert loop.clock.now == 0.0


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run():
            loop = EventLoop()
            order = []
            for tag in range(20):
                loop.at((tag * 7 % 5) * 0.1, lambda tag=tag: order.append(tag))
            loop.run_until_idle()
            return order

        assert run() == run()


class TestFIFOFairness:
    def test_thousands_of_same_deadline_timers_fire_in_fifo_order(self):
        # The serving plane schedules bursts of arrivals and timeouts
        # at identical instants; the (time, seq) tie-break must keep
        # them strictly FIFO or sessions would be served unfairly.
        loop = EventLoop()
        fired = []
        count = 5000
        for tag in range(count):
            loop.at(1.0, lambda tag=tag: fired.append(tag))
        loop.run_until_idle()
        assert fired == list(range(count))

    def test_fifo_holds_across_interleaved_batches(self):
        loop = EventLoop()
        fired = []
        # Two interleaved scheduling passes over the same two instants:
        # within each instant, scheduling order is firing order.
        for tag in range(0, 2000, 2):
            loop.at(1.0, lambda tag=tag: fired.append(tag))
            loop.at(2.0, lambda tag=-tag - 1: fired.append(tag))
        for tag in range(1, 2000, 2):
            loop.at(1.0, lambda tag=tag: fired.append(tag))
        loop.run_until_idle()
        at_one = [tag for tag in fired if tag >= 0]
        at_two = [tag for tag in fired if tag < 0]
        assert at_one == list(range(0, 2000, 2)) + list(range(1, 2000, 2))
        assert at_two == [-tag - 1 for tag in range(0, 2000, 2)]

    def test_cancellation_inside_a_tied_burst_preserves_order(self):
        loop = EventLoop()
        fired = []
        timers = [loop.at(1.0, lambda tag=tag: fired.append(tag))
                  for tag in range(1000)]
        for timer in timers[::3]:
            timer.cancel()
        loop.run_until_idle()
        expected = [tag for tag in range(1000) if tag % 3 != 0]
        assert fired == expected
