"""Tests for the single-buffer search harness (E7 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SDDSError
from repro.search import (
    build_record_field,
    scan_naive,
    scan_with_karp_rabin,
    scan_with_signatures,
    scan_with_xor,
)
from repro.sig import make_scheme


class TestWorkloadBuilder:
    def test_paper_shape(self):
        """8000 records, 60 B fields, needle in the third-last record."""
        fields = build_record_field(8000, 60, b"xyz", 7997)
        assert len(fields) == 8000
        assert all(len(field) == 60 for field in fields)
        assert fields[7997].startswith(b"xyz")

    def test_deterministic(self):
        a = build_record_field(100, 60, b"ab", 50, seed=1)
        b = build_record_field(100, 60, b"ab", 50, seed=1)
        assert a == b

    def test_validation(self):
        with pytest.raises(SDDSError):
            build_record_field(10, 60, b"x", 10)
        with pytest.raises(SDDSError):
            build_record_field(10, 4, b"toolong", 0)


class TestScanners:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_record_field(500, 60, b"ZQX", 497, seed=2)

    def test_signature_scan_gf16(self, workload):
        scheme = make_scheme(f=16, n=2)
        result = scan_with_signatures(scheme, workload, b"ZQX")
        assert 497 in result.record_indices

    def test_signature_scan_gf8(self, workload):
        scheme = make_scheme(f=8, n=2)
        result = scan_with_signatures(scheme, workload, b"ZQX")
        assert 497 in result.record_indices

    def test_all_scanners_agree(self, workload):
        scheme = make_scheme(f=16, n=2)
        truth = scan_naive(workload, b"ZQX").record_indices
        assert scan_with_signatures(scheme, workload, b"ZQX").record_indices == truth
        assert scan_with_xor(workload, b"ZQX").record_indices == truth
        assert scan_with_karp_rabin(workload, b"ZQX").record_indices == truth

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_agreement_on_random_needles(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        fields = build_record_field(80, 40, b"ab", 0, seed=seed)
        donor = fields[int(rng.integers(0, 80))]
        start = int(rng.integers(0, 36))
        needle = donor[start:start + 4]
        scheme = make_scheme(f=16, n=2)
        truth = scan_naive(fields, needle).record_indices
        assert scan_with_signatures(scheme, fields, needle).record_indices == truth
        assert scan_with_xor(fields, needle).record_indices == truth

    def test_xor_scan_has_more_candidates(self):
        """The XOR fold carries no positional information, so its
        candidate count is at least that of the algebraic scan."""
        fields = build_record_field(300, 60, b"ZQX", 1, seed=3)
        scheme = make_scheme(f=16, n=2)
        algebraic = scan_with_signatures(scheme, fields, b"ZQX")
        xor = scan_with_xor(fields, b"ZQX")
        assert xor.candidates >= algebraic.verified

    def test_empty_needle_rejected(self):
        scheme = make_scheme(f=16, n=2)
        with pytest.raises(SDDSError):
            scan_with_signatures(scheme, [b"abc"], b"")

    def test_short_needle_rejected_gf16(self):
        scheme = make_scheme(f=16, n=2)
        with pytest.raises(SDDSError):
            scan_with_signatures(scheme, [b"abc"], b"a")
