"""Tests for the simulated clock, network, and disk substrates."""

import pytest

from repro.errors import BackupError
from repro.sim import (
    DiskModel,
    NetworkModel,
    PAPER_SECONDS_PER_BYTE,
    SimClock,
    SimDisk,
    SimNetwork,
)


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advances(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_never_rewinds(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(10)
        clock.reset()
        assert clock.now == 0.0

    def test_rejects_nonfinite_advance(self):
        clock = SimClock()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                clock.advance(bad)
        assert clock.now == 0.0

    def test_sleep_until(self):
        clock = SimClock()
        clock.sleep_until(2.5)
        assert clock.now == 2.5

    def test_sleep_until_past_is_noop(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.sleep_until(1.0)
        assert clock.now == 5.0

    def test_sleep_until_rejects_nonfinite(self):
        clock = SimClock()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                clock.sleep_until(bad)


class TestNetworkModel:
    def test_transfer_time_composition(self):
        model = NetworkModel(latency=1e-3, bandwidth=1e6)
        assert model.transfer_time(0) == pytest.approx(1e-3)
        assert model.transfer_time(1_000_000) == pytest.approx(1e-3 + 1.0)

    def test_default_is_100mbps(self):
        model = NetworkModel()
        # 1 MB at 100 Mb/s is 80 ms of serialization.
        assert model.transfer_time(1 << 20) - model.latency == \
            pytest.approx((1 << 20) / (100e6 / 8))

    def test_header_bytes_default_zero(self):
        model = NetworkModel()
        assert model.header_bytes == 0
        assert model.wire_bytes(100) == 100

    def test_header_bytes_in_transfer_time(self):
        bare = NetworkModel(latency=0.0, bandwidth=1e6)
        framed = NetworkModel(latency=0.0, bandwidth=1e6, header_bytes=40)
        assert framed.wire_bytes(100) == 140
        assert framed.transfer_time(100) == \
            pytest.approx(bare.transfer_time(140))


class TestSimNetwork:
    def test_accounting(self):
        net = SimNetwork()
        net.send("a", "b", "insert", 100)
        net.send("b", "a", "ack", 10)
        assert net.stats.messages == 2
        assert net.stats.bytes == 110
        assert net.stats.by_kind["insert"] == 1
        assert net.per_node["a"].by_kind["out:insert"] == 1
        assert net.per_node["a"].by_kind["in:ack"] == 1

    def test_clock_advances_per_message(self):
        net = SimNetwork(model=NetworkModel(latency=1e-3, bandwidth=1e9))
        before = net.clock.now
        net.send("a", "b", "x", 0)
        assert net.clock.now > before

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            SimNetwork().send("a", "b", "x", -1)

    def test_reset_stats_keeps_clock(self):
        net = SimNetwork()
        net.send("a", "b", "x", 5)
        t = net.clock.now
        net.reset_stats()
        assert net.stats.messages == 0
        assert net.clock.now == t

    def test_local_compute(self):
        net = SimNetwork()
        net.local_compute(0.25)
        assert net.clock.now >= 0.25
        assert net.stats.messages == 0

    def test_header_bytes_accounted(self):
        net = SimNetwork(model=NetworkModel(header_bytes=16))
        net.send("a", "b", "x", 100)
        assert net.stats.bytes == 116
        assert net.per_node["a"].bytes == 116

    def test_account_tallies_without_advancing_clock(self):
        net = SimNetwork(model=NetworkModel(latency=1e-3, header_bytes=16))
        elapsed = net.account("a", "b", "x", 100)
        assert elapsed == pytest.approx(net.model.transfer_time(100))
        assert net.clock.now == 0.0
        assert net.stats.messages == 1
        assert net.stats.bytes == 116


class TestSimDisk:
    def test_write_read_roundtrip(self):
        disk = SimDisk()
        disk.write_page("vol", 0, b"hello", page_size=16)
        disk.write_page("vol", 1, b"world", page_size=16)
        assert disk.read_page("vol", 0) == b"hello"
        assert disk.read_volume("vol") == b"helloworld"

    def test_missing_page(self):
        with pytest.raises(BackupError):
            SimDisk().read_page("vol", 0)

    def test_oversized_page_rejected(self):
        with pytest.raises(BackupError):
            SimDisk().write_page("vol", 0, b"x" * 20, page_size=16)

    def test_mixed_page_sizes_rejected(self):
        disk = SimDisk()
        disk.write_page("vol", 0, b"a", page_size=16)
        with pytest.raises(BackupError):
            disk.write_page("vol", 1, b"b", page_size=32)

    def test_stats(self):
        disk = SimDisk()
        disk.write_page("vol", 0, b"abcd", page_size=8)
        disk.read_page("vol", 0)
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 4
        assert disk.stats.reads == 1
        assert disk.stats.bytes_read == 4

    def test_write_time_scales_with_size(self):
        model = DiskModel(seek_time=0.0)
        disk = SimDisk(model=model)
        t1 = disk.write_page("vol", 0, bytes(1 << 20), page_size=1 << 20)
        assert t1 == pytest.approx((1 << 20) * PAPER_SECONDS_PER_BYTE)
        # The paper's constant: about 300 ms per MB.
        assert t1 == pytest.approx(0.300)

    def test_file_backing(self, tmp_path):
        disk = SimDisk(backing_dir=tmp_path)
        disk.write_page("vol", 0, b"abcd", page_size=4)
        disk.write_page("vol", 2, b"wxyz", page_size=4)
        image = (tmp_path / "vol.img").read_bytes()
        assert image[0:4] == b"abcd"
        assert image[8:12] == b"wxyz"

    def test_has_page_and_volume_pages(self):
        disk = SimDisk()
        disk.write_page("v", 3, b"x", page_size=4)
        assert disk.has_page("v", 3)
        assert not disk.has_page("v", 0)
        assert disk.volume_pages("v") == [3]
