"""Tests for workload generators, collision analysis, and table output."""

import numpy as np
import pytest

from repro.analysis import (
    format_table,
    prop1_exhaustive,
    prop1_sampled,
    prop2_random_pairs,
    prop4_switches,
    ratio,
    sha1_small_change_detection,
)
from repro.errors import ReproError
from repro.sig import make_scheme
from repro.workloads import (
    PAGE_KINDS,
    attribute_update,
    cut_and_paste,
    make_page,
    make_records,
    pseudo_update_mix,
    small_edit,
    structured_page,
)


class TestPageGenerators:
    def test_sizes(self):
        for kind in PAGE_KINDS:
            assert len(make_page(kind, 1000)) == 1000

    def test_deterministic(self):
        assert make_page("random", 100, seed=5) == make_page("random", 100, seed=5)

    def test_seeds_differ(self):
        assert make_page("random", 100, seed=1) != make_page("random", 100, seed=2)

    def test_structured_repeats(self):
        page = structured_page(500)
        assert page[:20] == page.split(b"one")[0] + b"one" + \
            page[len(page.split(b"one")[0]) + 3:20]
        assert b"hundred" in page

    def test_ascii_printable(self):
        page = make_page("ascii", 500)
        assert all(0x20 <= byte < 0x7F for byte in page)

    def test_zero(self):
        assert make_page("zero", 10) == bytes(10)

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            make_page("nope", 10)


class TestUpdateGenerators:
    def test_small_edit_changes_exactly_n(self):
        rng = np.random.default_rng(0)
        page = make_page("ascii", 200)
        edited = small_edit(page, 5, rng)
        differing = sum(1 for a, b in zip(page, edited) if a != b)
        assert differing == 5

    def test_small_edit_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ReproError):
            small_edit(b"abc", 4, rng)
        with pytest.raises(ReproError):
            small_edit(b"abc", 0, rng)

    def test_cut_and_paste_preserves_multiset(self):
        rng = np.random.default_rng(1)
        page = make_page("random", 100)
        switched = cut_and_paste(page, rng, block_bytes=10)
        assert len(switched) == len(page)
        assert sorted(switched) == sorted(page)

    def test_cut_and_paste_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ReproError):
            cut_and_paste(b"ab", rng)
        with pytest.raises(ReproError):
            cut_and_paste(b"abcdefgh", rng, block_bytes=8)

    def test_attribute_update(self):
        page = b"name=alice;salary=00100;dept=sales"
        updated = attribute_update(page, 18, b"99999")
        assert updated == b"name=alice;salary=99999;dept=sales"
        with pytest.raises(ReproError):
            attribute_update(page, 30, b"too-long-for-the-space")

    def test_pseudo_update_mix_ratio(self):
        rng = np.random.default_rng(2)
        values = [make_page("ascii", 64, seed=i) for i in range(400)]
        requests = pseudo_update_mix(values, 0.5, rng)
        pseudo = sum(1 for before, after in requests if before == after)
        assert 120 < pseudo < 280  # ~200 expected

    def test_pseudo_update_mix_bounds(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ReproError):
            pseudo_update_mix([b"x"], 1.5, rng)


class TestRecordGenerator:
    def test_distinct_keys(self):
        records = make_records(200, 64)
        keys = [record.key for record in records]
        assert len(set(keys)) == 200

    def test_value_sizes(self):
        records = make_records(10, 100)
        assert all(len(record.value) == 100 for record in records)

    def test_loads_into_file(self):
        from repro.sdds import LHFile
        from repro.workloads import load_file

        file = LHFile(make_scheme(f=8, n=2), capacity_records=20)
        records = make_records(100, 32)
        client = load_file(file, records)
        assert file.record_count == 100
        assert client.search(records[0].key).status == "found"


class TestCollisionAnalysis:
    def test_prop1_exhaustive_zero_collisions(self):
        scheme = make_scheme(f=4, n=2)
        report = prop1_exhaustive(scheme, page_symbols=6)
        assert report.collisions == 0
        assert report.trials == 6 * 15 + 15 * 15 * 15  # C(6,1)*15 + C(6,2)*225

    def test_prop1_sampled_zero_collisions(self):
        scheme = make_scheme(f=8, n=3)
        report = prop1_sampled(scheme, page_symbols=50, trials=500)
        assert report.collisions == 0

    def test_prop1_rejects_large_field(self):
        with pytest.raises(ReproError):
            prop1_exhaustive(make_scheme(f=16, n=2), 4)

    def test_prop2_rate_order_of_magnitude(self):
        scheme = make_scheme(f=4, n=1)
        report = prop2_random_pairs(scheme, 8, trials=30000, seed=1)
        assert report.predicted_rate == pytest.approx(1 / 16)
        assert 0.03 < report.observed_rate < 0.1

    def test_prop4_rate_order_of_magnitude(self):
        scheme = make_scheme(f=4, n=1)
        report = prop4_switches(scheme, 10, 3, trials=30000, seed=2)
        assert 0.03 < report.observed_rate < 0.12

    def test_prop4_block_validation(self):
        with pytest.raises(ReproError):
            prop4_switches(make_scheme(f=4, n=1), 5, 5, 10)

    def test_sha1_no_observed_collisions(self):
        report = sha1_small_change_detection(trials=200, page_bytes=64)
        assert report.collisions == 0


class TestTables:
    def test_format_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["a-much-longer-name", 12345.678]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert all(len(line) <= 80 for line in lines)

    def test_float_rendering(self):
        text = format_table(["x"], [[0.000001], [0.0], [5.5]])
        assert "1.000e-06" in text
        assert "0" in text

    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
