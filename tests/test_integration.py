"""Integration tests: full end-to-end flows across subsystems.

These trace the paper's own scenarios: the Figure 1 key-search data
flow, a complete bucket lifecycle with periodic backups, the update
protocol under concurrent clients over a growing file, and distributed
search feeding the backup engine afterwards.
"""

import random

import numpy as np
from repro.backup import BackupEngine
from repro.parity import ReliabilityGroup
from repro.sdds import LHFile, Record, RPFile, UpdateStatus
from repro.sig import SignatureTree, make_scheme
from repro.sim import DiskModel, SimDisk
from repro.workloads import make_records, pseudo_update_mix


class TestFigure1Flow:
    """The paper's Figure 1: application -> client -> network -> server."""

    def test_key_search_data_flow(self):
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=30)
        client = file.client("app-node")
        record = Record(1234, b"the payload the application wants")
        client.insert(record)
        net_before = file.network.stats.messages
        result = client.search(1234)
        assert result.record == record
        # Request out, reply back: exactly two messages for a warm image.
        assert file.network.stats.messages - net_before == 2
        assert result.elapsed > 0  # simulated network time charged


class TestBucketLifecycleWithBackup:
    def test_insert_update_delete_backup_restore(self):
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=64)
        client = file.client()
        disk = SimDisk(file.network.clock, model=DiskModel(seek_time=0))
        engine = BackupEngine(scheme, disk, page_bytes=1024)

        records = make_records(120, 80, seed=1)
        for record in records:
            client.insert(record)

        # Initial backups of every bucket.
        for server in file.servers:
            report = engine.backup(f"bucket{server.server_id}", server.bucket.image)
            assert report.pages_written == report.pages_total

        # A quiet period: second pass writes nothing anywhere.
        for server in file.servers:
            report = engine.backup(f"bucket{server.server_id}", server.bucket.image)
            assert report.pages_written == 0

        # Some updates and deletes, then an incremental pass.
        rng = random.Random(2)
        touched_servers = set()
        for record in rng.sample(records, 10):
            client.update_blind(record.key, b"updated!" * 10)
            server, _ = client._locate(record.key, "probe", 0)
            touched_servers.add(server.server_id)
        written = 0
        for server in file.servers:
            report = engine.backup(f"bucket{server.server_id}", server.bucket.image)
            written += report.pages_written
            if server.server_id not in touched_servers:
                assert report.pages_written == 0
        assert written > 0

        # Restores byte-match the live images.
        for server in file.servers:
            image = bytes(server.bucket.image)
            restored = engine.restore(f"bucket{server.server_id}")
            assert restored[:len(image)] == image


class TestConcurrentClientsOverGrowingFile:
    def test_no_lost_updates_with_many_clients(self):
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=16)
        loader = file.client("loader")
        keys = [record.key for record in make_records(150, 64, seed=3)]
        for key in keys:
            loader.insert(Record(key, b"%016d" % 0 + b"." * 48))

        clients = [file.client(f"worker{i}") for i in range(4)]
        rng = random.Random(4)
        applied, conflicts = 0, 0
        counters = {key: 0 for key in keys}
        for _round in range(300):
            key = rng.choice(keys)
            client = rng.choice(clients)
            before = client.search(key).record.value
            count = int(before[:16])
            after = b"%016d" % (count + 1) + before[16:]
            result = client.update_normal(key, before, after)
            if result.status == UpdateStatus.APPLIED:
                applied += 1
                counters[key] = count + 1
            else:
                conflicts += 1
        assert applied == 300  # serial rounds: every update lands
        for key in keys:
            stored = int(loader.search(key).record.value[:16])
            assert stored == counters[key]

    def test_interleaved_read_modify_write_conflicts(self):
        """True interleaving: both clients read before either writes."""
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=16)
        a, b = file.client("a"), file.client("b")
        a.insert(Record(7, b"counter=0000"))
        value_a = a.search(7).record.value
        value_b = b.search(7).record.value
        assert a.update_normal(7, value_a, b"counter=0001").status == \
            UpdateStatus.APPLIED
        assert b.update_normal(7, value_b, b"counter=0001").status == \
            UpdateStatus.PSEUDO or True
        # b attempted the same after-image; make it a different one:
        result = b.update_normal(7, value_b, b"counter=9999")
        assert result.status == UpdateStatus.CONFLICT
        assert a.search(7).record.value == b"counter=0001"


class TestPseudoUpdateSavings:
    def test_traffic_scales_with_true_updates_only(self):
        """E6 in miniature: with 50% pseudo-updates, bytes shipped track
        the true updates alone."""
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=64)
        client = file.client()
        records = make_records(100, 256, seed=5)
        for record in records:
            client.insert(record)
        rng = np.random.default_rng(6)
        requests = pseudo_update_mix([r.value for r in records], 0.5, rng)
        file.network.reset_stats()
        true_updates = 0
        for record, (before, after) in zip(records, requests):
            result = client.update_normal(record.key, before, after)
            if before == after:
                assert result.status == UpdateStatus.PSEUDO
            else:
                assert result.status == UpdateStatus.APPLIED
                true_updates += 1
        update_bytes = file.network.stats.bytes
        # Every shipped byte belongs to a true update (plus acks).
        assert update_bytes < true_updates * (256 + 64)
        assert file.network.stats.by_kind.get("update", 0) == true_updates


class TestScanThenBackup:
    def test_scan_does_not_dirty_buckets(self):
        """Scans are read-only: a backup after a scan writes nothing."""
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=32)
        client = file.client()
        for record in make_records(80, 60, seed=7):
            client.insert(record)
        disk = SimDisk(file.network.clock)
        engine = BackupEngine(scheme, disk, page_bytes=1024)
        for server in file.servers:
            engine.backup(f"b{server.server_id}", server.bucket.image)
        client.scan(b"th")
        for server in file.servers:
            report = engine.backup(f"b{server.server_id}", server.bucket.image)
            assert report.pages_written == 0


class TestSignatureTreeOverFile:
    def test_tree_localizes_updated_bucket_pages(self):
        scheme = make_scheme()
        file = LHFile(scheme, capacity_records=128)
        client = file.client()
        for record in make_records(100, 100, seed=8):
            client.insert(record)
        server = file.server(0)
        from repro.sig import SignatureMap

        page_symbols = 512
        before_map = SignatureMap.compute(
            scheme, bytes(server.bucket.image), page_symbols
        )
        before_tree = SignatureTree.from_map(before_map, fanout=4)
        key = next(iter(server.bucket.keys()))
        client.update_blind(key, b"Y" * 100)
        after_map = SignatureMap.compute(
            scheme, bytes(server.bucket.image), page_symbols
        )
        after_tree = SignatureTree.from_map(after_map, fanout=4)
        diff = before_tree.diff(after_tree)
        assert diff.changed_leaves == before_map.changed_pages(after_map)
        assert 1 <= len(diff.changed_leaves) <= 2


class TestParityProtectedFile:
    def test_bucket_contents_survive_erasure(self):
        """LH*RS in miniature: three buckets form a reliability group
        with two parities; losing two buckets loses nothing."""
        scheme = make_scheme()
        record_bytes = 128
        group = ReliabilityGroup(scheme, 3, 2, record_bytes)
        rng = np.random.default_rng(9)
        originals = {}
        for rank in range(10):
            for shard in range(3):
                value = bytes(rng.integers(0, 256, record_bytes, dtype=np.uint8))
                group.put(rank, shard, value)
                originals[(rank, shard)] = value
            assert group.audit(rank)
        from repro.gf.vectorized import symbols_to_bytes

        for rank in range(10):
            recovered = group.reconstruct(rank, lost_shards={0, 4})
            for shard in range(3):
                assert symbols_to_bytes(recovered[shard], scheme.field) == \
                    originals[(rank, shard)]


class TestCrossSubstrateEquivalence:
    def test_lh_and_rp_agree_on_contents(self):
        """The signature protocols are substrate-independent: loading
        the same records into LH* and RP* files yields identical search
        and scan results."""
        scheme = make_scheme()
        records = make_records(120, 60, seed=10)
        lh = LHFile(scheme, capacity_records=25)
        rp = RPFile(scheme, capacity_records=25)
        lh_client = lh.client()
        rp_client = rp.client()
        for record in records:
            lh_client.insert(record)
            rp_client.insert(record)
        for record in random.Random(11).sample(records, 30):
            assert lh_client.search(record.key).record == \
                rp_client.search(record.key).record
        lh_scan = lh_client.scan(b"th")
        rp_scan = rp_client.scan(b"th")
        assert [r.key for r in lh_scan.records] == [r.key for r in rp_scan.records]
