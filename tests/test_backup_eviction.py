"""Tests for RAM-pressure bucket eviction ([LSS02], Section 6.2)."""

import pytest

from repro.backup import (
    BackupEngine,
    EvictionManager,
    deserialize_bucket,
    serialize_bucket,
)
from repro.errors import BackupError
from repro.sdds import Bucket, Record
from repro.sig import make_scheme
from repro.sim import SimDisk
from repro.workloads import make_page


def make_bucket(bucket_id, n_records=30, value_bytes=100, seed=0):
    bucket = Bucket(bucket_id)
    for i in range(n_records):
        bucket.insert(Record(bucket_id * 10_000 + i,
                             make_page("ascii", value_bytes, seed=seed + i)))
    return bucket


def make_manager(ram_budget_bytes, page_bytes=512):
    scheme = make_scheme(f=16, n=2)
    engine = BackupEngine(scheme, SimDisk(), page_bytes=page_bytes)
    return EvictionManager(engine, ram_budget_bytes)


class TestSerialization:
    def test_roundtrip(self):
        bucket = make_bucket(1)
        image = serialize_bucket(bucket)
        restored = deserialize_bucket(image, 1)
        assert list(restored.records()) == list(bucket.records())

    def test_deterministic_for_same_content(self):
        """Unchanged content serializes identically -- the property that
        makes re-eviction signature-cheap."""
        a = make_bucket(1, seed=5)
        b = make_bucket(1, seed=5)
        assert serialize_bucket(a) == serialize_bucket(b)

    def test_insertion_order_irrelevant(self):
        a = Bucket(0)
        b = Bucket(0)
        for key in (3, 1, 2):
            a.insert(Record(key, bytes([key])))
        for key in (1, 2, 3):
            b.insert(Record(key, bytes([key])))
        assert serialize_bucket(a) == serialize_bucket(b)

    def test_truncated_rejected(self):
        image = serialize_bucket(make_bucket(1))
        with pytest.raises(BackupError):
            deserialize_bucket(image[:10], 1)

    def test_empty_bucket(self):
        restored = deserialize_bucket(serialize_bucket(Bucket(9)), 9)
        assert len(restored) == 0


class TestResidency:
    def test_within_budget_nothing_evicted(self):
        manager = make_manager(ram_budget_bytes=1 << 22)
        for bucket_id in range(3):
            manager.add(make_bucket(bucket_id))
        assert manager.stats.evictions == 0
        assert len(manager.resident_ids) == 3

    def test_budget_pressure_evicts_lru(self):
        manager = make_manager(ram_budget_bytes=150_000)
        # Each bucket's heap is 64 KB+; four of them exceed the budget.
        for bucket_id in range(4):
            manager.add(make_bucket(bucket_id))
        assert manager.stats.evictions >= 1
        assert manager.resident_bytes <= 150_000

    def test_access_restores_evicted(self):
        manager = make_manager(ram_budget_bytes=150_000)
        originals = {}
        for bucket_id in range(4):
            bucket = make_bucket(bucket_id, seed=bucket_id)
            originals[bucket_id] = list(bucket.records())
            manager.add(bucket)
        for bucket_id in range(4):
            bucket = manager.access(bucket_id)
            assert list(bucket.records()) == originals[bucket_id]
        assert manager.stats.restores >= 1

    def test_unknown_bucket_rejected(self):
        manager = make_manager(1 << 20)
        with pytest.raises(BackupError):
            manager.access(7)

    def test_double_add_rejected(self):
        manager = make_manager(1 << 20)
        manager.add(make_bucket(1))
        with pytest.raises(BackupError):
            manager.add(make_bucket(1))

    def test_bad_budget_rejected(self):
        scheme = make_scheme(f=16, n=2)
        engine = BackupEngine(scheme, SimDisk(), page_bytes=512)
        with pytest.raises(BackupError):
            EvictionManager(engine, 0)


class TestSignatureEconomy:
    def test_reeviction_of_unchanged_bucket_writes_nothing(self):
        """The point of evicting through the signature map: a bucket
        whose content did not change since its last eviction costs zero
        disk writes to evict again."""
        manager = make_manager(ram_budget_bytes=1 << 22)
        bucket = make_bucket(1)
        manager.add(bucket)
        manager.evict(1)
        first_writes = manager.stats.pages_written
        assert first_writes > 0
        manager.access(1)           # restore, touch nothing
        manager.evict(1)            # evict again
        assert manager.stats.pages_written == first_writes
        assert manager.stats.pages_skipped > 0

    def test_reeviction_after_small_update_writes_little(self):
        manager = make_manager(ram_budget_bytes=1 << 22)
        bucket = make_bucket(1, n_records=60)
        manager.add(bucket)
        manager.evict(1)
        baseline = manager.stats.pages_written
        restored = manager.access(1)
        key = next(iter(restored.keys()))
        restored.update(key, b"x" * 100)
        manager.evict(1)
        delta = manager.stats.pages_written - baseline
        total_pages = (len(serialize_bucket(restored)) + 511) // 512
        assert 0 < delta < total_pages  # a few pages, not the bucket
