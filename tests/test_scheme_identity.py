"""Tests for self-describing scheme identities in persisted artifacts."""

import pytest

from repro.backup import BackupEngine
from repro.errors import BackupError, SignatureError
from repro.sig import PRIMITIVE, make_scheme
from repro.sig.signature import SchemeId
from repro.sim import SimDisk


class TestSchemeIdSerialization:
    @pytest.mark.parametrize("kwargs", [
        dict(f=16, n=2),
        dict(f=8, n=3),
        dict(f=8, n=3, variant=PRIMITIVE),
        dict(f=4, n=1),
    ])
    def test_roundtrip(self, kwargs):
        scheme_id = make_scheme(**kwargs).scheme_id
        assert SchemeId.from_bytes(scheme_id.to_bytes()) == scheme_id

    def test_twisted_identity_roundtrips(self):
        from repro.gf import GF
        from repro.sig import log_interpretation_scheme

        scheme_id = log_interpretation_scheme(GF(8), n=2).scheme_id
        restored = SchemeId.from_bytes(scheme_id.to_bytes())
        assert restored == scheme_id
        assert "twisted-log" in restored.variant

    def test_truncated_rejected(self):
        raw = make_scheme(f=16, n=2).scheme_id.to_bytes()
        for cut in (0, 3, len(raw) - 1):
            with pytest.raises(SignatureError):
                SchemeId.from_bytes(raw[:cut])

    def test_distinct_schemes_distinct_bytes(self):
        a = make_scheme(f=16, n=2).scheme_id.to_bytes()
        b = make_scheme(f=8, n=2).scheme_id.to_bytes()
        c = make_scheme(f=16, n=3).scheme_id.to_bytes()
        assert len({a, b, c}) == 3


class TestArchiveSchemeCheck:
    def test_mismatched_scheme_rejected_on_import(self):
        """An archive written under one scheme cannot silently poison an
        engine running another: comparisons would be meaningless."""
        writer = BackupEngine(make_scheme(f=16, n=2), SimDisk(), page_bytes=512)
        writer.backup("vol", bytes(1024))
        archive = writer.export_maps()
        reader = BackupEngine(make_scheme(f=8, n=3), SimDisk(), page_bytes=128)
        with pytest.raises(BackupError):
            reader.import_maps(archive)

    def test_matching_scheme_accepted(self):
        writer = BackupEngine(make_scheme(f=16, n=2), SimDisk(), page_bytes=512)
        writer.backup("vol", bytes(1024))
        reader = BackupEngine(make_scheme(f=16, n=2), SimDisk(), page_bytes=512)
        reader.import_maps(writer.export_maps())
        assert reader.signature_map("vol") == writer.signature_map("vol")
