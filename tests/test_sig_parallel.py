"""The process-parallel signing backend over shared-memory arenas.

The backend's contract is exactness first: for every scheme shape the
workers must reproduce ``scheme.sign`` byte-identically from the shared
arena, and the shared-memory block must never outlive the signing call
-- including when a worker or the parent raises mid-flight.
"""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignatureError
from repro.gf import GF
from repro.sig import (
    BatchSigner,
    PageArena,
    make_scheme,
    resolve_workers,
    scheme_from_spec,
    scheme_spec,
)
from repro.sig.twisted import log_interpretation_scheme

SCHEMES = {
    "gf16": make_scheme(f=16, n=2),
    "gf8": make_scheme(f=8, n=4),
    "gf16-twisted": log_interpretation_scheme(GF(16), n=2),
    "gf8-twisted": log_interpretation_scheme(GF(8), n=3),
}


def byte_pages(scheme, max_pages=6, max_symbols=40):
    symbol_bytes = scheme.scheme_id.symbol_bytes
    page = st.binary(min_size=0, max_size=max_symbols * symbol_bytes) \
        .map(lambda b: b[:len(b) - len(b) % symbol_bytes])
    return st.lists(page, min_size=0, max_size=max_pages)


def shm_segments():
    """Names of live POSIX shared-memory segments (Linux)."""
    return set(glob.glob("/dev/shm/*")) if os.path.isdir("/dev/shm") else set()


# ----------------------------------------------------------------------
# Worker configuration
# ----------------------------------------------------------------------

class TestResolveWorkers:

    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "5")
        assert resolve_workers() == 5

    def test_env_must_be_a_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "zero")
        with pytest.raises(SignatureError):
            resolve_workers()
        monkeypatch.setenv("REPRO_SIGN_WORKERS", "0")
        with pytest.raises(SignatureError):
            resolve_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIGN_WORKERS", raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_backend_validated(self):
        with pytest.raises(SignatureError):
            BatchSigner(SCHEMES["gf16"], backend="gpu")


# ----------------------------------------------------------------------
# Scheme specs: what travels to the workers
# ----------------------------------------------------------------------

class TestSchemeSpec:

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_round_trip_signs_identically(self, name):
        scheme = SCHEMES[name]
        rebuilt = scheme_from_spec(scheme_spec(scheme))
        assert rebuilt.scheme_id == scheme.scheme_id
        page = bytes(range(64))
        assert rebuilt.sign(page) == scheme.sign(page)

    def test_spec_is_hashable(self):
        # Specs key the worker-side scheme cache.
        assert len({scheme_spec(s) for s in SCHEMES.values()}) == len(SCHEMES)


# ----------------------------------------------------------------------
# Exactness: process backend == scheme.sign
# ----------------------------------------------------------------------

class TestProcessExactness:

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_process_backend_equals_reference(self, name, data):
        scheme = SCHEMES[name]
        pages = data.draw(byte_pages(scheme))
        signer = BatchSigner(scheme, workers=2, backend="process")
        assert signer.sign_many(pages) == [scheme.sign(p) for p in pages]

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_process_backend_over_arena_views(self, name):
        scheme = SCHEMES[name]
        symbol_bytes = scheme.scheme_id.symbol_bytes
        pages = [bytes([(i * 7 + j) % 256 for j in range(i * 9 * symbol_bytes)])
                 for i in range(12)]
        arena, views = PageArena.from_pages(pages, align=symbol_bytes)
        try:
            signer = BatchSigner(scheme, workers=2, backend="process")
            assert signer.sign_views(views) == [scheme.sign(p) for p in pages]
        finally:
            arena.close()

    def test_process_backend_large_batch_spans_workers(self):
        scheme = SCHEMES["gf16"]
        pages = [bytes([i % 256] * 400) for i in range(128)]
        # A small block budget forces multiple spans -> multiple tasks.
        signer = BatchSigner(scheme, workers=2, backend="process",
                             block_symbols=2048)
        assert signer.sign_many(pages) == [scheme.sign(p) for p in pages]

    def test_single_worker_process_backend_stays_in_process(self):
        scheme = SCHEMES["gf16"]
        signer = BatchSigner(scheme, workers=1, backend="process")
        pages = [b"abcd", b"efgh"]
        assert signer.sign_many(pages) == [scheme.sign(p) for p in pages]


# ----------------------------------------------------------------------
# Shared-memory lifetime
# ----------------------------------------------------------------------

class TestSharedMemoryCleanup:

    def test_no_segments_leak_after_signing(self):
        before = shm_segments()
        signer = BatchSigner(SCHEMES["gf16"], workers=2, backend="process")
        signer.sign_many([bytes([i % 256] * 256) for i in range(32)])
        assert shm_segments() - before == set()

    def test_arena_unlinked_when_signing_crashes(self, monkeypatch):
        """A mid-flight failure must still unlink the shared block."""
        from repro.sig import parallel

        before = shm_segments()

        def explode(*_args, **_kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel, "get_pool", explode)
        signer = BatchSigner(SCHEMES["gf16"], workers=2, backend="process")
        with pytest.raises(RuntimeError):
            signer.sign_many([b"abcd" * 64] * 8)
        assert shm_segments() - before == set()

    def test_owned_shared_arena_unlinks_on_close(self):
        before = shm_segments()
        arena = PageArena(4096, shared=True)
        arena.append(b"payload")
        assert arena.name is not None
        arena.close()
        arena.close()
        assert shm_segments() - before == set()

    def test_attached_arena_close_does_not_unlink(self):
        owner = PageArena(4096, shared=True)
        view = owner.append(b"shared-bytes")
        worker_side = PageArena.attach(owner.name, owner.used)
        try:
            assert bytes(worker_side.view(
                view.offset, view.length).memoryview()) == b"shared-bytes"
            worker_side.close()
            # The owner's mapping must still be alive after a worker detach.
            assert bytes(view.memoryview()) == b"shared-bytes"
        finally:
            owner.close()
