"""The batched signature engine: exactness properties and caching.

The engine's whole contract is *exactness at batch speed*: every fast
path must be byte-identical to the reference ``scheme.sign``.  These
tests state that as hypothesis properties over random page lists --
mixed lengths (empty pages included), both production fields, plain and
twisted schemes -- plus deterministic checks of the ladder caches, the
worker mode, the signer pool, and the tree bulk build.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageTooLongError, SignatureError
from repro.gf import GF
from repro.obs import MetricsRegistry, use_registry
from repro.sig import (
    BatchSigner,
    PowerLadderCache,
    SignatureMap,
    SignatureTree,
    concat_all,
    get_batch_signer,
    make_scheme,
    slice_pages,
)
from repro.sig.engine import DEFAULT_LADDERS, ladder_cache_info
from repro.sig.twisted import log_interpretation_scheme

#: id -> scheme factory results, built once: the paper's production
#: GF(2^16) n=2, the equal-strength GF(2^8) n=4, and a Proposition-6
#: twisted (log-interpretation) scheme per field.
SCHEMES = {
    "gf16": make_scheme(f=16, n=2),
    "gf8": make_scheme(f=8, n=4),
    "gf16-twisted": log_interpretation_scheme(GF(16), n=2),
    "gf8-twisted": log_interpretation_scheme(GF(8), n=3),
}


def pages_strategy(scheme, max_pages=8, max_symbols=50):
    """Lists of random symbol pages (mixed lengths, empties included)."""
    symbol = st.integers(0, scheme.field.size - 1)
    return st.lists(st.lists(symbol, min_size=0, max_size=max_symbols),
                    min_size=0, max_size=max_pages)


# ----------------------------------------------------------------------
# The core property: sign_many == the reference, page for page
# ----------------------------------------------------------------------

class TestBatchExactness:

    @pytest.mark.parametrize("name", sorted(SCHEMES))
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_sign_many_equals_reference(self, name, data):
        scheme = SCHEMES[name]
        pages = data.draw(pages_strategy(scheme))
        signer = BatchSigner(scheme)
        assert signer.sign_many(pages) == [scheme.sign(p) for p in pages]

    @pytest.mark.parametrize("name", ["gf16", "gf8-twisted"])
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_workers_equal_single_thread(self, name, data):
        scheme = SCHEMES[name]
        pages = data.draw(pages_strategy(scheme, max_pages=12))
        # Tiny block size forces multiple blocks -> the pool actually runs.
        pooled = BatchSigner(scheme, workers=3, block_symbols=64)
        assert pooled.sign_many(pages) == [scheme.sign(p) for p in pages]

    @settings(max_examples=20, deadline=None)
    @given(blob=st.binary(min_size=0, max_size=600),
           page_symbols=st.integers(1, 40))
    def test_sign_map_equals_per_slice_signing(self, blob, page_symbols):
        scheme = SCHEMES["gf16"]
        if len(blob) % 2:
            blob += b"\0"
        built = BatchSigner(scheme).sign_map(blob, page_symbols)
        reference = [scheme.sign_mapped(s.symbols)
                     for s in slice_pages(scheme, blob, page_symbols)]
        assert built.signatures == reference
        assert built == SignatureMap.compute(scheme, blob, page_symbols)

    def test_byte_pages_match_bytes_reference(self):
        scheme = SCHEMES["gf16"]
        rng = np.random.default_rng(5)
        pages = [rng.integers(0, 256, size=2 * n, dtype=np.uint8).tobytes()
                 for n in (0, 1, 7, 300, 4096)]
        signer = BatchSigner(scheme)
        assert signer.sign_many(pages) == [scheme.sign(p) for p in pages]

    def test_strict_enforces_certainty_bound(self):
        scheme = SCHEMES["gf8"]
        too_long = [0] * (scheme.max_page_symbols + 1)
        signer = BatchSigner(scheme)
        with pytest.raises(PageTooLongError):
            signer.sign_many([too_long])
        relaxed = signer.sign_many([too_long], strict=False)
        assert relaxed == [scheme.sign(too_long, strict=False)]

    def test_empty_batch(self):
        assert BatchSigner(SCHEMES["gf16"]).sign_many([]) == []


# ----------------------------------------------------------------------
# Tree bulk build == incremental build
# ----------------------------------------------------------------------

class TestTreeBulkBuild:

    @settings(max_examples=20, deadline=None)
    @given(blob=st.binary(min_size=2, max_size=800),
           page_symbols=st.integers(1, 32), fanout=st.integers(2, 5))
    def test_bulk_fold_equals_sequential_concat(self, blob, page_symbols,
                                                fanout):
        """Every internal node equals the concat_all fold of its group."""
        scheme = SCHEMES["gf16"]
        if len(blob) % 2:
            blob += b"\0"
        tree = BatchSigner(scheme).sign_tree(blob, page_symbols, fanout)
        for level in range(1, tree.height):
            children = tree.levels[level - 1]
            for index, node in enumerate(tree.levels[level]):
                group = children[index * fanout:(index + 1) * fanout]
                sig, total = concat_all(
                    scheme, [(c.signature, c.symbols) for c in group]
                )
                assert node.signature == sig
                assert node.symbols == total
        assert tree.root.signature == scheme.sign(blob, strict=False)

    def test_bulk_build_equals_incremental_updates(self):
        """Rebuilding after an edit == update_leaf on the old tree."""
        scheme = SCHEMES["gf16"]
        rng = np.random.default_rng(11)
        data = bytearray(rng.integers(0, 256, size=4096, dtype=np.uint8))
        signer = BatchSigner(scheme)
        tree = signer.sign_tree(bytes(data), page_symbols=64, fanout=4)
        data[1000] ^= 0x5A
        page = 1000 // 128   # 64 symbols = 128 bytes per page
        tree.update_leaf(page, scheme.sign(bytes(data[page * 128:(page + 1) * 128])))
        rebuilt = signer.sign_tree(bytes(data), page_symbols=64, fanout=4)
        for mine, theirs in zip(tree.levels, rebuilt.levels):
            assert mine == theirs

    def test_foreign_leaves_rejected(self):
        scheme = SCHEMES["gf16"]
        other = SCHEMES["gf8"]
        with pytest.raises(SignatureError):
            SignatureTree.from_leaves(scheme, [(other.sign(b"ab"), 1)])


# ----------------------------------------------------------------------
# Ladder caches, worker splitting, the signer pool, metrics
# ----------------------------------------------------------------------

class TestPowerLadderCache:

    def test_bundle_reuse_and_slicing(self):
        scheme = make_scheme(f=16, n=2)
        cache = PowerLadderCache()
        long = cache.exponents(scheme, 512)
        assert cache.misses == 1 and cache.hits == 0
        short = cache.exponents(scheme, 100)
        assert cache.hits == 1 and cache.misses == 1
        for full, sliced in zip(long, short):
            assert sliced.size == 100
            assert np.array_equal(full[:100], sliced)
        # Growing beyond the cached capacity is a (single) new miss.
        cache.exponents(scheme, 1024)
        assert cache.misses == 2

    def test_lru_eviction_and_clear(self):
        cache = PowerLadderCache(maxsize=2)
        schemes = [make_scheme(f=16, n=n) for n in (1, 2, 3)]
        for scheme in schemes:
            cache.exponents(scheme, 16)
        assert len(cache._bundles) == 2
        cache.clear()
        assert cache.hits == cache.misses == 0 == len(cache._bundles)

    def test_batch_paths_share_default_cache(self):
        scheme = make_scheme(f=16, n=2)
        BatchSigner(scheme).sign_many([b"ab" * 32])
        before = DEFAULT_LADDERS.hits
        BatchSigner(scheme).sign_many([b"cd" * 16])
        assert DEFAULT_LADDERS.hits > before
        info = ladder_cache_info()
        assert set(info) == {"bundle_hits", "bundle_misses",
                             "ladder_hits", "ladder_misses"}

    def test_invalid_sizes_rejected(self):
        with pytest.raises(SignatureError):
            PowerLadderCache(maxsize=0)
        with pytest.raises(SignatureError):
            BatchSigner(make_scheme(), workers=0)
        with pytest.raises(SignatureError):
            BatchSigner(make_scheme(), block_symbols=0)


class TestEnginePlumbing:

    def test_signer_pool_shares_instances(self):
        scheme = make_scheme(f=16, n=2)
        assert get_batch_signer(scheme) is get_batch_signer(scheme)
        # A distinct scheme object (same id) gets a fresh signer bound
        # to *that* object, never a stale one.
        clone = make_scheme(f=16, n=2)
        assert get_batch_signer(clone).scheme is clone

    def test_block_splitting_preserves_order(self):
        scheme = make_scheme(f=16, n=2)
        rng = np.random.default_rng(3)
        pages = [rng.integers(0, scheme.field.size, size=size).tolist()
                 for size in (30, 1, 0, 64, 17, 64, 2, 50)]
        tiny = BatchSigner(scheme, block_symbols=64)
        assert tiny.sign_many(pages) == [scheme.sign(p) for p in pages]

    def test_engine_metrics_emitted(self):
        registry = MetricsRegistry()
        scheme = make_scheme(f=16, n=2)
        with use_registry(registry):
            BatchSigner(scheme).sign_many([b"ab", b"cd", b"ef"])
        assert registry.total("sig.engine.batches") == 1
        assert registry.total("sig.engine.pages") == 3
        snapshot = registry.snapshot()
        assert snapshot["sig.sign_calls"] == {
            "algo=batch,field=gf16,variant=standard": 3
        }
