"""Tests for multi-pattern search and RP* range queries."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SDDSError, SignatureError
from repro.sdds import RPFile, Record
from repro.sig import MultiPatternSearcher, make_scheme


class TestMultiPatternSearcher:
    def test_basic_gf8(self):
        scheme = make_scheme(f=8, n=2)
        searcher = MultiPatternSearcher(scheme, [b"abra", b"cad", b"ra"])
        results = searcher.search(b"abracadabra")
        assert results == {0: [0, 7], 1: [4], 2: [2, 9]}

    def test_absent_patterns_omitted(self):
        scheme = make_scheme(f=8, n=2)
        searcher = MultiPatternSearcher(scheme, [b"xyz", b"abc"])
        results = searcher.search(b"abcabc")
        assert results == {1: [0, 3]}

    def test_gf16_both_alignments(self):
        scheme = make_scheme(f=16, n=2)
        searcher = MultiPatternSearcher(scheme, [b"NEEDLE"])
        assert searcher.search(b"..NEEDLE..")[0] == [2]   # even offset
        assert searcher.search(b".NEEDLE..")[0] == [1]    # odd offset

    def test_gf16_odd_pattern_rejected(self):
        scheme = make_scheme(f=16, n=2)
        with pytest.raises(SignatureError):
            MultiPatternSearcher(scheme, [b"abc"])

    def test_same_length_patterns_share_one_pass(self):
        scheme = make_scheme(f=8, n=2)
        searcher = MultiPatternSearcher(
            scheme, [b"aaa", b"bbb", b"ccc", b"abc"]
        )
        assert len(searcher._by_length) == 1  # one window length

    def test_duplicate_patterns_both_reported(self):
        scheme = make_scheme(f=8, n=2)
        searcher = MultiPatternSearcher(scheme, [b"dup", b"dup"])
        results = searcher.search(b"xxdupxx")
        assert results == {0: [2], 1: [2]}

    def test_empty_pattern_rejected(self):
        scheme = make_scheme(f=8, n=2)
        with pytest.raises(SignatureError):
            MultiPatternSearcher(scheme, [b"ok", b""])

    def test_no_patterns_rejected(self):
        with pytest.raises(SignatureError):
            MultiPatternSearcher(make_scheme(f=8, n=2), [])

    @given(st.binary(min_size=20, max_size=150), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_per_pattern_naive_search(self, haystack, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        scheme = make_scheme(f=8, n=2)
        patterns = []
        for _ in range(3):
            start = int(rng.integers(0, len(haystack) - 4))
            length = int(rng.integers(2, 5))
            patterns.append(haystack[start:start + length])
        searcher = MultiPatternSearcher(scheme, patterns)
        results = searcher.search(haystack)
        for index, pattern in enumerate(patterns):
            expected = [
                i for i in range(len(haystack) - len(pattern) + 1)
                if haystack[i:i + len(pattern)] == pattern
            ]
            assert results.get(index, []) == expected


class TestRPRangeSearch:
    def build(self, n_records=300, capacity=20, seed=8):
        file = RPFile(make_scheme(f=8, n=2), capacity_records=capacity)
        client = file.client()
        keys = random.Random(seed).sample(range(100_000), n_records)
        for key in keys:
            client.insert(Record(key, b"v%06d" % key))
        return file, client, sorted(keys)

    def test_matches_reference(self):
        file, client, keys = self.build()
        low, high = keys[50], keys[200]
        result = client.range_search(low, high)
        expected = [key for key in keys if low <= key < high]
        assert [record.key for record in result.records] == expected

    def test_results_ordered_across_buckets(self):
        file, client, keys = self.build()
        assert file.bucket_count > 3
        result = client.range_search(0, 1 << 32)
        got = [record.key for record in result.records]
        assert got == keys

    def test_empty_intersection(self):
        file, client, keys = self.build(n_records=30)
        gap_low = max(keys) + 1
        result = client.range_search(gap_low, gap_low + 100)
        assert result.records == ()

    def test_only_intersecting_buckets_queried(self):
        file, client, keys = self.build()
        narrow_low = keys[10]
        narrow_high = keys[11] + 1
        before = file.network.stats.messages
        client.range_search(narrow_low, narrow_high)
        probes = (file.network.stats.messages - before) // 2
        assert probes < file.bucket_count  # not a full broadcast

    def test_bad_range_rejected(self):
        file, client, _keys = self.build(n_records=10)
        with pytest.raises(SDDSError):
            client.range_search(100, 100)

    def test_values_intact(self):
        file, client, keys = self.build(n_records=50)
        result = client.range_search(keys[0], keys[-1] + 1)
        for record in result.records:
            assert record.value == b"v%06d" % record.key
