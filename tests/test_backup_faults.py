"""Fault injection: torn backups and disk failures.

The paper positions signature collisions against "irrecoverable disk
errors ... or software failures" (Section 2.1).  These tests inject
write failures mid-backup and verify the engine's crash discipline: the
signature map is updated only after all writes succeed, so an
interrupted pass never marks unwritten pages clean -- the retry
rewrites everything still outstanding.
"""

import numpy as np
import pytest

from repro.backup import BackupEngine
from repro.errors import BackupError
from repro.sig import make_scheme
from repro.sim import SimClock, SimDisk


class FaultyDisk(SimDisk):
    """A disk that fails the Nth write (then recovers)."""

    def __init__(self, *args, fail_on_write: int = -1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_on_write = fail_on_write
        self._writes_seen = 0

    def write_page(self, volume, index, data, page_size):
        self._writes_seen += 1
        if self._writes_seen == self.fail_on_write:
            raise IOError(f"injected disk failure on write #{self._writes_seen}")
        return super().write_page(volume, index, data, page_size)


def random_image(nbytes, seed=0):
    rng = np.random.default_rng(seed)
    return bytearray(rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes())


class TestTornBackup:
    def test_map_not_updated_on_failure(self):
        scheme = make_scheme(f=16, n=2)
        disk = FaultyDisk(SimClock(), fail_on_write=5)
        engine = BackupEngine(scheme, disk, page_bytes=512)
        image = bytes(random_image(16 * 512))
        with pytest.raises(IOError):
            engine.backup("vol", image)
        # The map must not exist: no page may be considered clean.
        with pytest.raises(BackupError):
            engine.signature_map("vol")

    def test_retry_completes_and_restores(self):
        scheme = make_scheme(f=16, n=2)
        disk = FaultyDisk(SimClock(), fail_on_write=5)
        engine = BackupEngine(scheme, disk, page_bytes=512)
        image = bytes(random_image(16 * 512, seed=1))
        with pytest.raises(IOError):
            engine.backup("vol", image)
        report = engine.backup("vol", image)  # disk recovered
        assert report.pages_written == 16     # everything retried
        assert engine.restore("vol")[:len(image)] == image

    def test_incremental_pass_interrupted(self):
        """Failure during an incremental pass: the old map survives, so
        the retry rewrites exactly the still-dirty pages."""
        scheme = make_scheme(f=16, n=2)
        disk = FaultyDisk(SimClock())
        engine = BackupEngine(scheme, disk, page_bytes=512)
        image = random_image(32 * 512, seed=2)
        engine.backup("vol", bytes(image))
        old_map = engine.signature_map("vol")
        for page in (3, 9, 20):
            image[page * 512] ^= 0xFF
        disk.fail_on_write = disk._writes_seen + 2  # fail on the 2nd dirty write
        with pytest.raises(IOError):
            engine.backup("vol", bytes(image))
        assert engine.signature_map("vol") is old_map  # state rolled back
        report = engine.backup("vol", bytes(image))
        assert report.pages_written == 3
        assert engine.restore("vol")[:len(image)] == bytes(image)

    def test_crash_consistency_property(self):
        """Property: after any injected failure point and one successful
        retry, the restored volume equals the source image."""
        scheme = make_scheme(f=16, n=2)
        for failure_point in range(1, 9):
            disk = FaultyDisk(SimClock(), fail_on_write=failure_point)
            engine = BackupEngine(scheme, disk, page_bytes=512)
            image = bytes(random_image(8 * 512, seed=failure_point))
            try:
                engine.backup("vol", image)
            except IOError:
                pass
            engine.backup("vol", image)
            assert engine.restore("vol")[:len(image)] == image
