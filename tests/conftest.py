"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import GF
from repro.sig import PRIMITIVE, make_scheme


@pytest.fixture(scope="session")
def gf4():
    """Tiny field for exhaustive experiments."""
    return GF(4)


@pytest.fixture(scope="session")
def gf8():
    """The paper's byte-symbol field."""
    return GF(8)


@pytest.fixture(scope="session")
def gf16():
    """The paper's production double-byte-symbol field."""
    return GF(16)


@pytest.fixture(scope="session")
def scheme8():
    """sig_{alpha,3} over GF(2^8): small symbols, n > 2."""
    return make_scheme(f=8, n=3)


@pytest.fixture(scope="session")
def scheme16():
    """The paper's production scheme: sig_{alpha,2} over GF(2^16)."""
    return make_scheme(f=16, n=2)


@pytest.fixture(scope="session")
def scheme8_primitive():
    """sig'_{alpha,3} over GF(2^8) (the all-primitive-powers variant)."""
    return make_scheme(f=8, n=3, variant=PRIMITIVE)


@pytest.fixture()
def rng():
    """Deterministic numpy generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


def pytest_addoption(parser):
    parser.addoption(
        "--slow", action="store_true", default=False,
        help="run slow statistical tests",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--slow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: slow statistical test")
