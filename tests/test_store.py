"""Durable signature-sealed storage plane: log, checkpoint, recovery.

The load-bearing properties of PR 5:

* every frame is sealed with the scheme's n-symbol signature, so a
  torn write or <= n corrupted symbols is detected with *certainty*
  (Proposition 1) -- recovery materializes exactly the longest
  certified log prefix;
* recovery with a sealed checkpoint folds only the post-checkpoint
  tail (Proposition 3) yet produces bytes and signature maps identical
  to a cold full replay and to ``SignatureMap.compute`` from scratch;
* mid-prefix damage is localized to condemned pages (Proposition 5),
  surfaced with their certified expected signatures so redundant peers
  can supply verified replacement content.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backup import BackupEngine
from repro.cluster import Cluster, Crash, FaultPlan, NodeState, RetryPolicy
from repro.errors import BackupError, StoreError
from repro.obs import MetricsRegistry, use_registry
from repro.sdds import Record, SDDSServer
from repro.sig import SignatureMap, get_batch_signer, make_scheme
from repro.store import (
    KIND_DELTA,
    KIND_PAGE,
    KIND_TRUNCATE,
    DurableDisk,
    Frame,
    FrameError,
    PageStore,
    SegmentedLog,
)
from repro.store import checkpoint as ckpt
from repro.store import frames as fr

SCHEME = make_scheme()                  # GF(2^16), n=2: the paper's default
PAGE_BYTES = 256
PAGE_SYMBOLS = PAGE_BYTES // 2


def compute_map(image: bytes, page_bytes: int = PAGE_BYTES) -> SignatureMap:
    return SignatureMap.compute(SCHEME, image,
                                page_bytes // SCHEME.scheme_id.symbol_bytes)


def assert_map_matches(store: PageStore, volume: str, image: bytes) -> None:
    """The warm map must equal a from-scratch compute over the bytes."""
    page_bytes = store.page_bytes_of(volume)
    expected = compute_map(image, page_bytes)
    produced = store.signature_map(volume)
    assert produced.signatures == expected.signatures
    assert produced.total_symbols == expected.total_symbols


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

class TestFrames:
    def test_roundtrip_all_kinds(self):
        seal = SCHEME.scheme_id.signature_bytes
        for kind, payload in (
                (KIND_PAGE, fr.encode_page(3, 64, b"x" * 64)),
                (KIND_DELTA, fr.encode_delta(4096, 128, b"\x01\x02")),
                (KIND_TRUNCATE, fr.encode_truncate(2048, 64))):
            frame = Frame(kind, 7, "vol", payload)
            encoded = fr.encode(SCHEME, frame)
            parsed, end, body_end = fr.parse_at(encoded, 0, seal)
            assert parsed == frame
            assert end == len(encoded) and body_end == end - seal
            assert SCHEME.sign(encoded[:body_end],
                               strict=False).to_bytes() == encoded[body_end:]

    def test_encode_many_equals_encode(self):
        frames = [Frame(KIND_PAGE, seq, "v",
                        fr.encode_page(seq, 32, bytes([seq]) * 32))
                  for seq in range(5)]
        assert fr.encode_many(SCHEME, frames) == \
            [fr.encode(SCHEME, frame) for frame in frames]

    def test_payload_codecs_roundtrip(self):
        assert fr.decode_page(fr.encode_page(9, 128, b"abc")) == \
            (9, 128, b"abc")
        assert fr.decode_delta(fr.encode_delta(77, 5, b"\xff")) == \
            (77, 5, b"\xff")
        assert fr.decode_truncate(fr.encode_truncate(12, 64)) == (12, 64)

    def test_truncated_payloads_raise_frame_error(self):
        for decoder in (fr.decode_page, fr.decode_delta, fr.decode_truncate):
            with pytest.raises(FrameError):
                decoder(b"\x01")

    def test_parse_rejects_bad_magic_and_short_buffers(self):
        encoded = bytearray(fr.encode(
            SCHEME, Frame(KIND_PAGE, 0, "v", fr.encode_page(0, 32, b"y" * 32))
        ))
        seal = SCHEME.scheme_id.signature_bytes
        assert fr.parse_at(encoded[:-1], 0, seal) is None   # torn mid-frame
        encoded[0] ^= 0xFF
        assert fr.parse_at(encoded, 0, seal) is None        # bad magic


# ----------------------------------------------------------------------
# Segmented log
# ----------------------------------------------------------------------

def _page_frame(seq: int, index: int = 0, fill: int = 0) -> Frame:
    return Frame(KIND_PAGE, seq, "vol",
                 fr.encode_page(index, 64, bytes([fill]) * 64))


class TestSegmentedLog:
    def test_append_scan_certifies_everything(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME)
        frames = [_page_frame(seq, seq, seq) for seq in range(8)]
        offsets = log.append_many(frames)
        assert offsets == sorted(offsets)
        scan = log.scan()
        assert [sf.frame for sf in scan.frames] == frames
        assert not scan.corrupt and scan.torn_start is None
        assert scan.certified_end == log.total_bytes

    @pytest.mark.parametrize("flush", ["frame", "group"])
    def test_segments_roll_and_positions_stay_absolute(self, tmp_path,
                                                       flush):
        log = SegmentedLog(tmp_path, SCHEME, segment_bytes=4096,
                           flush=flush)
        for seq in range(80):
            log.append(_page_frame(seq, seq, seq % 251))
        assert log.segment_count > 1
        scan = log.scan()
        assert len(scan.frames) == 80 and not scan.corrupt
        assert scan.frames[-1].end == log.total_bytes

    def test_torn_tail_is_everything_after_last_valid_frame(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME)
        log.append(_page_frame(0))
        keep = log.total_bytes
        log.append(_page_frame(1))
        log.crash_cut(keep + 10)        # the second frame is torn mid-write
        scan = log.scan()
        assert len(scan.frames) == 1
        assert scan.torn_start == keep and scan.torn_bytes == 10

    def test_bit_rot_rejected_with_resync(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME)
        log.append(_page_frame(0, 0, 1))
        second = log.total_bytes
        log.append(_page_frame(1, 1, 2))
        third = log.total_bytes
        log.append(_page_frame(2, 2, 3))
        log.corrupt_bytes(second + 40, b"\xff")     # inside frame 1's data
        scan = log.scan()
        assert [sf.frame.seq for sf in scan.frames] == [0, 2]
        assert len(scan.corrupt) == 1
        region = scan.corrupt[0]
        assert (region.start, region.reason) == (second, "seal")
        assert region.end == third
        assert region.frame is not None and region.frame.seq == 1

    def test_trusted_prefix_skips_seal_checks(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME)
        log.append(_page_frame(0))
        trusted = log.total_bytes
        log.append(_page_frame(1))
        log.corrupt_bytes(30, b"\x55")              # rot inside frame 0
        assert len(log.scan().corrupt) == 1
        scan = log.scan(trusted_bytes=trusted)      # checkpointed prefix
        assert len(scan.frames) == 2 and not scan.corrupt

    def test_truncate_to_validates_bounds(self, tmp_path):
        log = SegmentedLog(tmp_path, SCHEME)
        log.append(_page_frame(0))
        with pytest.raises(StoreError):
            log.truncate_to(log.total_bytes + 1)
        assert log.truncate_to(log.total_bytes) == 0


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

class TestCheckpoint:
    def _snapshot(self, store: PageStore) -> ckpt.Checkpoint:
        store.checkpoint()
        loaded = ckpt.load(store.directory, SCHEME)
        assert loaded is not None
        return loaded

    def test_roundtrip_preserves_warm_state(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_image("a", bytes(range(256)) * 4, PAGE_BYTES)
        snapshot = self._snapshot(store)
        assert snapshot.position == store.log_bytes
        volume = snapshot.volumes["a"]
        assert volume.image_len == 1024
        assert volume.map.signatures == store.signature_map("a").signatures
        assert volume.tree.root == store.signature_tree("a").root

    def test_any_flipped_byte_invalidates(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_image("a", b"z" * 512, PAGE_BYTES)
        store.checkpoint()
        path = store.directory / ckpt.FILENAME
        blob = bytearray(path.read_bytes())
        for at in (0, len(blob) // 2, len(blob) - 1):
            flipped = bytearray(blob)
            flipped[at] ^= 0x01
            assert ckpt.decode(bytes(flipped), SCHEME) is None

    def test_foreign_scheme_rejected(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_image("a", b"q" * 256, PAGE_BYTES)
        store.checkpoint()
        blob = (store.directory / ckpt.FILENAME).read_bytes()
        assert ckpt.decode(blob, make_scheme(f=8, n=4)) is None


# ----------------------------------------------------------------------
# PageStore: writing and materialization
# ----------------------------------------------------------------------

class TestPageStoreWrites:
    def test_opening_an_existing_log_requires_recover(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_page("v", 0, b"a" * PAGE_BYTES, PAGE_BYTES)
        store.close()
        with pytest.raises(StoreError, match="recover"):
            PageStore(SCHEME, tmp_path / "s")

    def test_short_final_page_sets_length(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_page("v", 0, b"a" * PAGE_BYTES, PAGE_BYTES)
        store.write_page("v", 1, b"b" * 10)
        assert store.image_len("v") == PAGE_BYTES + 10
        assert store.read_page("v", 1) == b"b" * 10
        assert_map_matches(store, "v", store.image("v"))

    def test_page_size_is_validated(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        with pytest.raises(StoreError):
            store.ensure_volume("odd", 255)          # not symbol-aligned
        with pytest.raises(StoreError):
            store.ensure_volume("huge", 2 * (SCHEME.max_page_symbols + 1))
        with pytest.raises(StoreError):
            store.write_page("v", 0, b"x" * 100, 64)  # data > page

    def test_record_extent_logs_only_the_xor(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        image = bytearray(b"\x11" * 512)
        store.write_image("v", bytes(image), PAGE_BYTES)
        before = bytes(image[100:140])
        after = bytes(40)
        image[100:140] = after
        offset = store.record_extent("v", 100, before, after, len(image))
        assert offset is not None
        assert store.image("v") == bytes(image)
        assert_map_matches(store, "v", bytes(image))
        assert store.record_extent("v", 0, b"", b"", len(image)) is None

    def test_truncate_and_regrow(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_image("v", b"\x77" * 1024, PAGE_BYTES)
        store.truncate("v", 300)
        assert store.image("v") == b"\x77" * 300
        store.truncate("v", 600)
        assert store.image("v") == b"\x77" * 300 + bytes(300)
        assert_map_matches(store, "v", store.image("v"))

    def test_mismatched_page_size_rejected(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.ensure_volume("v", PAGE_BYTES)
        with pytest.raises(StoreError):
            store.ensure_volume("v", 2 * PAGE_BYTES)


# ----------------------------------------------------------------------
# PageStore: certified recovery
# ----------------------------------------------------------------------

def _churned_store(directory: Path, checkpoint: bool = True):
    """A store with an image, deltas before and after a checkpoint.

    Returns ``(store, image, mutations)`` where each mutation is
    ``(offset, after_bytes, log_end_after_frame)``.
    """
    store = PageStore(SCHEME, directory)
    image = bytearray(bytes(range(256)) * 8)        # 8 pages
    store.write_image("v", bytes(image), PAGE_BYTES)
    mutations = []

    def mutate(offset: int, fill: int) -> None:
        before = bytes(image[offset:offset + 32])
        after = bytes([fill]) * 32
        image[offset:offset + 32] = after
        store.record_extent("v", offset, before, after, len(image))
        mutations.append((offset, after, store.log_bytes))

    for step in range(6):
        mutate(step * 300, 0xA0 + step)
    if checkpoint:
        store.checkpoint()
    for step in range(4):
        mutate(step * 410 + 64, 0xC0 + step)
    return store, image, mutations


class TestRecovery:
    def test_clean_recovery_with_and_without_checkpoint(self, tmp_path):
        for use_checkpoint in (True, False):
            directory = tmp_path / f"s-{use_checkpoint}"
            store, image, _ = _churned_store(directory)
            store.close()
            recovered, report = PageStore.recover(
                SCHEME, directory, use_checkpoint=use_checkpoint)
            assert report.clean
            assert report.used_checkpoint is use_checkpoint
            assert recovered.image("v") == bytes(image)
            assert_map_matches(recovered, "v", bytes(image))
            if use_checkpoint:
                assert report.frames_folded < report.frames_valid
            recovered.close()

    def test_tail_verify_matches_full_verify(self, tmp_path):
        store, image, _ = _churned_store(tmp_path / "s")
        store.close()
        recovered, report = PageStore.recover(SCHEME, tmp_path / "s",
                                              verify="tail")
        assert report.clean and report.used_checkpoint
        assert recovered.image("v") == bytes(image)
        assert_map_matches(recovered, "v", bytes(image))
        recovered.close()
        with pytest.raises(StoreError):
            PageStore.recover(SCHEME, tmp_path / "s", verify="bogus")

    def test_torn_tail_rolls_back_to_last_certified_frame(self, tmp_path):
        store, image, mutations = _churned_store(tmp_path / "s",
                                                 checkpoint=False)
        cut = mutations[-1][2] - 7       # mid final frame
        store.crash_cut(cut)
        store.close()
        recovered, report = PageStore.recover(SCHEME, tmp_path / "s")
        # The final mutation was torn: recovery must land exactly on the
        # state after the previous frame.
        undone = bytearray(bytes(range(256)) * 8)
        for m_offset, m_after, m_end in mutations:
            if m_end <= cut:
                undone[m_offset:m_offset + 32] = m_after
        assert report.torn_bytes == cut - mutations[-2][2]
        assert recovered.image("v") == bytes(undone)
        assert_map_matches(recovered, "v", bytes(undone))
        assert recovered.log_bytes == mutations[-2][2]
        recovered.close()

    def test_checkpoint_beyond_certified_prefix_is_rejected(self, tmp_path):
        store, _image, mutations = _churned_store(tmp_path / "s")
        checkpoint_position = ckpt.load(store.directory, SCHEME).position
        store.crash_cut(checkpoint_position - 5)    # tear the checkpointed tail
        store.close()
        for verify in ("full", "tail"):
            recovered, report = PageStore.recover(SCHEME, tmp_path / "s",
                                                  verify=verify)
            assert not report.used_checkpoint
            assert_map_matches(recovered, "v", recovered.image("v"))
            recovered.close()

    def test_writes_continue_after_recovery(self, tmp_path):
        store, image, _ = _churned_store(tmp_path / "s")
        store.close()
        recovered, _report = PageStore.recover(SCHEME, tmp_path / "s")
        recovered.write_page("v", 0, b"\x00" * PAGE_BYTES)
        final = b"\x00" * PAGE_BYTES + bytes(image[PAGE_BYTES:])
        recovered.close()
        again, report = PageStore.recover(SCHEME, tmp_path / "s")
        assert report.clean
        assert again.image("v") == final
        assert_map_matches(again, "v", final)
        again.close()


# ----------------------------------------------------------------------
# The acceptance sweep: seeded faults, certain detection, exact blame
# ----------------------------------------------------------------------

class TestFaultSweep:
    """Every injected corruption detected; condemnation names exactly
    the damaged pages; patched content is verified by certified
    signatures; the result is byte-identical to the last durable state.
    """

    @pytest.mark.parametrize("victim_index", [0, 2, 4])
    @pytest.mark.parametrize("rot_at", [20, 40, 60])
    def test_sweep(self, tmp_path, victim_index, rot_at):
        directory = tmp_path / f"s-{victim_index}-{rot_at}"
        store, image, mutations = _churned_store(directory)
        # Tear the log mid-way through the final delta frame.
        cut = mutations[-1][2] - 9
        # Rot two bytes (<= n = 2 symbols) inside a pre-checkpoint
        # delta frame's payload: detection is then *certain* (Prop. 1).
        victim_offset, _after, victim_end = mutations[victim_index]
        victim_pages = sorted({victim_offset // PAGE_BYTES,
                               (victim_offset + 31) // PAGE_BYTES})
        store.corrupt_log(victim_end - 20, b"\xff\xff")
        store.crash_cut(cut)
        store.close()

        # The last durable state: initial image + every mutation whose
        # frame fully hit the log -- including the rotted one (it was
        # durable; the *log copy* rotted afterwards).
        durable = bytearray(bytes(range(256)) * 8)
        for offset, after, end in mutations:
            if end <= cut:
                durable[offset:offset + 32] = after

        recovered, report = PageStore.recover(SCHEME, directory)
        assert report.torn_bytes > 0
        assert report.corrupt_frames == 1
        assert sorted(report.condemned.get("v", ())) == victim_pages
        expected = report.expected["v"]
        assert sorted(expected) == victim_pages

        # Patch each condemned page from the reference copy; certified
        # signatures must verify the patch before it is accepted.
        signer = get_batch_signer(SCHEME)
        for page in victim_pages:
            patch = bytes(durable[page * PAGE_BYTES:(page + 1) * PAGE_BYTES])
            sealed = signer.sign_map(patch, PAGE_SYMBOLS).signatures[0]
            assert sealed == expected[page]
            recovered.write_page("v", page, patch)

        assert recovered.image("v") == bytes(durable)
        assert_map_matches(recovered, "v", bytes(durable))
        recovered.close()

    def test_rot_in_superseded_frame_condemns_nothing(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_page("v", 0, b"\x01" * PAGE_BYTES, PAGE_BYTES)
        first_end = store.log_bytes
        store.write_page("v", 0, b"\x02" * PAGE_BYTES)   # supersedes it
        store.checkpoint()
        store.corrupt_log(first_end - 50, b"\xff\xff")
        store.close()
        recovered, report = PageStore.recover(SCHEME, tmp_path / "s")
        assert report.corrupt_frames == 1
        assert not any(report.condemned.values())
        assert recovered.image("v") == b"\x02" * PAGE_BYTES
        recovered.close()


# ----------------------------------------------------------------------
# Scrub (silent rot on the materialized image)
# ----------------------------------------------------------------------

class TestScrub:
    def test_scrub_localizes_silent_rot(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        image = bytes(range(256)) * 4
        store.write_image("v", image, PAGE_BYTES)
        store.signature_map("v")        # certify (warm) the clean state
        state = store._require("v")
        state.replica.data[2 * PAGE_BYTES + 5] ^= 0xFF    # silent bit rot
        report = store.scrub("v")
        assert report.condemned == (2,)
        assert report.expected[2] == compute_map(image).signatures[2]
        # After the scrub the warm state matches the (rotted) bytes.
        assert_map_matches(store, "v", store.image("v"))

    def test_clean_scrub_condemns_nothing(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "s")
        store.write_image("v", b"\x42" * 1024, PAGE_BYTES)
        report = store.scrub("v")
        assert report.condemned == () and not report.expected


# ----------------------------------------------------------------------
# Property: arbitrary histories + arbitrary torn cuts
# ----------------------------------------------------------------------

HYP_PAGE = 64
HYP_PAGES = 6


def _apply_model(image: bytearray, op) -> None:
    """Mirror of PageStore._apply for the model image."""
    kind = op[0]
    if kind == "page":
        _kind, index, data = op
        offset = index * HYP_PAGE
        if offset > len(image):
            image.extend(bytes(offset - len(image)))
        end = offset + len(data)
        if end > len(image):
            image.extend(bytes(end - len(image)))
        image[offset:end] = data
        if offset + HYP_PAGE >= len(image) and len(image) > end:
            del image[end:]
    elif kind == "delta":
        _kind, offset, content = op
        image[offset:offset + len(content)] = content
    elif kind == "trunc":
        _kind, length = op
        if length < len(image):
            del image[length:]
        else:
            image.extend(bytes(length - len(image)))


_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("page"),
                  st.integers(0, HYP_PAGES - 1),
                  st.binary(min_size=2, max_size=HYP_PAGE)
                  .filter(lambda b: len(b) % 2 == 0)),
        st.tuples(st.just("delta"),
                  st.integers(0, HYP_PAGES * HYP_PAGE - 32).map(
                      lambda o: o - o % 2),
                  st.binary(min_size=2, max_size=32)
                  .filter(lambda b: len(b) % 2 == 0)),
        st.tuples(st.just("trunc"),
                  st.integers(1, HYP_PAGES * HYP_PAGE).map(
                      lambda n: n - n % 2)),
        st.tuples(st.just("ckpt")),
    ),
    min_size=1, max_size=12,
)


class TestRecoveryProperty:
    @settings(max_examples=20, deadline=None)
    @given(ops=_OPS, cut_fraction=st.floats(0.0, 1.0), data=st.data())
    def test_recovery_is_the_longest_certified_prefix(self, ops,
                                                      cut_fraction, data):
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "s"
            store = PageStore(SCHEME, directory)
            image = bytearray((bytes(range(256)) * 2)[:HYP_PAGES * HYP_PAGE])
            store.write_image("v", bytes(image), HYP_PAGE)
            baseline = store.log_bytes
            # (log end, image bytes) after every single-frame operation.
            snapshots = [(baseline, bytes(image))]
            for op in ops:
                if op[0] == "page":
                    _kind, index, content = op
                    if index * HYP_PAGE > len(image):
                        continue                      # no holes past the end
                    store.write_page("v", index, content)
                elif op[0] == "delta":
                    _kind, offset, content = op
                    if offset + len(content) > len(image):
                        continue
                    before = bytes(image[offset:offset + len(content)])
                    store.record_extent("v", offset, before, content,
                                        len(image))
                elif op[0] == "trunc":
                    store.truncate("v", op[1])
                else:
                    store.checkpoint()
                    continue
                _apply_model(image, op)
                snapshots.append((store.log_bytes, bytes(image)))
            total = store.log_bytes
            cut = baseline + int(cut_fraction * (total - baseline))
            store.crash_cut(cut)
            store.close()

            surviving = [s for s in snapshots if s[0] <= cut]
            expected_end, expected_image = surviving[-1]
            for use_checkpoint in (True, False):
                recovered, report = PageStore.recover(
                    SCHEME, directory, use_checkpoint=use_checkpoint)
                try:
                    assert recovered.image("v") == expected_image
                    assert_map_matches(recovered, "v", expected_image)
                    assert not any(report.condemned.values())
                    assert report.corrupt_frames == 0
                    assert recovered.log_bytes == expected_end
                finally:
                    recovered.close()


# ----------------------------------------------------------------------
# Consumers: DurableDisk under the backup engine
# ----------------------------------------------------------------------

class TestDurableDisk:
    def _engine(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "disk")
        disk = DurableDisk(store)
        engine = BackupEngine(SCHEME, disk, page_bytes=PAGE_BYTES)
        return store, disk, engine

    def test_backup_restore_roundtrip_survives_recovery(self, tmp_path):
        store, disk, engine = self._engine(tmp_path)
        image = bytes(range(256)) * 6
        engine.backup("bucket", image)
        assert engine.restore("bucket", verify=True) == image
        mutated = b"\x00" * 64 + image[64:]
        report = engine.backup("bucket", mutated)     # only changed pages
        assert report.pages_written < report.pages_total
        assert engine.restore("bucket", verify=True) == mutated
        store.close()                                  # crash
        recovered, report = PageStore.recover(SCHEME, tmp_path / "disk")
        assert report.clean
        fresh = DurableDisk(recovered)
        assert fresh.read_volume("bucket") == mutated
        assert_map_matches(recovered, "bucket", mutated)
        recovered.close()

    def test_stats_and_interface_match_simdisk(self, tmp_path):
        _store, disk, _engine = self._engine(tmp_path)
        disk.write_page("v", 0, b"a" * PAGE_BYTES, PAGE_BYTES)
        assert disk.has_page("v", 0) and not disk.has_page("v", 9)
        assert disk.volume_pages("v") == [0]
        assert disk.read_page("v", 0) == b"a" * PAGE_BYTES
        assert disk.stats.writes == 1 and disk.stats.reads == 1
        assert disk.stats.bytes_written == PAGE_BYTES
        with pytest.raises(BackupError):
            disk.read_page("v", 7)
        with pytest.raises(BackupError):
            disk.write_page("v", 0, b"x" * (PAGE_BYTES + 2), PAGE_BYTES)

    def test_silent_rot_is_caught_by_both_scrubs(self, tmp_path):
        store, disk, engine = self._engine(tmp_path)
        image = bytes(range(256)) * 4
        engine.backup("bucket", image)
        store.signature_map("bucket")   # certify (warm) the clean state
        disk.corrupt_page("bucket", 1, position=3)
        assert engine.scrub("bucket") == [1]           # engine's own map
        report = store.scrub("bucket")                 # store's warm state
        assert report.condemned == (1,)
        assert report.expected[1] == compute_map(image).signatures[1]


# ----------------------------------------------------------------------
# Consumers: durable cluster nodes
# ----------------------------------------------------------------------

class TestDurableCluster:
    def _run(self, tmp_path, seed=11):
        plan = FaultPlan(crashes=(Crash("node1", at=0.05, recover_at=0.2),))
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(servers=3, seed=seed, plan=plan,
                              retry=RetryPolicy.patient(),
                              durable_dir=tmp_path / "cluster")
            client = cluster.client()
            for key in range(24):
                assert client.insert(key, f"value-{key}".encode()).ok
            cluster.settle()
        return cluster, registry

    def test_crash_recovers_by_certified_local_replay(self, tmp_path):
        cluster, registry = self._run(tmp_path)
        node = cluster.nodes[1]
        assert node.state is NodeState.UP
        assert registry.total("cluster.durable_recoveries", node="node1") == 1
        assert registry.total("cluster.durable_fallbacks") == 0
        assert registry.total("cluster.recoveries", node="node1") == 1
        cluster.check_replicas()

    def test_recovered_node_serves_and_stays_durable(self, tmp_path):
        cluster, _registry = self._run(tmp_path)
        client = cluster.client()
        for key in (1, 4, 7, 13):
            assert client.search(key).status == "found"
        node = cluster.nodes[1]
        assert node.store is not None
        assert node.store.image(node.IMAGE_VOLUME) == node.image_bytes()

    def test_unrecoverable_log_falls_back_to_parity(self, tmp_path):
        plan = FaultPlan(crashes=(Crash("node1", at=0.05, recover_at=0.2),))
        registry = MetricsRegistry()
        with use_registry(registry):
            cluster = Cluster(servers=3, seed=3, plan=plan,
                              retry=RetryPolicy.patient(),
                              durable_dir=tmp_path / "cluster")
            client = cluster.client()
            for key in range(12):
                assert client.insert(key, f"value-{key}".encode()).ok

            node = cluster.nodes[1]
            original_crash = node.crash

            def crash_and_wipe():
                store_dir = node.store_dir
                original_crash()
                for segment in store_dir.glob("seg-*.log"):
                    segment.write_bytes(b"\x00" * segment.stat().st_size)

            node.crash = crash_and_wipe
            cluster.settle()
        assert node.state is NodeState.UP
        assert registry.total("cluster.durable_fallbacks") == 1
        assert registry.total("cluster.repair_bytes", phase="parity") > 0
        cluster.check_replicas()
        client = cluster.client()
        for key in range(12):
            assert client.search(key).status == "found"


# ----------------------------------------------------------------------
# Consumers: durable SDDS server
# ----------------------------------------------------------------------

class TestDurableServer:
    def test_mutations_survive_crash_and_certified_recovery(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "srv", checkpoint_every=16)
        server = SDDSServer(0, SCHEME, capacity_records=64)
        server.enable_durability(store, page_bytes=PAGE_BYTES)
        for key in range(30):
            assert server.insert(Record(key, f"payload-{key:04d}".encode()))
        outcome = server.conditional_update(5, b"updated-0005",
                                            SCHEME.sign(b"payload-0005"))
        assert outcome.name == "APPLIED"
        server.delete(3)
        expected = {record.key: record.value
                    for record in server.bucket.records()}
        store.close()                                  # crash

        recovered, report = PageStore.recover(SCHEME, tmp_path / "srv")
        assert report.clean and report.used_checkpoint
        rebuilt = SDDSServer.recover_durable(0, SCHEME, recovered,
                                             capacity_records=64)
        assert {record.key: record.value
                for record in rebuilt.bucket.records()} == expected
        for name in recovered.volumes():
            assert_map_matches(recovered, name, recovered.image(name))
        recovered.close()

    def test_durable_volumes_track_the_live_heap(self, tmp_path):
        store = PageStore(SCHEME, tmp_path / "srv")
        server = SDDSServer(0, SCHEME, capacity_records=32)
        server.enable_durability(store, page_bytes=PAGE_BYTES)
        for key in range(10):
            server.insert(Record(key, bytes([key]) * 20))
        heap_volume = f"{server.name}.heap"
        assert store.image(heap_volume) == bytes(server.bucket.heap.image)
        assert_map_matches(store, heap_volume, store.image(heap_volume))
        with pytest.raises(Exception):
            server.enable_durability(store)            # double enable
        store.close()
