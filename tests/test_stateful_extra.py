"""More stateful machines: RP* files and the LH*RS store."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.parity import LHRSStore
from repro.sdds import Record, RPFile, UpdateStatus
from repro.sig import make_scheme


class RPFileMachine(RuleBasedStateMachine):
    """RP* interval/image invariants under random operation streams."""

    def __init__(self):
        super().__init__()
        scheme = make_scheme(f=8, n=2)
        self.file = RPFile(scheme, capacity_records=6)
        self.client = self.file.client()
        self.stale = self.file.client("stale")
        self.reference: dict[int, bytes] = {}

    @rule(key=st.integers(0, 400), fill=st.integers(0, 255))
    def insert(self, key, fill):
        value = bytes([fill]) * 16
        result = self.client.insert(Record(key, value))
        if key in self.reference:
            assert result.status == "duplicate"
        else:
            assert result.status == "inserted"
            self.reference[key] = value

    @rule(key=st.integers(0, 400))
    def search(self, key):
        result = self.client.search(key)
        if key in self.reference:
            assert result.record.value == self.reference[key]
        else:
            assert result.status == "missing"

    @rule(data=st.data())
    def search_stale(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.stale.search(key).status == "found"

    @rule(data=st.data(), fill=st.integers(0, 255))
    def update(self, data, fill):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        before = self.reference[key]
        after = bytes([fill]) * 16
        result = self.client.update_normal(key, before, after)
        if before == after:
            assert result.status == UpdateStatus.PSEUDO
        else:
            assert result.status == UpdateStatus.APPLIED
            self.reference[key] = after

    @rule(data=st.data())
    def delete(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.client.delete(key).status == "deleted"
        del self.reference[key]

    @rule(low=st.integers(0, 400), span=st.integers(1, 100))
    def range_search(self, low, span):
        result = self.client.range_search(low, low + span)
        expected = sorted(k for k in self.reference if low <= k < low + span)
        assert [record.key for record in result.records] == expected

    @invariant()
    def placement(self):
        self.file.check_placement()

    @invariant()
    def counts(self):
        assert self.file.record_count == len(self.reference)


class LHRSMachine(RuleBasedStateMachine):
    """LH*RS store: audit + recovery invariants under random streams."""

    def __init__(self):
        super().__init__()
        self.store = LHRSStore(make_scheme(f=16, n=2), 3, 2, record_bytes=32)
        self.reference: dict[int, bytes] = {}
        self.rng = np.random.default_rng(0)

    def _value(self, fill, size):
        return bytes([fill]) * size

    @rule(key=st.integers(0, 60), fill=st.integers(0, 255),
          size=st.integers(0, 28))
    def insert(self, key, fill, size):
        if key in self.reference:
            return
        value = self._value(fill, size)
        self.store.insert(key, value)
        self.reference[key] = value

    @rule(data=st.data(), fill=st.integers(0, 255), size=st.integers(0, 28))
    def update(self, data, fill, size):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        value = self._value(fill, size)
        self.store.update(key, value)
        self.reference[key] = value

    @rule(data=st.data())
    def delete(self, data):
        if not self.reference:
            return
        key = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.store.delete(key) == self.reference.pop(key)

    @rule(victim=st.integers(0, 2))
    def crash_and_recover_one(self, victim):
        self.store.fail_bucket(victim)
        self.store.recover()

    @invariant()
    def contents_match(self):
        assert sorted(self.store.keys()) == sorted(self.reference)
        for key, value in self.reference.items():
            assert self.store.get(key) == value

    @invariant()
    def parity_consistent(self):
        assert self.store.audit() == []


RPFileMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)
LHRSMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None
)

TestRPFileMachine = RPFileMachine.TestCase
TestLHRSMachine = LHRSMachine.TestCase
