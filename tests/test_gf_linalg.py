"""Tests for GF linear algebra: solve, invert, Vandermonde machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotInvertibleError
from repro.gf import GF, linalg


@pytest.fixture(scope="module")
def gf():
    return GF(8)


def random_invertible(gf, n, rng):
    """Draw a random invertible n x n matrix (rejection sampling)."""
    while True:
        matrix = [[int(rng.integers(0, gf.size)) for _ in range(n)] for _ in range(n)]
        if linalg.is_invertible(gf, matrix):
            return matrix


class TestMatVec:
    def test_identity(self, gf):
        identity = linalg.identity(gf, 3)
        vector = [5, 7, 9]
        assert linalg.mat_vec(gf, identity, vector) == vector

    def test_linear_in_vector(self, gf, rng):
        matrix = [[1, 2], [3, 4]]
        x = [int(rng.integers(0, 256)) for _ in range(2)]
        y = [int(rng.integers(0, 256)) for _ in range(2)]
        left = linalg.mat_vec(gf, matrix, [a ^ b for a, b in zip(x, y)])
        right = [
            a ^ b for a, b in zip(
                linalg.mat_vec(gf, matrix, x), linalg.mat_vec(gf, matrix, y)
            )
        ]
        assert left == right


class TestMatMul:
    def test_identity_neutral(self, gf, rng):
        matrix = random_invertible(gf, 3, rng)
        identity = linalg.identity(gf, 3)
        assert linalg.mat_mul(gf, matrix, identity) == matrix
        assert linalg.mat_mul(gf, identity, matrix) == matrix

    def test_associates_with_mat_vec(self, gf, rng):
        a = random_invertible(gf, 3, rng)
        b = random_invertible(gf, 3, rng)
        x = [int(rng.integers(0, 256)) for _ in range(3)]
        assert linalg.mat_vec(gf, linalg.mat_mul(gf, a, b), x) == \
            linalg.mat_vec(gf, a, linalg.mat_vec(gf, b, x))


class TestSolve:
    @given(st.integers(1, 5), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_solve_roundtrip(self, n, seed):
        gf = GF(8)
        rng = np.random.default_rng(seed)
        matrix = random_invertible(gf, n, rng)
        x = [int(rng.integers(0, 256)) for _ in range(n)]
        rhs = linalg.mat_vec(gf, matrix, x)
        assert linalg.solve(gf, matrix, rhs) == x

    def test_singular_rejected(self, gf):
        singular = [[1, 2], [1, 2]]
        with pytest.raises(NotInvertibleError):
            linalg.solve(gf, singular, [1, 2])


class TestInvert:
    def test_inverse_times_matrix(self, gf, rng):
        matrix = random_invertible(gf, 4, rng)
        inverse = linalg.invert(gf, matrix)
        assert linalg.mat_mul(gf, inverse, matrix) == linalg.identity(gf, 4)
        assert linalg.mat_mul(gf, matrix, inverse) == linalg.identity(gf, 4)

    def test_singular_rejected(self, gf):
        with pytest.raises(NotInvertibleError):
            linalg.invert(gf, [[0, 0], [0, 0]])


class TestDeterminant:
    def test_identity_determinant(self, gf):
        assert linalg.determinant(gf, linalg.identity(gf, 4)) == 1

    def test_singular_determinant_zero(self, gf):
        assert linalg.determinant(gf, [[1, 1], [1, 1]]) == 0

    def test_diagonal(self, gf):
        matrix = [[3, 0, 0], [0, 5, 0], [0, 0, 7]]
        expected = gf.mul(gf.mul(3, 5), 7)
        assert linalg.determinant(gf, matrix) == expected


class TestVandermonde:
    """The invertibility at the heart of Propositions 1, 2 and 4."""

    def test_shape_and_entries(self, gf):
        xs = [2, 3, 5]
        matrix = linalg.vandermonde(gf, xs, 3, first_power=1)
        for i, x in enumerate(xs):
            for j in range(3):
                assert matrix[i][j] == gf.pow(x, 1 + j)

    @given(st.integers(0, 2**32 - 1), st.integers(2, 6))
    @settings(max_examples=40)
    def test_distinct_nonzero_points_invertible(self, seed, n):
        """Vandermonde on distinct non-zero points is invertible -- the
        exact argument in the proof of Proposition 1."""
        gf = GF(8)
        rng = np.random.default_rng(seed)
        xs = [int(v) for v in rng.choice(np.arange(1, gf.size), n, replace=False)]
        matrix = linalg.vandermonde(gf, xs, n, first_power=1)
        assert linalg.is_invertible(gf, matrix)

    def test_repeated_points_singular(self, gf):
        matrix = linalg.vandermonde(gf, [3, 3], 2)
        assert not linalg.is_invertible(gf, matrix)

    def test_proposition1_matrix_exhaustive_gf4(self, gf4):
        """For every set of distinct positions i_v < ord(alpha), the
        Proposition-1 matrix (alpha^j)^{i_v} is invertible -- checked for
        all position pairs in GF(2^4), n = 2."""
        from itertools import combinations

        alpha = gf4.alpha
        for positions in combinations(range(gf4.order), 2):
            matrix = [
                [gf4.pow(gf4.pow(alpha, j), i) for j in range(1, 3)]
                for i in positions
            ]
            assert linalg.is_invertible(gf4, matrix), positions
