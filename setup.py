"""Setuptools shim.

Everything is declared in pyproject.toml; this file only enables
``python setup.py develop`` on offline machines whose pip cannot build
PEP-660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
