"""Remote replica reconciliation by signature exchange (Section 1's roots)."""

from .replica import (
    Replica,
    SyncReport,
    sync_by_locator,
    sync_by_map,
    sync_by_tree,
)

__all__ = [
    "Replica",
    "SyncReport",
    "sync_by_locator",
    "sync_by_map",
    "sync_by_tree",
]
