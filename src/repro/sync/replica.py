"""Remote replica reconciliation by algebraic signatures.

The signature literature the paper descends from is about exactly this:
"Signatures are a potentially useful tool to detect the updates or
discrepancies among replicas (e.g. of files [Me83], [BGMF88], [BL91],
...)" (Section 1).  This package closes the loop: two nodes hold
diverged copies of a byte image; they reconcile by exchanging
signatures -- never the unchanged data -- over the accounted simulated
network.

Three protocols, matching the literature's shapes:

* **map exchange** -- the source ships its whole signature map (4 bytes
  per page); the target compares locally and requests the differing
  pages.  O(pages) signature traffic, one round trip.
* **tree probe** -- Metzner-style [Me83] hierarchical comparison using
  the algebraic signature tree: the peers walk the tree level by level,
  descending only into differing nodes.  O(fanout * log m * changes)
  signature traffic, log-depth round trips -- wins when few pages
  changed in a large file.
* **locator exchange** -- group-testing localization
  (:mod:`repro.sig.locate`): the source ships one d-cover-free
  :class:`~repro.sig.locate.LocatorMap` -- O(d^2 log^2 N) aggregate
  signatures -- and the target decodes exactly which <= d pages
  diverged in a single round trip, falling back to the tree probe on
  :data:`~repro.sig.locate.OVERFLOW`.  Wins when divergence is within
  the damage budget: constant-ish signature traffic regardless of N.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError, SignatureError
from ..obs import get_registry
from ..sig.compound import SignatureMap
from ..sig.engine import get_batch_signer
from ..sig.incremental import IncrementalSignatureMap, aligned_span
from ..sig.locate import DEFAULT_D, LocateDesign, LocatorMap, decode
from ..sig.scheme import AlgebraicSignatureScheme
from ..sig.tree import SignatureTree
from ..sim.network import SimNetwork

#: Message kinds for the traffic accounting.
MAP_EXCHANGE = "sync_map"
TREE_LEVEL = "sync_tree_level"
LOCATOR_EXCHANGE = "sync_locator"
PAGE_REQUEST = "sync_page_request"
PAGE_DATA = "sync_page_data"


class Replica:
    """One node's copy of a replicated byte image.

    The first :meth:`signature_map` call seeds a *warm* incremental map
    (and :meth:`signature_tree` a warm tree): from then on, every write
    through :meth:`write_page`, :meth:`apply_xor` or :meth:`truncate` is
    journaled, and the next signature request folds the journal in
    O(|written bytes|) instead of re-signing the whole image.  Code
    that mutates :attr:`data` directly must call :meth:`invalidate`.
    """

    def __init__(self, name: str, scheme: AlgebraicSignatureScheme,
                 data: bytes, page_bytes: int):
        symbol_bytes = scheme.scheme_id.symbol_bytes
        if page_bytes % symbol_bytes:
            raise ReproError(
                f"page size must be a multiple of the {symbol_bytes}-byte symbol"
            )
        self.name = name
        self.scheme = scheme
        self.page_bytes = page_bytes
        self.page_symbols = page_bytes // symbol_bytes
        if self.page_symbols > scheme.max_page_symbols:
            raise ReproError("page size exceeds the certainty bound")
        self.data = bytearray(data)
        self._incremental: IncrementalSignatureMap | None = None
        self._tree: SignatureTree | None = None
        self._tree_fanout: int | None = None
        self._locator: LocatorMap | None = None

    @classmethod
    def from_warm(cls, name: str, scheme: AlgebraicSignatureScheme,
                  data: bytes, page_bytes: int,
                  signature_map: SignatureMap,
                  tree: SignatureTree | None = None,
                  fanout: int | None = None) -> "Replica":
        """Build a replica with *pre-warmed* signature state.

        Durable-store recovery loads a checkpointed map (and tree) that
        already describes ``data``; seeding them here means the first
        :meth:`signature_map` call folds only subsequently journaled
        writes -- Proposition 3 -- instead of re-signing the image.
        The caller asserts map (and tree) match ``data``; a mismatch
        surfaces as a scrub discrepancy, not an exception.
        """
        replica = cls(name, scheme, data, page_bytes)
        replica._incremental = IncrementalSignatureMap(signature_map)
        if tree is not None:
            replica._tree = tree
            replica._tree_fanout = fanout if fanout is not None \
                else tree.fanout
        return replica

    @property
    def page_count(self) -> int:
        """Number of pages covering the current data."""
        return max(1, (len(self.data) + self.page_bytes - 1) // self.page_bytes)

    def page(self, index: int) -> bytes:
        """One page's bytes (the final page may be short)."""
        return bytes(self.data[index * self.page_bytes:(index + 1) * self.page_bytes])

    # ------------------------------------------------------------------
    # Journaled mutation
    # ------------------------------------------------------------------

    def _record(self, offset: int, length: int, mutate) -> None:
        """Run ``mutate()`` with the touched region journaled.

        The region is expanded to symbol boundaries and its before/after
        content snapshotted around the mutation, so warm signature state
        stays exact (including for twisted schemes).
        """
        tracked = self._incremental is not None and length > 0
        if tracked:
            symbol_bytes = self.scheme.scheme_id.symbol_bytes
            lo, hi = aligned_span(offset, length, symbol_bytes)
            hi = min(hi, len(self.data))
            if hi % symbol_bytes:
                # The image ends mid-symbol; its tail cannot be
                # journaled exactly, so fall back to a cold re-sign.
                self.invalidate()
                tracked = False
            else:
                before = bytes(self.data[lo:hi])
        mutate()
        if tracked:
            self._incremental.journal.record(
                lo, before, bytes(self.data[lo:lo + len(before)])
            )

    def write_page(self, index: int, content: bytes) -> None:
        """Overwrite one page (extending the image if needed)."""
        self.write_at(index * self.page_bytes, content)

    def write_at(self, offset: int, content: bytes) -> None:
        """Overwrite an arbitrary extent (extending the image if needed)."""
        end = offset + len(content)
        if end > len(self.data):
            # Grown space is zero-filled, which the incremental fold
            # accounts for algebraically without journaling it.
            self.data.extend(bytes(end - len(self.data)))
        self._record(offset, len(content),
                     lambda: self.data.__setitem__(slice(offset, end), content))

    def apply_xor(self, offset: int, delta: bytes) -> None:
        """XOR ``delta`` onto the image at ``offset`` (a mirror patch).

        This is the receiving half of delta-shipping replication: the
        sender transmits ``before XOR after`` for the changed extent and
        the receiver folds it in place, journaling as usual.
        """
        if offset < 0:
            raise ReproError("delta patch offset must be non-negative")
        end = offset + len(delta)
        if end > len(self.data):
            # A patch landing past the current end grows the image with
            # zeros first; XOR against zeros then writes the content.
            self.data.extend(bytes(end - len(self.data)))

        def mutate() -> None:
            patched = (
                int.from_bytes(self.data[offset:end], "little")
                ^ int.from_bytes(delta, "little")
            ).to_bytes(len(delta), "little")
            self.data[offset:end] = patched

        self._record(offset, len(delta), mutate)

    def truncate(self, new_length: int) -> None:
        """Shrink the image, journaling the zeroing of the dropped tail."""
        if new_length < 0 or new_length > len(self.data):
            raise ReproError(f"cannot truncate to {new_length} bytes")
        if new_length == len(self.data):
            return
        tail = len(self.data) - new_length

        def mutate() -> None:
            self.data[new_length:] = bytes(tail)

        # Zero the tail first (journaled), then drop it: the fold then
        # removes the zero run's contribution algebraically.
        self._record(new_length, tail, mutate)
        del self.data[new_length:]

    def invalidate(self) -> None:
        """Drop warm signature state after an untracked data mutation."""
        self._incremental = None
        self._tree = None
        self._tree_fanout = None
        self._locator = None

    # ------------------------------------------------------------------
    # Signature state
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        """Fold pending journaled writes into the warm map (and tree)."""
        incremental = self._incremental
        if incremental is None:
            return
        symbol_bytes = self.scheme.scheme_id.symbol_bytes
        if len(self.data) % symbol_bytes:
            # A partial trailing symbol cannot be journaled exactly.
            self.invalidate()
            return
        journal = incremental.journal
        if not journal and incremental.total_bytes == len(self.data):
            return
        report = incremental.apply_journal(journal,
                                           total_bytes=len(self.data))
        if self._tree is not None:
            if report.resized:
                self._tree = SignatureTree.from_map(
                    incremental.map, self._tree_fanout
                )
            else:
                self._tree.apply_leaf_deltas(report.leaf_deltas)
        if self._locator is not None:
            design = self._locator.design
            if report.resized:
                # Length changes move the aggregate offsets' coverage;
                # rebuild under the same design while it still fits.
                if len(incremental.map.signatures) \
                        <= max(1, design.page_capacity):
                    self._locator = LocatorMap.from_map(
                        design, incremental.map
                    )
                else:
                    self._locator = None
            elif report.leaf_deltas:
                self._locator.apply_leaf_deltas(report.leaf_deltas)
        registry = get_registry()
        registry.counter("sync.incremental_folds").inc()
        registry.counter("sync.bytes_folded").inc(report.bytes_folded)

    def signature_map(self) -> SignatureMap:
        """The replica's current per-page signature map.

        The first call signs the whole image through the shared batch
        engine and keeps the result warm; later calls fold the write
        journal in O(|delta|) and return the same (updated) map.
        """
        if self._incremental is None:
            cold = get_batch_signer(self.scheme).sign_map(
                bytes(self.data), self.page_symbols
            )
            self._incremental = IncrementalSignatureMap(cold)
            return cold
        self._refresh()
        if self._incremental is None:  # invalidated by _refresh
            return self.signature_map()
        return self._incremental.map

    def signature_tree(self, fanout: int = 16) -> SignatureTree:
        """The replica's current signature tree (kept warm like the map)."""
        signature_map = self.signature_map()
        if self._tree is not None and self._tree_fanout == fanout:
            return self._tree
        tree = SignatureTree.from_map(signature_map, fanout)
        if self._incremental is not None:
            self._tree = tree
            self._tree_fanout = fanout
        return tree

    def locator_map(self, d: int = DEFAULT_D, seed: int = 0,
                    design: LocateDesign | None = None) -> LocatorMap:
        """The replica's group-testing locator (kept warm like the tree).

        Without an explicit ``design`` one is derived deterministically
        from ``(d, seed)`` and the page count rounded up to a power of
        two -- same-shape peers with the same parameters derive the
        same design without exchanging it.  Passing ``design`` (e.g. the
        one inside a peer's locator blob) pins the family instead;
        :class:`~repro.errors.SignatureError` surfaces when this
        replica outgrew it.
        """
        signature_map = self.signature_map()
        page_count = len(signature_map.signatures)
        if design is None:
            cached = self._locator
            if cached is not None and cached.design.d == d \
                    and cached.design.seed == seed \
                    and page_count <= max(1, cached.design.page_capacity):
                design = cached.design
            else:
                capacity = 1 << max(0, (page_count - 1).bit_length()) \
                    if page_count else 1
                design = LocateDesign.build(capacity, d, seed)
        cached = self._locator
        if cached is not None and cached.design == design \
                and cached.page_count == page_count \
                and cached.total_symbols == signature_map.total_symbols:
            return cached
        locator = LocatorMap.from_map(design, signature_map)
        if self._incremental is not None:
            self._locator = locator
        return locator


@dataclass(frozen=True, slots=True)
class SyncReport:
    """Outcome of one reconciliation."""

    pages_total: int
    pages_shipped: int
    signature_bytes: int    #: bytes of signatures exchanged
    data_bytes: int         #: bytes of page data shipped
    rounds: int             #: request/response round trips

    @property
    def total_bytes(self) -> int:
        """All reconciliation traffic."""
        return self.signature_bytes + self.data_bytes


def _emit_report(protocol: str, report: SyncReport, compared: int,
                 localized: int | None = None,
                 bytes_saved: int | None = None) -> None:
    """Land one reconciliation's accounting in the ``sync.*`` series.

    Protocols that *localize* divergence rather than compare every page
    (tree probe, locator exchange) also record how many pages they
    pinpointed and how many signature bytes they avoided exchanging
    relative to a full map exchange, so the run report makes the
    sub-linear protocols directly comparable.
    """
    registry = get_registry()
    registry.counter("sync.syncs", protocol=protocol).inc()
    registry.counter("sync.pages_shipped", protocol=protocol).inc(
        report.pages_shipped
    )
    registry.counter("sync.sig_bytes", protocol=protocol).inc(
        report.signature_bytes
    )
    registry.counter("sync.data_bytes", protocol=protocol).inc(
        report.data_bytes
    )
    registry.counter("sync.nodes_compared", protocol=protocol).inc(compared)
    if localized is not None:
        registry.counter("sync.pages_localized", protocol=protocol).inc(
            localized
        )
    if bytes_saved is not None:
        registry.counter("sync.bytes_saved", protocol=protocol).inc(
            bytes_saved
        )


def _check_peers(source: Replica, target: Replica) -> None:
    if source.scheme.scheme_id != target.scheme.scheme_id:
        raise ReproError("replicas must share a signature scheme")
    if source.page_bytes != target.page_bytes:
        raise ReproError("replicas must share the page size")


def sync_by_map(source: Replica, target: Replica,
                network: SimNetwork) -> SyncReport:
    """Make ``target`` identical to ``source`` via a map exchange."""
    _check_peers(source, target)
    source_map = source.signature_map()
    map_bytes = len(source_map.to_bytes())
    network.send(source.name, target.name, MAP_EXCHANGE, map_bytes)
    changed = target.signature_map().changed_pages(source_map)
    request_bytes = 4 + 4 * len(changed)
    network.send(target.name, source.name, PAGE_REQUEST, request_bytes)
    data_bytes = 0
    for index in changed:
        page = source.page(index)
        network.send(source.name, target.name, PAGE_DATA, len(page) + 8)
        target.write_page(index, page)
        data_bytes += len(page)
    _trim(target, source)
    report = SyncReport(
        pages_total=source_map.page_count,
        pages_shipped=len(changed),
        signature_bytes=map_bytes + request_bytes,
        data_bytes=data_bytes,
        rounds=2,
    )
    # A map exchange compares every page signature exactly once.
    _emit_report("map", report, compared=source_map.page_count)
    return report


def sync_by_tree(source: Replica, target: Replica, network: SimNetwork,
                 fanout: int = 16) -> SyncReport:
    """Make ``target`` identical to ``source`` via hierarchical probing.

    The peers compare one tree level per round, starting at the root and
    descending only under differing nodes ([Me83]'s structure, with the
    nodes computed algebraically per Proposition 5).  Falls back to a
    map exchange when the page counts differ (the tree shapes would not
    align).
    """
    _check_peers(source, target)
    source_tree = source.signature_tree(fanout)
    target_tree = target.signature_tree(fanout)
    if source_tree.leaf_count != target_tree.leaf_count:
        return sync_by_map(source, target, network)
    sig_bytes_per = source.scheme.scheme_id.signature_bytes
    signature_bytes = 0
    rounds = 0
    compared = 0
    top = source_tree.height - 1
    suspects = [0]  # node indices at the current level
    for level in range(top, 0, -1):
        payload = len(suspects) * (sig_bytes_per + 4)
        network.send(source.name, target.name, TREE_LEVEL, payload)
        signature_bytes += payload
        rounds += 1
        compared += len(suspects)
        next_suspects = []
        child_level = level - 1
        for index in suspects:
            if source_tree.levels[level][index].signature == \
                    target_tree.levels[level][index].signature:
                continue
            start = index * fanout
            stop = min(start + fanout, len(source_tree.levels[child_level]))
            next_suspects.extend(range(start, stop))
        suspects = next_suspects
        if not suspects:
            break
    # Leaf round: compare the suspect pages' signatures.
    changed = [
        index for index in suspects
        if source_tree.levels[0][index].signature
        != target_tree.levels[0][index].signature
    ]
    if suspects:
        payload = len(suspects) * (sig_bytes_per + 4)
        network.send(source.name, target.name, TREE_LEVEL, payload)
        signature_bytes += payload
        rounds += 1
        compared += len(suspects)
    request_bytes = 4 + 4 * len(changed)
    network.send(target.name, source.name, PAGE_REQUEST, request_bytes)
    signature_bytes += request_bytes
    data_bytes = 0
    for index in changed:
        page = source.page(index)
        network.send(source.name, target.name, PAGE_DATA, len(page) + 8)
        target.write_page(index, page)
        data_bytes += len(page)
    _trim(target, source)
    report = SyncReport(
        pages_total=source_tree.leaf_count,
        pages_shipped=len(changed),
        signature_bytes=signature_bytes,
        data_bytes=data_bytes,
        rounds=rounds + 1,
    )
    map_cost = 16 + sig_bytes_per * source_tree.leaf_count
    _emit_report("tree", report, compared=compared,
                 localized=len(changed),
                 bytes_saved=max(0, map_cost - signature_bytes))
    return report


def sync_by_locator(source: Replica, target: Replica, network: SimNetwork,
                    d: int = DEFAULT_D, seed: int = 0,
                    fanout: int = 16) -> SyncReport:
    """Make ``target`` identical to ``source`` via group-testing decode.

    The source ships its :class:`~repro.sig.locate.LocatorMap` --
    O(d^2 log^2 N) aggregate signatures, design parameters included --
    and the target folds its own map under the *same* design and
    decodes exactly which <= d pages diverged: one signature round trip
    whose size does not grow with the volume.  When the divergence
    exceeds the damage budget (or the lengths drifted, or the target
    outgrew the design) the decode reports ``OVERFLOW`` and the
    reconciliation falls back to :func:`sync_by_tree`, with the wasted
    locator bytes accounted in the returned report -- never a silently
    wrong page set.
    """
    _check_peers(source, target)
    registry = get_registry()
    source_locator = source.locator_map(d=d, seed=seed)
    blob_bytes = len(source_locator.to_bytes())
    network.send(source.name, target.name, LOCATOR_EXCHANGE, blob_bytes)
    registry.counter("sync.locate.exchanges").inc()
    registry.counter("sync.locate.groups").inc(source_locator.group_count)
    try:
        target_locator = target.locator_map(design=source_locator.design)
        verdict = decode(source_locator, target_locator)
    except SignatureError:
        verdict = None
    if verdict is None or verdict.overflowed:
        registry.counter("sync.locate.fallbacks").inc()
        fallback = sync_by_tree(source, target, network, fanout)
        return SyncReport(
            pages_total=fallback.pages_total,
            pages_shipped=fallback.pages_shipped,
            signature_bytes=fallback.signature_bytes + blob_bytes,
            data_bytes=fallback.data_bytes,
            rounds=fallback.rounds + 1,
        )
    changed = list(verdict.pages)
    request_bytes = 4 + 4 * len(changed)
    network.send(target.name, source.name, PAGE_REQUEST, request_bytes)
    data_bytes = 0
    for index in changed:
        page = source.page(index)
        network.send(source.name, target.name, PAGE_DATA, len(page) + 8)
        target.write_page(index, page)
        data_bytes += len(page)
    _trim(target, source)
    report = SyncReport(
        pages_total=source_locator.page_count,
        pages_shipped=len(changed),
        signature_bytes=blob_bytes + request_bytes,
        data_bytes=data_bytes,
        rounds=2,
    )
    sig_bytes_per = source.scheme.scheme_id.signature_bytes
    map_cost = 16 + sig_bytes_per * source_locator.page_count
    _emit_report("locator", report, compared=verdict.groups_compared,
                 localized=len(changed),
                 bytes_saved=max(0, map_cost - report.signature_bytes))
    return report


def _trim(target: Replica, source: Replica) -> None:
    """Match the target's length to the source's after page shipping."""
    if len(target.data) > len(source.data):
        target.truncate(len(source.data))
