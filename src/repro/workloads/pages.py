"""Page/data generators for the signature experiments.

Section 5.2 found the calculation time "depended to a large degree on
the type of data used": worst for fully random bytes (log-table gathers
touch the whole table), best for "highly structured data such as a
spelled out number repeated several times" (a handful of distinct
symbols stay cache-hot).  These generators reproduce that spectrum, all
deterministically seeded.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

#: The paper's structured-data example: a spelled-out number.
SPELLED_NUMBER = (
    b"one hundred twenty-three thousand four hundred fifty-six "
)


def random_page(nbytes: int, seed: int = 0) -> bytes:
    """Completely random characters in the full ASCII range (worst case)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


def ascii_page(nbytes: int, seed: int = 0) -> bytes:
    """Random printable ASCII (typical text-record payloads)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0x20, 0x7F, nbytes, dtype=np.uint8).tobytes()


def structured_page(nbytes: int) -> bytes:
    """The paper's best case: a spelled-out number repeated to length."""
    repeats = nbytes // len(SPELLED_NUMBER) + 1
    return (SPELLED_NUMBER * repeats)[:nbytes]


def zero_page(nbytes: int) -> bytes:
    """All-zero data (the degenerate fastest input: every term vanishes)."""
    return bytes(nbytes)


#: Named generators for parameter sweeps.
PAGE_KINDS = {
    "random": random_page,
    "ascii": ascii_page,
    "structured": lambda nbytes, seed=0: structured_page(nbytes),
    "zero": lambda nbytes, seed=0: zero_page(nbytes),
}


def make_page(kind: str, nbytes: int, seed: int = 0) -> bytes:
    """Generate a page of the named kind."""
    if kind not in PAGE_KINDS:
        raise ReproError(f"unknown page kind {kind!r}; choose from {sorted(PAGE_KINDS)}")
    return PAGE_KINDS[kind](nbytes, seed=seed)
