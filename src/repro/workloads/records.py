"""Record-set generators for SDDS experiments.

The paper's sample SDDS has "records of about 100 B and a 4 B key"; the
update experiments also use 1 KB records.  These helpers build such
files reproducibly.
"""

from __future__ import annotations

import numpy as np

from ..sdds.record import Record
from .pages import ascii_page


def make_records(count: int, value_bytes: int, seed: int = 0,
                 key_space: int | None = None) -> list[Record]:
    """``count`` records with distinct random keys and ASCII payloads."""
    rng = np.random.default_rng(seed)
    space = key_space if key_space is not None else max(count * 16, 1 << 20)
    keys = rng.choice(space, size=count, replace=False)
    return [
        Record(int(key), ascii_page(value_bytes, seed=seed + index))
        for index, key in enumerate(keys)
    ]


def load_file(file, records: list[Record], client_name: str = "loader"):
    """Insert all records through a fresh client; returns the client."""
    client = file.client(client_name)
    for record in records:
        result = client.insert(record)
        if result.status != "inserted":
            raise RuntimeError(f"unexpected insert status {result.status}")
    return client
