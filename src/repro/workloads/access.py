"""Access-pattern generators: which records a workload touches, and when.

The E6 update experiments use uniform access; real database workloads
skew (a few hot records take most updates) and mix operations.  These
generators feed such patterns into the SDDS protocols so experiments
can study, e.g., how conflict rates grow with skew, or how the client
cache behaves under a hot set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


def zipf_indices(n_items: int, count: int, skew: float,
                 rng: np.random.Generator) -> np.ndarray:
    """``count`` item indices drawn Zipf-like with exponent ``skew``.

    ``skew = 0`` is uniform; larger values concentrate accesses on the
    low indices (rank 1 is the hottest).  Implemented by inverse-CDF
    over the finite rank distribution, so any skew >= 0 works (numpy's
    ``zipf`` needs skew > 1).
    """
    if n_items <= 0:
        raise ReproError("need at least one item")
    if skew < 0:
        raise ReproError("skew cannot be negative")
    weights = 1.0 / np.power(np.arange(1, n_items + 1, dtype=np.float64), skew)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    return np.searchsorted(cdf, draws)


def shifting_hotspot_indices(n_items: int, count: int, skew: float,
                             rng: np.random.Generator,
                             period: int = 1000,
                             step: int | None = None) -> np.ndarray:
    """Zipf-skewed indices whose hot set *migrates* over time.

    Every ``period`` draws the rank-to-item mapping rotates by ``step``
    items (default ``n_items // 10``), so the hottest records change as
    the workload progresses -- the moving-hot-spot pattern that defeats
    any cache or split layout tuned to a static skew.  ``skew = 0``
    degenerates to uniform (the rotation is then invisible).
    """
    if period <= 0:
        raise ReproError("period must be positive")
    if step is None:
        step = max(1, n_items // 10)
    if step < 0:
        raise ReproError("step cannot be negative")
    ranks = zipf_indices(n_items, count, skew, rng)
    shifts = (np.arange(count, dtype=np.int64) // period) * step
    return (ranks + shifts) % n_items


def poisson_arrivals(rate: float, count: int, rng: np.random.Generator,
                     start: float = 0.0) -> np.ndarray:
    """``count`` open-loop arrival instants at ``rate`` events/second.

    A Poisson process on the simulated clock: inter-arrival gaps are
    i.i.d. exponential with mean ``1/rate``, so arrivals keep coming at
    the offered rate regardless of how slowly the system under test
    answers -- the open-loop discipline that exposes queueing collapse
    (a closed loop would self-throttle and hide it).
    """
    if rate <= 0:
        raise ReproError("arrival rate must be positive")
    if count < 0:
        raise ReproError("arrival count cannot be negative")
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return start + np.cumsum(gaps)


@dataclass(frozen=True, slots=True)
class Operation:
    """One workload step."""

    kind: str      #: "read" | "update" | "pseudo_update"
    index: int     #: which record (rank in the key list)


def mixed_workload(n_items: int, count: int, rng: np.random.Generator,
                   read_fraction: float = 0.7, pseudo_fraction: float = 0.3,
                   skew: float = 0.99) -> list[Operation]:
    """A read/update mix over a Zipf-skewed hot set.

    ``pseudo_fraction`` is the share of *updates* that change nothing --
    the paper's pseudo-update population (idle salespersons, unchanged
    camera images).
    """
    if not 0.0 <= read_fraction <= 1.0 or not 0.0 <= pseudo_fraction <= 1.0:
        raise ReproError("fractions must be in [0, 1]")
    indices = zipf_indices(n_items, count, skew, rng)
    operations = []
    for index in indices:
        if rng.random() < read_fraction:
            kind = "read"
        elif rng.random() < pseudo_fraction:
            kind = "pseudo_update"
        else:
            kind = "update"
        operations.append(Operation(kind, int(index)))
    return operations


def hot_set_fraction(operations: list[Operation], hot_items: int) -> float:
    """Share of operations touching the ``hot_items`` lowest ranks."""
    if not operations:
        return 0.0
    hot = sum(1 for op in operations if op.index < hot_items)
    return hot / len(operations)
