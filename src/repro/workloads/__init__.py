"""Workload generators: pages, update patterns, record sets, and
access skews for the SDDS experiments (Section 5.2 data spectrum)."""

from .pages import (
    PAGE_KINDS,
    SPELLED_NUMBER,
    ascii_page,
    make_page,
    random_page,
    structured_page,
    zero_page,
)
from .updates import attribute_update, cut_and_paste, pseudo_update_mix, small_edit
from .records import load_file, make_records
from .access import (
    Operation,
    hot_set_fraction,
    mixed_workload,
    poisson_arrivals,
    shifting_hotspot_indices,
    zipf_indices,
)

__all__ = [
    "PAGE_KINDS",
    "SPELLED_NUMBER",
    "make_page",
    "random_page",
    "ascii_page",
    "structured_page",
    "zero_page",
    "small_edit",
    "cut_and_paste",
    "attribute_update",
    "pseudo_update_mix",
    "make_records",
    "load_file",
    "zipf_indices",
    "shifting_hotspot_indices",
    "poisson_arrivals",
    "mixed_workload",
    "Operation",
    "hot_set_fraction",
]
