"""Update-pattern generators: the changes the paper's analysis targets.

Three families drive the experiments:

* *small edits* -- "an update of a database record often changes only
  relatively few bytes" (Proposition 1 territory);
* *cut-and-paste switches* -- "in a text document the cut-and-paste
  (switch) of a large string is a frequent operation" (Proposition 4);
* *pseudo-update mixes* -- update requests that change nothing (the
  thousands of salespersons with no sales), driving the E6 savings.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def small_edit(page: bytes, n_bytes: int, rng: np.random.Generator) -> bytes:
    """Change exactly ``n_bytes`` positions to different byte values."""
    if not 0 < n_bytes <= len(page):
        raise ReproError("edit size must be within the page")
    data = bytearray(page)
    positions = rng.choice(len(data), size=n_bytes, replace=False)
    for position in positions:
        old = data[position]
        new = int(rng.integers(0, 256))
        while new == old:
            new = int(rng.integers(0, 256))
        data[position] = new
    return bytes(data)


def cut_and_paste(page: bytes, rng: np.random.Generator,
                  block_bytes: int | None = None) -> bytes:
    """Move a block from one position to another (the Figure 2 switch)."""
    if len(page) < 4:
        raise ReproError("page too small for a switch")
    if block_bytes is None:
        block_bytes = int(rng.integers(1, max(2, len(page) // 4)))
    if not 0 < block_bytes < len(page):
        raise ReproError("block must be shorter than the page")
    source = int(rng.integers(0, len(page) - block_bytes + 1))
    rest = page[:source] + page[source + block_bytes:]
    destination = int(rng.integers(0, len(rest) + 1))
    block = page[source:source + block_bytes]
    return rest[:destination] + block + rest[destination:]


def attribute_update(page: bytes, offset: int, new_field: bytes) -> bytes:
    """Replace the attribute at ``offset`` (the normal-update shape)."""
    if offset < 0 or offset + len(new_field) > len(page):
        raise ReproError("attribute outside the record")
    return page[:offset] + new_field + page[offset + len(new_field):]


def pseudo_update_mix(values: list[bytes], pseudo_ratio: float,
                      rng: np.random.Generator,
                      edit_bytes: int = 8) -> list[tuple[bytes, bytes]]:
    """Build (before, after) update requests with a pseudo-update fraction.

    A ``pseudo_ratio`` of 0.5 means half the requested updates leave the
    record unchanged -- the workload where the Section 2.2 filtering
    shines.
    """
    if not 0.0 <= pseudo_ratio <= 1.0:
        raise ReproError("pseudo ratio must be in [0, 1]")
    requests = []
    for value in values:
        if rng.random() < pseudo_ratio:
            requests.append((value, value))
        else:
            requests.append((value, small_edit(value, edit_bytes, rng)))
    return requests
