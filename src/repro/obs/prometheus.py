"""Prometheus text exposition for the metrics registry.

The SDDS accounting lives in dotted series (``cluster.op_seconds``,
``sig.bytes_signed``); this module renders a
:class:`~repro.obs.registry.MetricsRegistry` in the Prometheus
text-based exposition format (version 0.0.4) so any scrape-based stack
ingests the paper's numbers directly:

* every name is prefixed ``repro_`` and dots become underscores;
* counters are suffixed ``_total``;
* exact histograms expose as *summaries* (pre-computed ``quantile``
  labels plus ``_sum``/``_count``), since raw samples give exact
  percentiles but no fixed bucket layout;
* bucketed histograms expose as native *histograms*: cumulative
  ``_bucket{le=...}`` series over their logarithmic buckets, ending in
  ``le="+Inf"``, plus ``_sum``/``_count``.

Output is deterministic (series sorted by name then labels), so two
same-seed simulation runs expose byte-identical text -- the cluster's
determinism discipline extended to the scrape surface.
"""

from __future__ import annotations

from .registry import (
    BucketedHistogram,
    Counter,
    Histogram,
    MetricsRegistry,
)

#: Quantiles exposed for exact (summary-style) histograms.
SUMMARY_QUANTILES = (("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0),
                     ("0.999", 99.9))


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + name.replace(".", "_") + suffix


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _format_labels(items, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{key}="{_escape(value)}"' for key, value in (*items, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_number(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _line(name: str, items, value, extra=()) -> str:
    return f"{name}{_format_labels(items, tuple(extra))} " \
        f"{_format_number(value)}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format.

    Returns the full scrape page as one string, terminated by a
    newline, with one ``# TYPE`` header per metric name.
    """
    by_name: dict[str, list] = {}
    for series in registry.series():
        by_name.setdefault(series.name, []).append(series)

    lines: list[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        first = group[0]
        if isinstance(first, Counter):
            metric = _metric_name(name, "_total")
            lines.append(f"# TYPE {metric} counter")
            for series in group:
                lines.append(_line(metric, series.labels, series.value))
        elif isinstance(first, BucketedHistogram):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for series in group:
                cumulative = 0
                for bound, count in series.buckets():
                    cumulative += count
                    lines.append(_line(
                        f"{metric}_bucket", series.labels, cumulative,
                        extra=(("le", _format_number(float(bound))),),
                    ))
                lines.append(_line(f"{metric}_bucket", series.labels,
                                   series.count, extra=(("le", "+Inf"),)))
                lines.append(_line(f"{metric}_sum", series.labels,
                                   series.sum))
                lines.append(_line(f"{metric}_count", series.labels,
                                   series.count))
        elif isinstance(first, Histogram):
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} summary")
            for series in group:
                for quantile, p in SUMMARY_QUANTILES:
                    lines.append(_line(
                        metric, series.labels, series.percentile(p),
                        extra=(("quantile", quantile),),
                    ))
                lines.append(_line(f"{metric}_sum", series.labels,
                                   series.sum))
                lines.append(_line(f"{metric}_count", series.labels,
                                   series.count))
        else:  # Gauge
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} gauge")
            for series in group:
                lines.append(_line(metric, series.labels, series.value))
    return "\n".join(lines) + "\n" if lines else ""
