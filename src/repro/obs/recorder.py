"""Per-node flight recorder: bounded forensics for the SDDS cluster.

The paper's detection guarantee (Proposition 2: an n-symbol seal
certainly catches up to n changed symbols) tells a node *that* a wire
frame was tampered with, but a bare counter increment says nothing
about *what the node saw* at that moment.  This module keeps, per node,
a bounded ring of the most recent telemetry -- finished spans, digests
of the wire frames handled, fault events -- and, when something goes
wrong (a seal verification fails, a node crashes, recovery condemns a
page), dumps the ring as a post-mortem bundle.

The bundle itself is *sealed with the same algebraic signature scheme
the cluster uses on the wire*: the evidence about an integrity failure
carries its own integrity certificate, the discipline Idalino et al.
apply to locating modifications in signed data.  Memory is O(capacity)
regardless of run length; the ring is a ``collections.deque`` with
``maxlen``, so old entries fall off for free.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable


def frame_digest(scheme, frame: bytes) -> str:
    """Name a sealed wire frame by its own signature tail.

    Every cluster frame already ends with its algebraic signature
    (``body || sig(body)``), so the frame's last ``signature_bytes``
    bytes *are* a collision-resistant-enough handle for forensics --
    no second hash pass over the body.  Frames shorter than a seal
    (impossible on the real wire, possible after truncating faults)
    digest their whole content.
    """
    tail = frame[-scheme.signature_bytes:] if len(frame) >= \
        scheme.signature_bytes else frame
    return f"{tail.hex()}/{len(frame)}"


@dataclass(frozen=True, slots=True)
class RecorderDump:
    """One sealed post-mortem bundle emitted by a flight recorder.

    ``payload`` is the stable-JSON evidence document encoded as UTF-8;
    ``sealed`` is ``payload || sig(payload)`` under the cluster's wire
    scheme, so the dump can be shipped, stored, and later verified with
    :func:`repro.cluster.wire.unseal` like any other frame.
    """

    node: str
    reason: str
    at: float
    payload: bytes
    sealed: bytes

    def document(self) -> dict:
        """Decode the evidence document back into a dict."""
        return json.loads(self.payload.decode("utf-8"))

    def frames(self) -> list[str]:
        """Digests of every wire frame captured in the bundle."""
        return [entry["digest"] for entry in self.document()["entries"]
                if entry["kind"] == "frame"]


class FlightRecorder:
    """A bounded ring of recent telemetry for one cluster node.

    Records three kinds of entries -- finished trace spans, wire-frame
    digests, fault events -- into a ``deque(maxlen=capacity)``.  On
    :meth:`dump` the ring is serialized (sorted-key JSON, simulated
    timestamps only, so same-seed runs dump byte-identical evidence),
    sealed with the node's signature scheme, counted in
    ``obs.recorder_dumps``, and handed to every registered sink.
    """

    def __init__(self, node: str, scheme, clock=None, capacity: int = 64):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.node = node
        self.scheme = scheme
        self.clock = clock
        self.capacity = capacity
        self.entries: deque[dict] = deque(maxlen=capacity)
        self.dumps: list[RecorderDump] = []
        #: External consumers of dumps (the cluster registers one that
        #: collects every node's bundles into a run-level list).
        self.sinks: list[Callable[[RecorderDump], None]] = []

    def _now(self) -> float:
        return 0.0 if self.clock is None else self.clock.now

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_span(self, span) -> None:
        """Ring a finished :class:`~repro.obs.trace.TraceSpan`."""
        self.entries.append({
            "at": self._now(),
            "kind": "span",
            "name": span.name,
            "span_id": span.span_id,
            "status": span.status,
            "trace_id": span.trace_id,
        })

    def record_frame(self, direction: str, kind: str, peer: str,
                     frame: bytes) -> None:
        """Ring a wire frame's digest (``direction`` is recv/send)."""
        self.entries.append({
            "at": self._now(),
            "digest": frame_digest(self.scheme, frame),
            "direction": direction,
            "frame_kind": kind,
            "kind": "frame",
            "peer": peer,
        })

    def record_fault(self, fault: str, **detail) -> None:
        """Ring a fault event (seal failure, crash, condemned page...)."""
        self.entries.append({
            "at": self._now(),
            "detail": dict(sorted(detail.items())),
            "fault": fault,
            "kind": "fault",
        })

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump(self, reason: str, **detail) -> RecorderDump:
        """Seal the current ring into a post-mortem bundle.

        The ring is *not* cleared: a burst of failures produces
        overlapping bundles, each a complete picture at its instant.
        """
        from .registry import get_registry

        document = {
            "at": self._now(),
            "capacity": self.capacity,
            "detail": dict(sorted(detail.items())),
            "entries": list(self.entries),
            "node": self.node,
            "reason": reason,
        }
        payload = json.dumps(document, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        sealed = payload + self.scheme.sign(payload, strict=False).to_bytes()
        dump = RecorderDump(node=self.node, reason=reason, at=self._now(),
                            payload=payload, sealed=sealed)
        self.dumps.append(dump)
        get_registry().counter("obs.recorder_dumps", node=self.node,
                               reason=reason).inc()
        for sink in self.sinks:
            sink(dump)
        return dump
