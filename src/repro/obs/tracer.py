"""Lightweight span tracing over wall and simulated clocks.

The SDDS experiments run against the simulated multicomputer clock
(:class:`repro.sim.clock.SimClock`) while the signature calculus burns
real CPU; a span therefore records *both* durations -- the modeled
seconds the paper's cost structure predicts and the wall seconds this
reproduction actually spent.  Spans nest through a context manager and
carry structured events, giving experiments a per-phase breakdown
(sign / ship / write) to put next to the aggregate metric series.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One structured event inside a span."""

    name: str
    wall_offset: float          #: wall seconds since the span started
    sim_offset: float | None    #: sim-clock seconds since span start
    fields: dict


@dataclass
class Span:
    """An in-flight (then finished) traced operation."""

    name: str
    labels: dict
    depth: int
    parent: str | None
    wall_start: float
    sim_start: float | None
    wall_seconds: float = 0.0
    sim_seconds: float | None = None
    events: list[SpanEvent] = field(default_factory=list)

    def event(self, name: str, **fields) -> None:
        """Record a structured event at the current clock positions."""
        self.events.append(SpanEvent(
            name=name,
            wall_offset=time.perf_counter() - self.wall_start,
            sim_offset=None if self.sim_start is None else
            self._sim_now() - self.sim_start,
            fields=dict(sorted(fields.items())),
        ))

    # Patched in by the tracer so events can read the sim clock.  The
    # fallback returns the start itself (offset 0): ``sim_start or
    # 0.0`` would misread a legitimate start at t=0.0 as "no clock".
    def _sim_now(self) -> float:
        return self.sim_start if self.sim_start is not None else 0.0


class Tracer:
    """Collects nested spans; optionally tied to a simulated clock.

    ``clock`` is anything with a ``now`` attribute in seconds (duck
    typed so :class:`repro.sim.clock.SimClock` works without an import
    cycle).  Without a clock, only wall durations are recorded.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self.finished: list[Span] = []
        self._stack: list[Span] = []

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span)."""
        return len(self._stack)

    def _sim_now(self) -> float | None:
        return None if self.clock is None else self.clock.now

    @contextmanager
    def span(self, name: str, **labels):
        """Open a nested span; yields the :class:`Span` handle."""
        if not name:
            raise ReproError("span name cannot be empty")
        span = Span(
            name=name,
            labels=dict(sorted(labels.items())),
            depth=len(self._stack),
            parent=self._stack[-1].name if self._stack else None,
            wall_start=time.perf_counter(),
            sim_start=self._sim_now(),
        )
        if self.clock is not None:
            span._sim_now = lambda: self.clock.now  # type: ignore[method-assign]
        self._stack.append(span)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            popped.wall_seconds = time.perf_counter() - popped.wall_start
            if popped.sim_start is not None:
                popped.sim_seconds = self.clock.now - popped.sim_start
            self.finished.append(popped)

    def snapshot(self, include_wall: bool = False) -> list[dict]:
        """Finished spans as plain dicts (completion order).

        Wall durations are excluded by default so that two runs of the
        same simulated workload produce identical JSON; pass
        ``include_wall=True`` for profiling output.
        """
        out = []
        for span in self.finished:
            entry = {
                "depth": span.depth,
                "events": [
                    {"fields": event.fields, "name": event.name,
                     "sim_offset": event.sim_offset}
                    for event in span.events
                ],
                "labels": span.labels,
                "name": span.name,
                "parent": span.parent,
                "sim_seconds": span.sim_seconds,
            }
            if include_wall:
                entry["wall_seconds"] = span.wall_seconds
                for event, raw in zip(entry["events"], span.events):
                    event["wall_offset"] = raw.wall_offset
            out.append(entry)
        return out

    def reset(self) -> None:
        """Drop all finished spans (open spans are kept)."""
        self.finished.clear()
