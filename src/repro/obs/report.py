"""Run reports: the metrics registry rendered for humans and machines.

One :class:`RunReport` is the end-of-run artifact of any experiment in
this reproduction: a grouped, human-readable table of every metric
series (the E5/E6/E7 accounting the paper tabulates -- pages written,
bytes shipped, signatures computed) and a *stable* JSON document
(sorted keys, no wall-clock noise by default) that benchmark and CI
runs can diff between revisions.
"""

from __future__ import annotations

import json

from .registry import HistogramBase, MetricsRegistry, labels_to_str
from .tracer import Tracer

#: Version tag of the JSON layout; bump on incompatible changes.
SCHEMA = "repro.obs/run-report/v1"


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_histogram(summary: dict) -> str:
    return (f"n={summary['count']} p50={_format_value(summary['p50'])} "
            f"p90={_format_value(summary['p90'])} "
            f"p99={_format_value(summary['p99'])} "
            f"p999={_format_value(summary['p999'])} "
            f"max={_format_value(summary['max'])}")


class RunReport:
    """Renders a registry (and optional tracer) as tables or JSON."""

    def __init__(self, registry: MetricsRegistry, tracer: Tracer | None = None,
                 meta: dict | None = None):
        self.registry = registry
        self.tracer = tracer
        self.meta = dict(sorted((meta or {}).items()))

    # ------------------------------------------------------------------
    # Machine-readable
    # ------------------------------------------------------------------

    def to_dict(self, include_wall: bool = False) -> dict:
        """The stable JSON-ready document (sorted, deterministic)."""
        document = {
            "meta": self.meta,
            "metrics": self.registry.snapshot(),
            "schema": SCHEMA,
        }
        if self.tracer is not None:
            document["spans"] = self.tracer.snapshot(include_wall=include_wall)
        return document

    def to_json(self, indent: int | None = 2,
                include_wall: bool = False) -> str:
        """Serialize :meth:`to_dict` with sorted keys."""
        return json.dumps(self.to_dict(include_wall=include_wall),
                          indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Human-readable
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Grouped metric tables, one section per subsystem prefix."""
        lines: list[str] = []
        if self.meta:
            lines.append("run: " + ", ".join(
                f"{key}={value}" for key, value in self.meta.items()
            ))
        groups: dict[str, list] = {}
        for series in self.registry.series():
            groups.setdefault(series.name.split(".", 1)[0], []).append(series)
        if not groups:
            lines.append("(no metrics recorded)")
        for group in sorted(groups):
            rows = []
            for series in groups[group]:
                if isinstance(series, HistogramBase):
                    value = _format_histogram(series.snapshot()["value"])
                else:
                    value = _format_value(series.value)
                labels = labels_to_str(series.labels)
                rows.append((series.name, labels, value))
            lines.append("")
            lines.append(f"== {group} ==")
            name_width = max(len(row[0]) for row in rows)
            label_width = max(len(row[1]) for row in rows)
            for name, labels, value in rows:
                lines.append(
                    f"  {name:<{name_width}}  {labels:<{label_width}}  {value}"
                )
        if self.tracer is not None and self.tracer.finished:
            lines.append("")
            lines.append("== spans ==")
            for span in self.tracer.finished:
                indent = "  " * (span.depth + 1)
                sim = ("-" if span.sim_seconds is None
                       else f"{span.sim_seconds * 1e3:.3f} ms sim")
                lines.append(
                    f"{indent}{span.name}  {sim}  "
                    f"{span.wall_seconds * 1e3:.3f} ms wall"
                )
        return "\n".join(lines)
