"""Observability layer: metrics registry, span tracing, run reports.

The measurement substrate for the whole reproduction.  The paper's
core claims about SDDS signatures are accounting results (bytes not
shipped, pages not written, signatures computed); every subsystem
emits that accounting into one injectable :class:`MetricsRegistry`,
spans nest through :class:`Tracer` over wall and simulated clocks, and
:class:`RunReport` renders both as human tables and stable JSON.

Quick tour::

    from repro.obs import get_registry, MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        ...  # run any workload: sdds ops, backups, parity updates
    print(registry.snapshot()["net.bytes"])
"""

from .registry import (
    BucketedHistogram,
    Counter,
    Gauge,
    HandleCache,
    Histogram,
    HistogramBase,
    MetricError,
    MetricsRegistry,
    Snapshotable,
    get_registry,
    labels_to_str,
    registry_epoch,
    set_registry,
    use_registry,
)
from .tracer import Span, SpanEvent, Tracer
from .report import SCHEMA, RunReport
from .trace import (
    TRACE_SCHEMA,
    SpanHandle,
    TraceContext,
    TraceError,
    TraceSpan,
    TraceStore,
    activate,
    active_store,
    span_if_active,
)
from .recorder import FlightRecorder, RecorderDump, frame_digest
from .prometheus import to_prometheus

__all__ = [
    "BucketedHistogram",
    "Counter",
    "Gauge",
    "HandleCache",
    "registry_epoch",
    "Histogram",
    "HistogramBase",
    "MetricError",
    "MetricsRegistry",
    "Snapshotable",
    "get_registry",
    "set_registry",
    "use_registry",
    "labels_to_str",
    "Span",
    "SpanEvent",
    "Tracer",
    "RunReport",
    "SCHEMA",
    "TRACE_SCHEMA",
    "SpanHandle",
    "TraceContext",
    "TraceError",
    "TraceSpan",
    "TraceStore",
    "activate",
    "active_store",
    "span_if_active",
    "FlightRecorder",
    "RecorderDump",
    "frame_digest",
    "to_prometheus",
]
