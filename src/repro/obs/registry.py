"""Labeled metric series: counters, gauges, and histograms.

The paper's headline results are accounting numbers -- bytes not
shipped by pseudo-updates (Section 2.2), pages not written by the
signature-map backup (Section 2.1), signatures computed per scan
(Section 2.3).  :class:`MetricsRegistry` is the one place that
accounting lands: every instrumented subsystem (signature calculus,
SDDS protocols, simulated network/disk, backup engine, LH*RS parity)
emits into named, labeled series such as
``sig.bytes_signed{field=gf16,variant=standard}``, and every
experiment reads comparable numbers back out instead of threading
ad-hoc counters by hand.

The registry is process-wide by default (:func:`get_registry`) but
injectable: benchmarks and tests install a fresh one with
:func:`set_registry` or the :func:`use_registry` context manager, so
concurrent experiments never share counters.
"""

from __future__ import annotations

import math
import re
import threading
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

from ..errors import ReproError


class MetricError(ReproError):
    """Invalid metric name, label, or series-type conflict."""


#: Metric names: lowercase dotted paths, e.g. ``backup.pages_written``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
#: Label keys: lowercase identifiers, e.g. ``field``, ``op``.
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Canonical label encoding: sorted ``key=value`` pairs joined by commas.
LabelItems = tuple  # tuple[tuple[str, str], ...]


@runtime_checkable
class Snapshotable(Protocol):
    """Anything that can render itself as a plain, JSON-ready dict.

    The shared contract between the legacy SDDS counters
    (:class:`repro.sim.stats.TrafficStats`,
    :class:`repro.sim.stats.DiskStats`) and the obs layer: a
    ``snapshot()`` with deterministic key ordering, so report JSON
    diffs cleanly between runs.
    """

    def snapshot(self) -> dict:
        """Plain-dict view with deterministic key ordering."""
        ...


def _canonical_labels(labels: dict) -> LabelItems:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label key {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def labels_to_str(items: LabelItems) -> str:
    """Render canonical label items as ``k=v,k2=v2`` (empty for none)."""
    return ",".join(f"{key}={value}" for key, value in items)


class Counter:
    """A monotonically increasing series (events, bytes, pages)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add a non-negative amount to the counter."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view of the series."""
        return {"labels": dict(self.labels), "type": "counter",
                "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}{{{labels_to_str(self.labels)}}}={self.value})"


class Gauge:
    """A series holding the latest value (sizes, levels, ratios)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        """Adjust the gauge by a (possibly negative) amount."""
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view of the series."""
        return {"labels": dict(self.labels), "type": "gauge",
                "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}{{{labels_to_str(self.labels)}}}={self.value})"


class HistogramBase:
    """Shared contract of the two histogram backends.

    Both backends keep O(1) *running* aggregates -- count, sum, sum of
    squares, min, max -- updated on every :meth:`observe`, so the
    summary statistics never rescan observations.  Subclasses supply
    the distribution storage (raw samples or log buckets) and the
    percentile query over it.
    """

    __slots__ = ("name", "labels", "_count", "_sum", "_sum_sq",
                 "_min", "_max")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _account(self, value: float) -> None:
        """Fold one observation into the running aggregates (O(1))."""
        self._count += 1
        self._sum += value
        self._sum_sq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def observe(self, value: int | float) -> None:
        """Record one observation (subclasses store the distribution)."""
        raise NotImplementedError

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 <= p <= 100) of the distribution."""
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Number of observations (O(1))."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations (O(1) running aggregate)."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (0 when empty; O(1))."""
        return self._min if self._count else 0

    @property
    def max(self) -> float:
        """Largest observation (0 when empty; O(1))."""
        return self._max if self._count else 0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 when empty; O(1))."""
        if not self._count:
            return 0.0
        mean = self._sum / self._count
        variance = self._sum_sq / self._count - mean * mean
        return math.sqrt(max(variance, 0.0))

    def _check_percentile(self, p: float) -> None:
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} outside 0..100")

    def snapshot(self) -> dict:
        """Percentile summary of the series (deterministic key order)."""
        return {
            "labels": dict(self.labels),
            "type": "histogram",
            "value": {
                "count": self.count,
                "max": self.max,
                "min": self.min,
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99),
                "p999": self.percentile(99.9),
                "stddev": self.stddev,
                "sum": self.sum,
            },
        }

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name}"
                f"{{{labels_to_str(self.labels)}}}, n={self.count})")


class Histogram(HistogramBase):
    """The exact backend: keeps every raw observation.

    Simulation runs are finite, so percentiles can be exact:
    ``percentile(p)`` uses linear interpolation between closest ranks,
    matching ``numpy.percentile``'s default.  Memory is O(n) in the
    observation count -- for series that must survive millions of
    observations, select the :class:`BucketedHistogram` backend via
    :meth:`MetricsRegistry.set_histogram_backend`.
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        self._account(value)

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 <= p <= 100), linearly interpolated."""
        self._check_percentile(p)
        if not self._values:
            return 0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = (len(self._values) - 1) * p / 100
        low = int(rank)
        high = min(low + 1, len(self._values) - 1)
        fraction = rank - low
        return self._values[low] * (1 - fraction) + self._values[high] * fraction

    def values(self) -> list[float]:
        """The raw observations (a copy, in insertion order)."""
        return list(self._values)

    def merge_from(self, other: "HistogramBase") -> None:
        """Fold another *exact* histogram's observations into this one.

        Only exact sources merge exactly; folding a bucketed series
        into an exact one would fabricate samples, so it is rejected
        (merge in the other direction instead -- see
        :meth:`BucketedHistogram.merge_from`).
        """
        if not isinstance(other, Histogram):
            raise MetricError(
                f"cannot merge {type(other).__name__} into exact "
                f"histogram {self.name} (merge into a bucketed series)"
            )
        for value in other._values:
            self.observe(value)


class BucketedHistogram(HistogramBase):
    """The bounded backend: HDR-style logarithmic buckets.

    Observations land in geometric buckets whose boundaries grow by
    :data:`GROWTH` (4% per bucket), so any percentile read from a
    bucket's geometric midpoint is within ~2% relative error of the
    true value -- while memory stays O(distinct buckets), independent
    of the observation count.  Zero and negative observations get their
    own exact-zero slot and mirrored negative buckets, so the backend
    is safe for any real-valued series.  Buckets are plain
    ``dict[int, int]`` counts, which makes two bucketed series
    mergeable by adding counts -- the fleet-view operation
    :meth:`MetricsRegistry.merge_from` relies on.
    """

    #: Geometric bucket growth factor: boundaries at GROWTH**k.
    GROWTH = 1.04

    __slots__ = ("_positive", "_negative", "_zero")

    def __init__(self, name: str, labels: LabelItems):
        super().__init__(name, labels)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0

    @classmethod
    def _index(cls, magnitude: float) -> int:
        return math.floor(math.log(magnitude) / math.log(cls.GROWTH))

    @classmethod
    def _midpoint(cls, index: int) -> float:
        # Geometric midpoint of [GROWTH**i, GROWTH**(i+1)).
        return cls.GROWTH ** (index + 0.5)

    def observe(self, value: int | float) -> None:
        """Record one observation into its logarithmic bucket."""
        value = float(value)
        if value == 0.0:
            self._zero += 1
        elif value > 0.0:
            index = self._index(value)
            self._positive[index] = self._positive.get(index, 0) + 1
        else:
            index = self._index(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
        self._account(value)

    @property
    def bucket_count(self) -> int:
        """Distinct buckets in use (the memory footprint, plus O(1))."""
        return (len(self._positive) + len(self._negative) +
                (1 if self._zero else 0))

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` pairs in ascending value order.

        The exposition shape: upper bound of each occupied bucket with
        its (non-cumulative) count; negative buckets report the bound
        nearer zero, the zero slot reports bound 0.0.
        """
        out: list[tuple[float, int]] = []
        for index in sorted(self._negative, reverse=True):
            out.append((-(self.GROWTH ** index), self._negative[index]))
        if self._zero:
            out.append((0.0, self._zero))
        for index in sorted(self._positive):
            out.append((self.GROWTH ** (index + 1), self._positive[index]))
        return out

    def _ordered(self) -> Iterator[tuple[float, int]]:
        """(representative value, count) in ascending value order."""
        for index in sorted(self._negative, reverse=True):
            yield -self._midpoint(index), self._negative[index]
        if self._zero:
            yield 0.0, self._zero
        for index in sorted(self._positive):
            yield self._midpoint(index), self._positive[index]

    def percentile(self, p: float) -> float:
        """The p-th percentile from bucket midpoints (~2% relative).

        The extremes are exact: running min/max pin p=0 and p=100, and
        every interior answer is clamped into [min, max].
        """
        self._check_percentile(p)
        if not self._count:
            return 0
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        rank = (self._count - 1) * p / 100
        seen = 0
        for representative, count in self._ordered():
            seen += count
            if rank < seen:
                return min(max(representative, self._min), self._max)
        return self._max

    def merge_from(self, other: "HistogramBase") -> None:
        """Fold another histogram into this one (the fleet view).

        Bucketed sources merge by adding bucket counts; exact sources
        are re-observed value by value (exact -> bucketed narrowing is
        allowed, the reverse is not).
        """
        if isinstance(other, BucketedHistogram):
            for index, count in other._positive.items():
                self._positive[index] = self._positive.get(index, 0) + count
            for index, count in other._negative.items():
                self._negative[index] = self._negative.get(index, 0) + count
            self._zero += other._zero
            self._count += other._count
            self._sum += other._sum
            self._sum_sq += other._sum_sq
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        elif isinstance(other, Histogram):
            for value in other._values:
                self.observe(value)
        else:
            raise MetricError(
                f"cannot merge {type(other).__name__} into {self.name}"
            )


class MetricsRegistry:
    """A namespace of labeled metric series.

    Series are created on first touch and shared thereafter:
    ``registry.counter("net.bytes", kind="update")`` always returns the
    same :class:`Counter` for the same name and label set.  Names are
    dotted lowercase paths whose first segment is the subsystem
    (``sig``, ``net``, ``disk``, ``sdds``, ``backup``, ``parity`` --
    the DESIGN.md naming convention).
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelItems], Counter | Gauge | HistogramBase] = {}
        self._histogram_backends: dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, labels: dict):
        key = (name, _canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            if not _NAME_RE.match(name):
                raise MetricError(f"invalid metric name {name!r}")
            with self._lock:
                series = self._series.setdefault(key, cls(name, key[1]))
        if not isinstance(series, cls):
            raise MetricError(
                f"metric {name} already registered as "
                f"{type(series).__name__}, not {cls.__name__}"
            )
        return series

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter series for ``name`` + labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge series for ``name`` + labels."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> HistogramBase:
        """Get or create the histogram series for ``name`` + labels.

        The backend is chosen per *name* -- exact raw-sample by
        default, the bounded :class:`BucketedHistogram` when
        :meth:`set_histogram_backend` selected it before first touch.
        """
        backend = self._histogram_backends.get(name, "exact")
        cls = BucketedHistogram if backend == "bucketed" else Histogram
        return self._get(cls, name, labels)

    def set_histogram_backend(self, name: str, backend: str) -> None:
        """Select the histogram backend (exact/bucketed) for ``name``.

        Must run before the series is first touched: high-volume series
        (``cluster.op_seconds`` under an open-loop load generator)
        declare ``bucketed`` up front so they never accumulate raw
        samples.  Changing the backend of an already-created series is
        a wiring error and rejected.
        """
        if backend not in ("exact", "bucketed"):
            raise MetricError(f"unknown histogram backend {backend!r}")
        wanted = BucketedHistogram if backend == "bucketed" else Histogram
        for (series_name, _items), series in self._series.items():
            if series_name == name and not isinstance(series, wanted):
                raise MetricError(
                    f"histogram {name} already created as "
                    f"{type(series).__name__}; select the backend first"
                )
        self._histogram_backends[name] = backend

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def series(self) -> Iterator[Counter | Gauge | HistogramBase]:
        """All series, ordered by (name, labels) for determinism."""
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    def total(self, name: str, **labels) -> float:
        """Sum of all counter/gauge series of ``name`` matching ``labels``.

        A series matches when every given label equals its value; extra
        labels on the series are ignored, so
        ``registry.total("net.bytes")`` sums over all message kinds.
        """
        match = _canonical_labels(labels)
        total = 0
        for (series_name, items), series in self._series.items():
            if series_name != name:
                continue
            if isinstance(series, HistogramBase):
                continue
            if all(item in items for item in match):
                total += series.value
        return total

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one: the fleet view.

        Per-node registries merge into one aggregate the way paper-run
        accounting is tabulated across servers: counters and gauges add
        their values, histograms merge their distributions (bucketed
        series by adding bucket counts; exact series sample by sample;
        exact sources may narrow into a bucketed target but not the
        reverse).  Series missing on this side are created with the
        source's type.
        """
        for (name, items), series in sorted(other._series.items()):
            if isinstance(series, HistogramBase):
                mine = self._series.get((name, items))
                if mine is None:
                    # Adopt the source's backend choice so later
                    # ``histogram()`` calls resolve to the same class.
                    if isinstance(series, BucketedHistogram):
                        self._histogram_backends.setdefault(name, "bucketed")
                    mine = self._get(type(series), name, dict(items))
                elif not isinstance(mine, HistogramBase):
                    raise MetricError(
                        f"metric {name} already registered as "
                        f"{type(mine).__name__}, not a histogram"
                    )
                mine.merge_from(series)
            elif isinstance(series, Counter):
                self.counter(name, **dict(items)).inc(series.value)
            else:
                self.gauge(name, **dict(items)).inc(series.value)

    def snapshot(self) -> dict:
        """Deterministic nested dict: name -> label string -> value.

        Counters and gauges map to their scalar value; histograms to
        their percentile summary.  All keys are sorted, so two runs of
        the same workload produce byte-identical JSON.

        When any bucketed histogram exists, the telemetry plane's own
        footprint gauge ``obs.histogram_buckets`` is refreshed first so
        the snapshot reports the bounded-memory claim it makes.
        """
        bucketed = [series for series in self._series.values()
                    if isinstance(series, BucketedHistogram)]
        if bucketed:
            self.gauge("obs.histogram_buckets").set(
                sum(series.bucket_count for series in bucketed)
            )
        out: dict[str, dict] = {}
        for series in self.series():
            body = series.snapshot()
            out.setdefault(series.name, {})[labels_to_str(series.labels)] = \
                body["value"]
        return out

    def reset(self) -> None:
        """Drop every series (fresh accounting for a new experiment)."""
        with self._lock:
            self._series.clear()


# ----------------------------------------------------------------------
# The process-wide default registry (injectable)
# ----------------------------------------------------------------------

_default_registry = MetricsRegistry()
_active_registry = _default_registry

#: Bumped by every :func:`set_registry` (hence every :func:`use_registry`
#: enter/exit).  Hot paths cache resolved metric handles against this
#: epoch and refresh only when it moves, so per-event metrics cost one
#: module-attribute load + integer compare instead of a registry lookup.
epoch = 0


def get_registry() -> MetricsRegistry:
    """The currently active registry (process-wide unless injected)."""
    return _active_registry


def registry_epoch() -> int:
    """Monotonic counter of registry switches (see :data:`epoch`)."""
    return epoch


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active_registry, epoch
    previous = _active_registry
    _active_registry = registry
    epoch += 1
    return previous


class HandleCache:
    """Per-owner cache of resolved metric handles, epoch-invalidated.

    Hoists :func:`get_registry` out of per-call hot paths: the owner
    supplies a factory mapping a registry to a tuple of series handles;
    :meth:`get` re-runs it only when :func:`set_registry` has installed
    a different registry since the last call (the ``use_registry`` hook).
    """

    __slots__ = ("_epoch", "_handles")

    def __init__(self) -> None:
        self._epoch = -1
        self._handles = None

    def get(self, factory):
        """The cached handles, refreshed iff the registry switched."""
        if self._epoch != epoch:
            self._handles = factory(_active_registry)
            self._epoch = epoch
        return self._handles


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Context manager installing ``registry`` for the enclosed block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
