"""Labeled metric series: counters, gauges, and histograms.

The paper's headline results are accounting numbers -- bytes not
shipped by pseudo-updates (Section 2.2), pages not written by the
signature-map backup (Section 2.1), signatures computed per scan
(Section 2.3).  :class:`MetricsRegistry` is the one place that
accounting lands: every instrumented subsystem (signature calculus,
SDDS protocols, simulated network/disk, backup engine, LH*RS parity)
emits into named, labeled series such as
``sig.bytes_signed{field=gf16,variant=standard}``, and every
experiment reads comparable numbers back out instead of threading
ad-hoc counters by hand.

The registry is process-wide by default (:func:`get_registry`) but
injectable: benchmarks and tests install a fresh one with
:func:`set_registry` or the :func:`use_registry` context manager, so
concurrent experiments never share counters.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from typing import Iterator, Protocol, runtime_checkable

from ..errors import ReproError


class MetricError(ReproError):
    """Invalid metric name, label, or series-type conflict."""


#: Metric names: lowercase dotted paths, e.g. ``backup.pages_written``.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
#: Label keys: lowercase identifiers, e.g. ``field``, ``op``.
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Canonical label encoding: sorted ``key=value`` pairs joined by commas.
LabelItems = tuple  # tuple[tuple[str, str], ...]


@runtime_checkable
class Snapshotable(Protocol):
    """Anything that can render itself as a plain, JSON-ready dict.

    The shared contract between the legacy SDDS counters
    (:class:`repro.sim.stats.TrafficStats`,
    :class:`repro.sim.stats.DiskStats`) and the obs layer: a
    ``snapshot()`` with deterministic key ordering, so report JSON
    diffs cleanly between runs.
    """

    def snapshot(self) -> dict:
        """Plain-dict view with deterministic key ordering."""
        ...


def _canonical_labels(labels: dict) -> LabelItems:
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise MetricError(f"invalid label key {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


def labels_to_str(items: LabelItems) -> str:
    """Render canonical label items as ``k=v,k2=v2`` (empty for none)."""
    return ",".join(f"{key}={value}" for key, value in items)


class Counter:
    """A monotonically increasing series (events, bytes, pages)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add a non-negative amount to the counter."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view of the series."""
        return {"labels": dict(self.labels), "type": "counter",
                "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}{{{labels_to_str(self.labels)}}}={self.value})"


class Gauge:
    """A series holding the latest value (sizes, levels, ratios)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        """Adjust the gauge by a (possibly negative) amount."""
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-dict view of the series."""
        return {"labels": dict(self.labels), "type": "gauge",
                "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}{{{labels_to_str(self.labels)}}}={self.value})"


class Histogram:
    """A series of observations with percentile queries.

    Keeps raw observations (simulation runs are finite), so
    percentiles are exact: ``percentile(p)`` uses linear interpolation
    between closest ranks, matching ``numpy.percentile``'s default.
    """

    __slots__ = ("name", "labels", "_values", "_sorted")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self._values: list[float] = []
        self._sorted = True

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return sum(self._values)

    @property
    def min(self) -> float:
        """Smallest observation (0 when empty)."""
        return min(self._values) if self._values else 0

    @property
    def max(self) -> float:
        """Largest observation (0 when empty)."""
        return max(self._values) if self._values else 0

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 <= p <= 100), linearly interpolated."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} outside 0..100")
        if not self._values:
            return 0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = (len(self._values) - 1) * p / 100
        low = int(rank)
        high = min(low + 1, len(self._values) - 1)
        fraction = rank - low
        return self._values[low] * (1 - fraction) + self._values[high] * fraction

    def snapshot(self) -> dict:
        """Percentile summary of the series (deterministic key order)."""
        return {
            "labels": dict(self.labels),
            "type": "histogram",
            "value": {
                "count": self.count,
                "max": self.max,
                "min": self.min,
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99),
                "sum": self.sum,
            },
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{{{labels_to_str(self.labels)}}}, "
                f"n={self.count})")


class MetricsRegistry:
    """A namespace of labeled metric series.

    Series are created on first touch and shared thereafter:
    ``registry.counter("net.bytes", kind="update")`` always returns the
    same :class:`Counter` for the same name and label set.  Names are
    dotted lowercase paths whose first segment is the subsystem
    (``sig``, ``net``, ``disk``, ``sdds``, ``backup``, ``parity`` --
    the DESIGN.md naming convention).
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelItems], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Series accessors
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, labels: dict):
        key = (name, _canonical_labels(labels))
        series = self._series.get(key)
        if series is None:
            if not _NAME_RE.match(name):
                raise MetricError(f"invalid metric name {name!r}")
            with self._lock:
                series = self._series.setdefault(key, cls(name, key[1]))
        if not isinstance(series, cls):
            raise MetricError(
                f"metric {name} already registered as "
                f"{type(series).__name__}, not {cls.__name__}"
            )
        return series

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter series for ``name`` + labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge series for ``name`` + labels."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create the histogram series for ``name`` + labels."""
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def series(self) -> Iterator[Counter | Gauge | Histogram]:
        """All series, ordered by (name, labels) for determinism."""
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    def total(self, name: str, **labels) -> float:
        """Sum of all counter/gauge series of ``name`` matching ``labels``.

        A series matches when every given label equals its value; extra
        labels on the series are ignored, so
        ``registry.total("net.bytes")`` sums over all message kinds.
        """
        match = _canonical_labels(labels)
        total = 0
        for (series_name, items), series in self._series.items():
            if series_name != name:
                continue
            if isinstance(series, Histogram):
                continue
            if all(item in items for item in match):
                total += series.value
        return total

    def snapshot(self) -> dict:
        """Deterministic nested dict: name -> label string -> value.

        Counters and gauges map to their scalar value; histograms to
        their percentile summary.  All keys are sorted, so two runs of
        the same workload produce byte-identical JSON.
        """
        out: dict[str, dict] = {}
        for series in self.series():
            body = series.snapshot()
            out.setdefault(series.name, {})[labels_to_str(series.labels)] = \
                body["value"]
        return out

    def reset(self) -> None:
        """Drop every series (fresh accounting for a new experiment)."""
        with self._lock:
            self._series.clear()


# ----------------------------------------------------------------------
# The process-wide default registry (injectable)
# ----------------------------------------------------------------------

_default_registry = MetricsRegistry()
_active_registry = _default_registry

#: Bumped by every :func:`set_registry` (hence every :func:`use_registry`
#: enter/exit).  Hot paths cache resolved metric handles against this
#: epoch and refresh only when it moves, so per-event metrics cost one
#: module-attribute load + integer compare instead of a registry lookup.
epoch = 0


def get_registry() -> MetricsRegistry:
    """The currently active registry (process-wide unless injected)."""
    return _active_registry


def registry_epoch() -> int:
    """Monotonic counter of registry switches (see :data:`epoch`)."""
    return epoch


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active_registry, epoch
    previous = _active_registry
    _active_registry = registry
    epoch += 1
    return previous


class HandleCache:
    """Per-owner cache of resolved metric handles, epoch-invalidated.

    Hoists :func:`get_registry` out of per-call hot paths: the owner
    supplies a factory mapping a registry to a tuple of series handles;
    :meth:`get` re-runs it only when :func:`set_registry` has installed
    a different registry since the last call (the ``use_registry`` hook).
    """

    __slots__ = ("_epoch", "_handles")

    def __init__(self) -> None:
        self._epoch = -1
        self._handles = None

    def get(self, factory):
        """The cached handles, refreshed iff the registry switched."""
        if self._epoch != epoch:
            self._handles = factory(_active_registry)
            self._epoch = epoch
        return self._handles


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Context manager installing ``registry`` for the enclosed block."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
