"""Distributed trace propagation: causality across the SDDS cluster.

The paper's accounting results (bytes not shipped, corruptions
detected) are per-run aggregates; this module adds the *per-operation*
view: a :class:`TraceContext` -- ``(trace_id, span_id)`` pair -- rides
inside every signature-sealed wire frame of the cluster transport, so
the spans a client, a server node, the storage plane and the parity
group emit for one SDDS operation assemble into a single cross-node
tree.  Identifiers are drawn deterministically from the run seed, and
spans carry only simulated-clock timestamps, so two same-seed runs of a
faulty-cluster scenario export byte-identical trace JSON -- the same
determinism discipline the cluster's run reports already obey.

Exports come in two shapes:

* a stable JSON document (:meth:`TraceStore.to_dict` /
  :meth:`TraceStore.to_json`, schema :data:`TRACE_SCHEMA`) nesting each
  trace's spans parent-under-child;
* the Chrome trace-event format (:meth:`TraceStore.to_chrome`), loadable
  in ``chrome://tracing`` / Perfetto, with one "process" lane per node.

Deep subsystems (the SDDS server, the durable page store, the LH*RS
parity group) do not know about the cluster; they call
:func:`span_if_active`, which opens a child span only when a request is
being traced right now and costs one attribute check otherwise.
"""

from __future__ import annotations

import json
import random
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ReproError

#: Version tag of the trace-export JSON layout; bump on shape changes.
TRACE_SCHEMA = "repro.obs/trace-export/v1"


class TraceError(ReproError):
    """Invalid trace operation (empty name, unbalanced finish, ...)."""


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The wire-portable identity of one span: what child spans cite.

    ``trace_id`` names the whole per-operation tree; ``span_id`` the
    emitting span.  Both are 64-bit values drawn from the run-seeded
    stream, so they fit the fixed little-endian wire layouts of
    :mod:`repro.cluster.wire` (no pickling on the SDDS wire, ever).
    """

    trace_id: int
    span_id: int

    def __post_init__(self) -> None:
        for name in ("trace_id", "span_id"):
            value = getattr(self, name)
            if not 0 <= value < 1 << 64:
                raise TraceError(f"{name} {value} outside the 64-bit range")


class TraceSpan:
    """One finished (or in-flight) span of a cross-node trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "labels", "start", "end", "status", "events")

    def __init__(self, trace_id: int, span_id: int, parent_id: int | None,
                 name: str, node: str, labels: dict, start: float):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.labels = labels
        self.start = start
        self.end: float | None = None
        self.status = "ok"
        self.events: list[dict] = []

    @property
    def context(self) -> TraceContext:
        """This span's wire-portable identity."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def sim_seconds(self) -> float:
        """Simulated duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def snapshot(self) -> dict:
        """Plain-dict view (deterministic key order, sim clock only)."""
        return {
            "end": self.end,
            "events": self.events,
            "labels": self.labels,
            "name": self.name,
            "node": self.node,
            "parent_id": self.parent_id,
            "span_id": self.span_id,
            "start": self.start,
            "status": self.status,
            "trace_id": self.trace_id,
        }

    def __repr__(self) -> str:
        return (f"TraceSpan({self.name}@{self.node}, trace={self.trace_id:x},"
                f" span={self.span_id:x})")


class SpanHandle:
    """Context-manager handle on one open span.

    Entering pushes the span's context onto the owning store's context
    stack (so :func:`span_if_active` instrumentation deeper in the call
    stack attaches its spans here); exiting finishes the span and pops.
    """

    __slots__ = ("store", "span", "_entered")

    def __init__(self, store: "TraceStore", span: TraceSpan):
        self.store = store
        self.span = span
        self._entered = False

    @property
    def context(self) -> TraceContext:
        """The underlying span's wire-portable identity."""
        return self.span.context

    def event(self, name: str, **fields) -> None:
        """Record one structured event at the current simulated time."""
        self.span.events.append({
            "at": self.store.now(),
            "fields": dict(sorted(fields.items())),
            "name": name,
        })

    def finish(self, status: str = "ok") -> None:
        """Close the span (idempotent) with the given status."""
        if self.span.end is None:
            self.span.status = status
            self.store._finish(self.span)

    def __enter__(self) -> "SpanHandle":
        self.store._push(self.span.context)
        self._entered = True
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self._entered:
            self.store._pop()
            self._entered = False
        self.finish("error" if exc_type is not None else "ok")


class TraceStore:
    """Collects spans from every node and assembles per-op trace trees.

    Identifiers come from one ``random.Random`` stream seeded by the
    run seed, and timestamps from the shared simulated clock, so the
    exported documents are a deterministic function of the scenario --
    the property the cluster's same-seed acceptance tests pin.
    """

    def __init__(self, seed: int = 0, clock=None):
        self.seed = seed
        self.clock = clock
        self.finished: list[TraceSpan] = []
        self.open_spans = 0
        #: Called with each finished span (the cluster routes these into
        #: per-node flight recorders).
        self.on_finish: Callable[[TraceSpan], None] | None = None
        self._rng = random.Random(f"{seed}|trace")
        self._stack: list[TraceContext] = []

    # ------------------------------------------------------------------
    # Clock and identifiers
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Current simulated time (0.0 without a clock)."""
        return 0.0 if self.clock is None else self.clock.now

    def _new_id(self) -> int:
        return self._rng.getrandbits(64)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def _make(self, name: str, node: str, trace_id: int,
              parent_id: int | None, labels: dict) -> SpanHandle:
        if not name:
            raise TraceError("span name cannot be empty")
        span = TraceSpan(trace_id, self._new_id(), parent_id, name, node,
                         dict(sorted(labels.items())), self.now())
        self.open_spans += 1
        return SpanHandle(self, span)

    def begin(self, name: str, node: str = "", **labels) -> SpanHandle:
        """Open the *root* span of a brand-new trace."""
        return self._make(name, node, self._new_id(), None, labels)

    def child(self, name: str, parent: TraceContext, node: str = "",
              **labels) -> SpanHandle:
        """Open a span under an explicit (possibly remote) parent."""
        return self._make(name, node, parent.trace_id, parent.span_id,
                          labels)

    def span(self, name: str, node: str = "", **labels) -> SpanHandle:
        """Open a span under the *current* context (root if none)."""
        if self._stack:
            return self.child(name, self._stack[-1], node=node, **labels)
        return self.begin(name, node=node, **labels)

    def _finish(self, span: TraceSpan) -> None:
        span.end = self.now()
        self.open_spans -= 1
        self.finished.append(span)
        from .registry import get_registry

        get_registry().counter("obs.trace_spans", span=span.name).inc()
        if self.on_finish is not None:
            self.on_finish(span)

    # ------------------------------------------------------------------
    # The current-context stack (single-threaded simulation discipline)
    # ------------------------------------------------------------------

    @property
    def current(self) -> TraceContext | None:
        """The innermost active context, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def _push(self, context: TraceContext) -> None:
        self._stack.append(context)

    def _pop(self) -> None:
        if not self._stack:
            raise TraceError("context stack underflow (unbalanced exit)")
        self._stack.pop()

    # ------------------------------------------------------------------
    # Assembly and export
    # ------------------------------------------------------------------

    def traces(self) -> dict[int, list[TraceSpan]]:
        """Finished spans grouped by trace id (insertion-ordered)."""
        grouped: dict[int, list[TraceSpan]] = {}
        for span in self.finished:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def roots(self) -> list[TraceSpan]:
        """Every finished span with no parent, in completion order."""
        return [span for span in self.finished if span.parent_id is None]

    def _nest(self, spans: list[TraceSpan]) -> list[dict]:
        """Tree-shape one trace's spans: children under their parents."""
        by_id = {span.span_id: span.snapshot() for span in spans}
        for body in by_id.values():
            body["children"] = []
        top: list[dict] = []
        for span in spans:  # completion order keeps this deterministic
            body = by_id[span.span_id]
            parent = by_id.get(span.parent_id) if span.parent_id is not None \
                else None
            if parent is None:
                top.append(body)
            else:
                parent["children"].append(body)
        return top

    def to_dict(self) -> dict:
        """The stable trace-export document (sorted-key JSON ready)."""
        documents = []
        for trace_id, spans in sorted(self.traces().items(),
                                      key=lambda item: min(
                                          s.start for s in item[1])):
            documents.append({
                "span_count": len(spans),
                "spans": self._nest(spans),
                "trace_id": trace_id,
            })
        return {"schema": TRACE_SCHEMA, "trace_count": len(documents),
                "traces": documents}

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize :meth:`to_dict` with sorted keys (byte-stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (``chrome://tracing``).

        Complete spans (``ph: "X"``) with microsecond timestamps; the
        "process" lane is the emitting node, the "thread" the trace id,
        so one operation reads as one row across node lanes.
        """
        events = []
        for span in self.finished:
            events.append({
                "args": {**span.labels, "span_id": f"{span.span_id:016x}",
                         "status": span.status},
                "cat": "repro",
                "dur": int(round(span.sim_seconds * 1e6)),
                "name": span.name,
                "ph": "X",
                "pid": span.node or "?",
                "tid": f"{span.trace_id:016x}",
                "ts": int(round(span.start * 1e6)),
            })
        events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
        return {"displayTimeUnit": "ms", "traceEvents": events}

    def reset(self) -> None:
        """Drop finished spans (open spans and the stack are kept)."""
        self.finished.clear()


# ----------------------------------------------------------------------
# The module-active store: how deep subsystems join a trace
# ----------------------------------------------------------------------

_active: TraceStore | None = None


def active_store() -> TraceStore | None:
    """The trace store currently activated (None outside tracing)."""
    return _active


@contextmanager
def activate(store: TraceStore) -> Iterator[TraceStore]:
    """Make ``store`` the active one for the enclosed block (reentrant)."""
    global _active
    previous = _active
    _active = store
    try:
        yield store
    finally:
        _active = previous


def span_if_active(name: str, node: str = "", **labels):
    """A child span when a traced request is in flight, else a no-op.

    The hook deep subsystems (SDDS server, page store, parity group)
    use: outside a traced operation it returns a shared null context at
    the cost of one module-attribute check, so the paper's hot paths
    pay nothing when tracing is idle.
    """
    store = _active
    if store is None or not store._stack:
        return nullcontext(None)
    return store.span(name, node=node, **labels)
