"""Single-node concurrency managers: signatures vs the alternatives.

Section 2.2 positions the signature check as an optimistic concurrency
control "freely inspired by the optimistic option of MS-Access": clients
read without waiting, and a commit is accepted only if the record still
matches the before-signature.  This module isolates that logic from the
SDDS plumbing so interleaving experiments and property tests can drive
it directly, alongside two comparators:

* :class:`TrustworthyManager` -- the paper's "if there is an update
  request, then there is a data change" policy of contemporary DBMSs:
  every update is applied unconditionally.  Demonstrably loses updates
  under read-modify-write races.
* :class:`TimestampManager` -- the timestamp/version alternative the
  paper attributes to MS-Access.  Correct, but stores extra bytes per
  record, which the signature scheme avoids ("the storage overhead can
  be zero").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import KeyNotFoundError
from ..sig.scheme import AlgebraicSignatureScheme


class CommitOutcome(Enum):
    """Result of attempting to commit an update."""

    APPLIED = "applied"
    PSEUDO = "pseudo"      #: filtered: the update does not change the record
    CONFLICT = "conflict"  #: an intervening update was detected; rolled back


@dataclass(frozen=True, slots=True)
class ReadHandle:
    """What a client holds after reading a record, scheme-dependent.

    ``token`` is whatever the manager needs at commit time: the
    before-image bytes for the signature manager, a version number for
    the timestamp manager, nothing for the trustworthy manager.
    """

    key: int
    value: bytes
    token: object


class SignatureManager:
    """Optimistic concurrency through algebraic signatures (Section 2.2).

    No locks, no stored metadata: the server recomputes the record's
    signature at commit time and compares it with the signature of the
    client's before-image.
    """

    #: Extra bytes stored per record by this scheme.
    storage_overhead_per_record = 0

    def __init__(self, scheme: AlgebraicSignatureScheme):
        self.scheme = scheme
        self._records: dict[int, bytes] = {}

    def insert(self, key: int, value: bytes) -> None:
        """Insert a record (no signature work: Section 2.2)."""
        self._records[key] = bytes(value)

    def read(self, key: int) -> ReadHandle:
        """Read without any wait; the before-image is the commit token."""
        value = self._get(key)
        return ReadHandle(key, value, token=value)

    def commit(self, handle: ReadHandle, new_value: bytes) -> CommitOutcome:
        """Attempt the update read-modify-write style."""
        before: bytes = handle.token  # type: ignore[assignment]
        sig_before = self.scheme.sign(before, strict=False)
        sig_after = self.scheme.sign(new_value, strict=False)
        if sig_before == sig_after:
            return CommitOutcome.PSEUDO
        current = self._get(handle.key)
        if self.scheme.sign(current, strict=False) != sig_before:
            return CommitOutcome.CONFLICT
        self._records[handle.key] = bytes(new_value)
        return CommitOutcome.APPLIED

    def value(self, key: int) -> bytes:
        """Current record value (for verification)."""
        return self._get(key)

    def _get(self, key: int) -> bytes:
        if key not in self._records:
            raise KeyNotFoundError(f"no record {key}")
        return self._records[key]


class TrustworthyManager:
    """The unconditional-apply policy of the DBMSs the paper surveys.

    Keeps no concurrency information whatsoever; a read-modify-write
    race silently overwrites the intervening update (the lost update the
    signature scheme prevents).
    """

    storage_overhead_per_record = 0

    def __init__(self):
        self._records: dict[int, bytes] = {}

    def insert(self, key: int, value: bytes) -> None:
        """Insert a record."""
        self._records[key] = bytes(value)

    def read(self, key: int) -> ReadHandle:
        """Read; there is nothing to remember for commit."""
        return ReadHandle(key, self._records[key], token=None)

    def commit(self, handle: ReadHandle, new_value: bytes) -> CommitOutcome:
        """Apply unconditionally -- "trustworthy" in the paper's sense."""
        self._records[handle.key] = bytes(new_value)
        return CommitOutcome.APPLIED

    def value(self, key: int) -> bytes:
        """Current record value (for verification)."""
        return self._records[key]


class TimestampManager:
    """Version-number optimistic control (the MS-Access-style approach).

    Correct like the signature scheme but pays stored metadata per
    record -- the overhead Section 2.2 notes signatures can avoid -- and
    cannot detect pseudo-updates (a same-value write bumps the version
    and is shipped and applied like any other).
    """

    #: An 8-byte version per record.
    storage_overhead_per_record = 8

    def __init__(self):
        self._records: dict[int, tuple[bytes, int]] = {}

    def insert(self, key: int, value: bytes) -> None:
        """Insert a record at version 0."""
        self._records[key] = (bytes(value), 0)

    def read(self, key: int) -> ReadHandle:
        """Read; the commit token is the version number."""
        value, version = self._records[key]
        return ReadHandle(key, value, token=version)

    def commit(self, handle: ReadHandle, new_value: bytes) -> CommitOutcome:
        """Apply iff the version is unchanged since the read."""
        current_value, current_version = self._records[handle.key]
        if current_version != handle.token:
            return CommitOutcome.CONFLICT
        self._records[handle.key] = (bytes(new_value), current_version + 1)
        return CommitOutcome.APPLIED

    def value(self, key: int) -> bytes:
        """Current record value (for verification)."""
        return self._records[key][0]
