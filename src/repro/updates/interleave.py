"""Interleaving harness: drive concurrent read-modify-write schedules.

Lets tests and experiments run the same adversarial schedules against
every concurrency manager and compare outcomes.  The canonical schedule
is the lost-update race of Section 2.2: two clients read the same
record, both modify, both commit -- the second commit must be rolled
back (signatures, timestamps) or it silently destroys the first update
(the trustworthy policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .protocol import CommitOutcome, ReadHandle

Mutator = Callable[[bytes], bytes]


@dataclass(slots=True)
class ClientScript:
    """One client's intended read-modify-write against one key."""

    name: str
    key: int
    mutate: Mutator
    handle: ReadHandle | None = None
    outcome: CommitOutcome | None = None


@dataclass(slots=True)
class ScheduleResult:
    """What happened when a schedule ran against a manager."""

    outcomes: dict[str, CommitOutcome] = field(default_factory=dict)
    final_values: dict[int, bytes] = field(default_factory=dict)
    lost_updates: int = 0


def run_schedule(manager, scripts: list[ClientScript],
                 schedule: list[tuple[str, str]]) -> ScheduleResult:
    """Execute an explicit interleaving of client steps.

    ``schedule`` is a list of ``(client_name, step)`` pairs with step in
    ``{"read", "commit"}``.  Lost updates are counted as commits that
    reported APPLIED but whose effect is absent from the final value
    (overwritten by a later commit that had not seen them).
    """
    by_name = {script.name: script for script in scripts}
    applied_values: dict[str, bytes] = {}
    for name, step in schedule:
        script = by_name[name]
        if step == "read":
            script.handle = manager.read(script.key)
        elif step == "commit":
            if script.handle is None:
                raise ValueError(f"client {name} commits before reading")
            new_value = script.mutate(script.handle.value)
            script.outcome = manager.commit(script.handle, new_value)
            if script.outcome is CommitOutcome.APPLIED:
                applied_values[name] = new_value
        else:
            raise ValueError(f"unknown schedule step {step!r}")
    result = ScheduleResult()
    keys = {script.key for script in scripts}
    for key in keys:
        result.final_values[key] = manager.value(key)
    for script in scripts:
        if script.outcome is not None:
            result.outcomes[script.name] = script.outcome
    # An applied commit is lost if the final value of its key is not the
    # value it wrote and no later applied commit *read* that value.
    for name, written in applied_values.items():
        key = by_name[name].key
        if result.final_values[key] != written and not _was_seen(
            written, name, by_name, applied_values
        ):
            result.lost_updates += 1
    return result


def _was_seen(written: bytes, writer: str, by_name: dict[str, ClientScript],
              applied_values: dict[str, bytes]) -> bool:
    """Did any other applied commit read the value ``writer`` wrote?"""
    for name, script in by_name.items():
        if name == writer or name not in applied_values:
            continue
        if script.handle is not None and script.handle.value == written:
            return True
    return False


def lost_update_race(manager, key: int = 1,
                     initial: bytes = b"balance=100") -> ScheduleResult:
    """The canonical two-client race: read A, read B, commit A, commit B."""
    manager.insert(key, initial)
    scripts = [
        ClientScript("A", key, lambda value: value + b"+A"),
        ClientScript("B", key, lambda value: value + b"+B"),
    ]
    schedule = [("A", "read"), ("B", "read"), ("A", "commit"), ("B", "commit")]
    return run_schedule(manager, scripts, schedule)
