"""Record-update concurrency: the Section 2.2 scheme and its baselines.

The full client/server update protocol (pseudo-update filtering, blind
updates, IAM-corrected addressing) lives in :mod:`repro.sdds`; this
package isolates the *concurrency-control* core so schedules can be
driven deterministically:

* :class:`SignatureManager` -- the paper's lock-free optimistic scheme.
* :class:`TrustworthyManager` -- apply-unconditionally (loses updates).
* :class:`TimestampManager` -- version numbers (correct, pays storage).
* :mod:`interleave` -- adversarial schedule harness.
"""

from .protocol import (
    CommitOutcome,
    ReadHandle,
    SignatureManager,
    TimestampManager,
    TrustworthyManager,
)
from .interleave import ClientScript, ScheduleResult, lost_update_race, run_schedule
from .readset import ReadSetTransaction, TransactionAborted, TransactionOutcome

__all__ = [
    "CommitOutcome",
    "ReadHandle",
    "SignatureManager",
    "TimestampManager",
    "TrustworthyManager",
    "ClientScript",
    "ScheduleResult",
    "run_schedule",
    "lost_update_race",
    "ReadSetTransaction",
    "TransactionOutcome",
    "TransactionAborted",
]
