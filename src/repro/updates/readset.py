"""Two-step transactions: read-set validation by signatures (Section 1).

"If transactions follow the two-step model, we can prevent dirty reads
by calculating the signatures of the read set between reading and just
before committing the writes."

:class:`ReadSetTransaction` implements exactly that optimistic
discipline over any record store exposing ``value(key)``:

1. *read phase* -- the transaction reads records and remembers only
   their 4-byte signatures (not the values -- zero per-record metadata
   on the server, tiny footprint on the client);
2. *validate-and-write phase* -- just before committing its writes, the
   transaction recomputes the read-set signatures; any mismatch proves
   a concurrent update touched the read set and the transaction aborts
   instead of committing results derived from stale (dirty) reads.
"""

from __future__ import annotations

from enum import Enum

from ..errors import ReproError
from ..sig.scheme import AlgebraicSignatureScheme
from ..sig.signature import Signature


class TransactionOutcome(Enum):
    """Result of attempting to commit a two-step transaction."""

    COMMITTED = "committed"
    ABORTED = "aborted"    #: read-set validation failed


class TransactionAborted(ReproError):
    """Raised by :meth:`ReadSetTransaction.commit` on validation failure."""


class ReadSetTransaction:
    """An optimistic read-validate-write transaction over a record store.

    The store must expose ``value(key) -> bytes`` for reads and a
    ``write(key, value)`` for the commit phase (the
    :class:`repro.updates.protocol.SignatureManager` store shape, or any
    dict-like adapter).
    """

    def __init__(self, scheme: AlgebraicSignatureScheme, store):
        self.scheme = scheme
        self.store = store
        self._read_signatures: dict[int, Signature] = {}
        self._writes: dict[int, bytes] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Read phase
    # ------------------------------------------------------------------

    def read(self, key: int) -> bytes:
        """Read a record, remembering its signature for validation.

        Repeated reads of the same key keep the *first* signature: if
        the record changes between two reads of the same transaction,
        validation must fail (that is precisely a dirty-read pattern).
        """
        self._check_open()
        value = self.store.value(key)
        if key not in self._read_signatures:
            self._read_signatures[key] = self.scheme.sign(value, strict=False)
        return value

    def write(self, key: int, value: bytes) -> None:
        """Buffer a write; nothing reaches the store until commit."""
        self._check_open()
        self._writes[key] = bytes(value)

    # ------------------------------------------------------------------
    # Validation + commit
    # ------------------------------------------------------------------

    def validate(self) -> bool:
        """Recompute the read-set signatures; True iff all unchanged."""
        for key, signature in self._read_signatures.items():
            current = self.scheme.sign(self.store.value(key), strict=False)
            if current != signature:
                return False
        return True

    def commit(self) -> TransactionOutcome:
        """Validate the read set, then apply the buffered writes.

        Returns COMMITTED, or ABORTED (leaving the store untouched) when
        an intervening update invalidated any read.
        """
        self._check_open()
        self._finished = True
        if not self.validate():
            return TransactionOutcome.ABORTED
        for key, value in self._writes.items():
            self._store_write(key, value)
        return TransactionOutcome.COMMITTED

    def abort(self) -> None:
        """Drop the transaction without touching the store."""
        self._finished = True

    @property
    def read_set_bytes(self) -> int:
        """Client memory held for validation: 4 B per record read."""
        return len(self._read_signatures) * self.scheme.scheme_id.signature_bytes

    def _store_write(self, key: int, value: bytes) -> None:
        if hasattr(self.store, "write"):
            self.store.write(key, value)
        elif hasattr(self.store, "insert"):
            self.store.insert(key, value)  # SignatureManager-style upsert
        else:
            raise ReproError("store exposes neither write() nor insert()")

    def _check_open(self) -> None:
        if self._finished:
            raise ReproError("transaction already committed or aborted")
