"""Collision experiments: empirical checks of Propositions 1, 2 and 4.

Measuring a 2^-32 collision rate head-on is hopeless, so -- as the
repository supports every GF(2^f) down to f = 2 -- the E8 experiments
run in *small* fields where the predicted rates (2^-nf) are observable
in a few hundred thousand trials, and verify the certainty claims
exhaustively where feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product

import numpy as np

from ..errors import ReproError
from ..sig.scheme import AlgebraicSignatureScheme


@dataclass(frozen=True, slots=True)
class CollisionReport:
    """Outcome of a collision experiment."""

    trials: int
    collisions: int
    predicted_rate: float

    @property
    def observed_rate(self) -> float:
        """Fraction of trials that collided."""
        return self.collisions / self.trials if self.trials else 0.0


def prop1_exhaustive(scheme: AlgebraicSignatureScheme, page_symbols: int) -> CollisionReport:
    """Exhaustively verify certain detection of <= n symbol changes.

    For every position subset of size <= n and every non-zero delta
    combination, the changed page must sign differently.  Only feasible
    in small fields; the count of checked alterations is returned as
    ``trials`` and ``collisions`` must come back 0.
    """
    field = scheme.field
    if field.size ** min(scheme.n, 3) > 1 << 22:
        raise ReproError("field too large for exhaustive Proposition 1 check")
    if page_symbols > scheme.max_page_symbols:
        raise ReproError("page exceeds the certainty bound")
    rng = np.random.default_rng(12345)
    page = rng.integers(0, field.size, page_symbols).astype(np.int64)
    base_sig = scheme.sign(page)
    trials = 0
    collisions = 0
    non_zero = range(1, field.size)
    for change_size in range(1, scheme.n + 1):
        for positions in combinations(range(page_symbols), change_size):
            for deltas in product(non_zero, repeat=change_size):
                altered = page.copy()
                for position, delta in zip(positions, deltas):
                    altered[position] ^= delta
                trials += 1
                if scheme.sign(altered) == base_sig:
                    collisions += 1
    return CollisionReport(trials, collisions, predicted_rate=0.0)


def prop1_sampled(scheme: AlgebraicSignatureScheme, page_symbols: int,
                  trials: int, seed: int = 0) -> CollisionReport:
    """Randomized Proposition 1 check for larger fields.

    Random pages, random <= n-symbol changes: zero collisions expected,
    with certainty, every time.
    """
    field = scheme.field
    rng = np.random.default_rng(seed)
    collisions = 0
    for _trial in range(trials):
        page = rng.integers(0, field.size, page_symbols).astype(np.int64)
        base_sig = scheme.sign(page)
        change_size = int(rng.integers(1, scheme.n + 1))
        positions = rng.choice(page_symbols, size=change_size, replace=False)
        altered = page.copy()
        for position in positions:
            altered[position] ^= int(rng.integers(1, field.size))
        if scheme.sign(altered) == base_sig:
            collisions += 1
    return CollisionReport(trials, collisions, predicted_rate=0.0)


def prop2_random_pairs(scheme: AlgebraicSignatureScheme, page_symbols: int,
                       trials: int, seed: int = 0) -> CollisionReport:
    """Collision rate of two random distinct pages: predicted 2^-nf.

    Vectorized: draws all trial pages at once and compares component
    signatures; distinct-page pairs whose signatures coincide count as
    collisions.
    """
    field = scheme.field
    rng = np.random.default_rng(seed)
    predicted = 2.0 ** (-scheme.n * field.f)
    collisions = 0
    effective = 0
    for _trial in range(trials):
        first = rng.integers(0, field.size, page_symbols).astype(np.int64)
        second = rng.integers(0, field.size, page_symbols).astype(np.int64)
        if np.array_equal(first, second):
            continue
        effective += 1
        if scheme.sign(first) == scheme.sign(second):
            collisions += 1
    return CollisionReport(effective, collisions, predicted)


def prop4_switches(scheme: AlgebraicSignatureScheme, page_symbols: int,
                   block_symbols: int, trials: int, seed: int = 0) -> CollisionReport:
    """Collision rate of cut-and-paste operations: predicted 2^-nf.

    Random pages; a random block is moved to a random other position
    (skipping no-op moves).  With an all-primitive base (sig', or sig
    with n <= 2) the collision probability is 2^-nf (Proposition 4).
    """
    if block_symbols >= page_symbols:
        raise ReproError("block must be shorter than the page")
    field = scheme.field
    rng = np.random.default_rng(seed)
    predicted = 2.0 ** (-scheme.n * field.f)
    collisions = 0
    effective = 0
    for _trial in range(trials):
        page = rng.integers(0, field.size, page_symbols).astype(np.int64)
        source = int(rng.integers(0, page_symbols - block_symbols + 1))
        block = page[source:source + block_symbols]
        rest = np.concatenate([page[:source], page[source + block_symbols:]])
        destination = int(rng.integers(0, rest.size + 1))
        switched = np.concatenate([rest[:destination], block, rest[destination:]])
        if np.array_equal(switched, page):
            continue
        effective += 1
        if scheme.sign(switched) == scheme.sign(page):
            collisions += 1
    return CollisionReport(effective, collisions, predicted)


def prop4_adversarial_switches(scheme: AlgebraicSignatureScheme,
                               page_symbols: int, block_symbols: int,
                               move_distance: int, trials: int,
                               seed: int = 0) -> CollisionReport:
    """Cut-and-paste with a *fixed* block length and forward move distance.

    This is the experiment behind the paper's preference for sig' when
    n > 2: the switch changes the signature by terms proportional to
    ``(1 + alpha_i^{s-r})`` and ``(1 + alpha_i^t)`` (Proposition 4's
    proof).  If some base coordinate ``alpha_i`` is *not* primitive and
    both the move distance ``s - r`` and the block length ``t`` are
    multiples of ``ord(alpha_i)``, component ``i`` is blind to the
    switch and the collision probability degrades from 2^-nf to
    2^-(n-1)f.  With an all-primitive base (sig') no distance below
    2^f - 1 can do this.

    The predicted rate reported is the *degraded* bound when the
    scheme's base contains a coordinate whose order divides both
    parameters, else 2^-nf.
    """
    field = scheme.field
    if block_symbols + move_distance > page_symbols:
        raise ReproError("block plus move distance must fit in the page")
    blind = sum(
        1 for beta in scheme.base.betas
        if move_distance % field.element_order(beta) == 0
        and block_symbols % field.element_order(beta) == 0
    )
    predicted = 2.0 ** (-(scheme.n - blind) * field.f)
    rng = np.random.default_rng(seed)
    collisions = 0
    effective = 0
    for _trial in range(trials):
        page = rng.integers(0, field.size, page_symbols).astype(np.int64)
        source = int(rng.integers(
            0, page_symbols - block_symbols - move_distance + 1
        ))
        destination = source + move_distance
        block = page[source:source + block_symbols]
        rest = np.concatenate([page[:source], page[source + block_symbols:]])
        switched = np.concatenate(
            [rest[:destination], block, rest[destination:]]
        )
        if np.array_equal(switched, page):
            continue
        effective += 1
        if scheme.sign(switched) == scheme.sign(page):
            collisions += 1
    return CollisionReport(effective, collisions, predicted)


def sha1_small_change_detection(trials: int, page_bytes: int, seed: int = 0) -> CollisionReport:
    """Control: SHA-1 also detects small changes -- but only probabilistically.

    The paper notes cryptographic hashes "do not guarantee a change in
    signature for very small changes"; empirically collisions are
    unobservably rare for both, so this experiment documents that the
    *guarantee* (not the observed rate) is what separates the schemes.
    """
    from ..baselines.sha1 import sha1

    rng = np.random.default_rng(seed)
    collisions = 0
    for _trial in range(trials):
        page = bytearray(rng.integers(0, 256, page_bytes, dtype=np.uint8).tobytes())
        digest = sha1(bytes(page))
        position = int(rng.integers(0, page_bytes))
        page[position] ^= int(rng.integers(1, 256))
        if sha1(bytes(page)) == digest:
            collisions += 1
    return CollisionReport(trials, collisions, predicted_rate=2.0 ** -160)
