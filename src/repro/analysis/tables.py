"""Plain-text result tables for the benchmark harness.

Every E* benchmark prints the rows/series the paper reports through
these helpers, so EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned fixed-width table."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str | None = None) -> None:
    """Print an aligned table (bench harness entry point)."""
    print()
    print(format_table(headers, rows, title=title))


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio for speedup columns."""
    return numerator / denominator if denominator else float("inf")
