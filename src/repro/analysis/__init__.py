"""Experiment analysis: collision measurements (Propositions 1/2/4),
the Section 5.2 scheme recommender, and report tables."""

from .collisions import (
    CollisionReport,
    prop1_exhaustive,
    prop1_sampled,
    prop2_random_pairs,
    prop4_adversarial_switches,
    prop4_switches,
    sha1_small_change_detection,
)
from .design import (
    SchemeRecommendation,
    expected_collision_interval_seconds,
    expected_collision_interval_years,
    recommend_scheme,
)
from .tables import format_table, print_table, ratio

__all__ = [
    "CollisionReport",
    "prop1_exhaustive",
    "prop1_sampled",
    "prop2_random_pairs",
    "prop4_switches",
    "prop4_adversarial_switches",
    "sha1_small_change_detection",
    "SchemeRecommendation",
    "recommend_scheme",
    "expected_collision_interval_seconds",
    "expected_collision_interval_years",
    "format_table",
    "print_table",
    "ratio",
]
