"""Scheme-design helpers: pick (f, n, page size) from requirements.

Section 5.2 walks through the paper's own configuration reasoning:
bytes force f in {8, 16}; the page must respect the l < 2^f - 1 bound;
the collision probability is 2^-nf; 4 bytes of signature made a 2^-32
risk ("a collision every 135 years at one backup a second") acceptable.
These helpers make that reasoning callable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..sig.scheme import AlgebraicSignatureScheme, make_scheme

#: Seconds per (Julian) year, for expectation arithmetic.
SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True, slots=True)
class SchemeRecommendation:
    """A concrete configuration satisfying the stated requirements."""

    f: int
    n: int
    page_bytes: int
    signature_bytes: int
    collision_probability: float
    guaranteed_change_symbols: int

    def build(self) -> AlgebraicSignatureScheme:
        """Instantiate the recommended scheme."""
        return make_scheme(f=self.f, n=self.n)


def recommend_scheme(page_bytes: int,
                     max_collision_probability: float = 2.0 ** -32,
                     min_guaranteed_symbols: int = 2) -> SchemeRecommendation:
    """Choose the smallest adequate (f, n) for byte data.

    Follows the paper's constraints in order: symbols must be bytes or
    double-bytes (cache-resident tables), the page must fit the
    Proposition-1 bound ``l <= 2^f - 2`` symbols, ``n`` must give both
    the certainty width and the collision budget ``2^-nf``.
    """
    if page_bytes <= 0:
        raise ReproError("page size must be positive")
    if not 0.0 < max_collision_probability < 1.0:
        raise ReproError("collision budget must be in (0, 1)")
    if min_guaranteed_symbols < 1:
        raise ReproError("need a guarantee width of at least one symbol")
    for f in (8, 16):
        symbol_bytes = f // 8
        symbols = (page_bytes + symbol_bytes - 1) // symbol_bytes
        if symbols > (1 << f) - 2:
            continue  # page too long for this field's certainty bound
        n = max(min_guaranteed_symbols, 1)
        while 2.0 ** (-n * f) > max_collision_probability:
            n += 1
        if n >= (1 << f) - 1:
            continue
        return SchemeRecommendation(
            f=f,
            n=n,
            page_bytes=page_bytes,
            signature_bytes=n * symbol_bytes,
            collision_probability=2.0 ** (-n * f),
            guaranteed_change_symbols=n,
        )
    raise ReproError(
        f"no byte-symbol field covers {page_bytes}-byte pages; "
        "slice the data into smaller pages (SignatureMap)"
    )


def expected_collision_interval_seconds(scheme: AlgebraicSignatureScheme,
                                        comparisons_per_second: float) -> float:
    """Expected seconds until the first collision at a comparison rate.

    The paper's deployment arithmetic: 2^-32 per comparison at one
    backup per second gives one expected collision in about 135 years.
    """
    if comparisons_per_second <= 0:
        raise ReproError("comparison rate must be positive")
    probability = 2.0 ** (-scheme.n * scheme.field.f)
    return 1.0 / (probability * comparisons_per_second)


def expected_collision_interval_years(scheme: AlgebraicSignatureScheme,
                                      comparisons_per_second: float) -> float:
    """:func:`expected_collision_interval_seconds` in years."""
    return expected_collision_interval_seconds(
        scheme, comparisons_per_second
    ) / SECONDS_PER_YEAR
