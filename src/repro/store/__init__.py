"""Durable signature-sealed storage plane (PR 5).

An append-only segmented log of signature-sealed frames, a
:class:`PageStore` materializing page-addressed volumes from it, sealed
warm-state checkpoints, and certified crash recovery: scan, verify
every seal (Proposition 1), truncate the torn tail, fold only the
post-checkpoint delta (Proposition 3), and localize mid-prefix damage
to condemned pages via the persisted signature tree (Proposition 5).
"""

from .checkpoint import Checkpoint, VolumeCheckpoint
from .checkpoint import load as load_checkpoint
from .checkpoint import save as save_checkpoint
from .disk import DurableDisk
from .frames import (
    KIND_DELTA,
    KIND_PAGE,
    KIND_TRUNCATE,
    Frame,
    FrameError,
)
from .log import (
    SEGMENT_BYTES,
    CorruptRegion,
    ScannedFrame,
    ScanResult,
    SegmentedLog,
)
from .pagestore import (
    DEFAULT_PAGE_BYTES,
    PageStore,
    RecoveryReport,
    ScrubReport,
)

__all__ = [
    "Checkpoint",
    "CorruptRegion",
    "DEFAULT_PAGE_BYTES",
    "DurableDisk",
    "Frame",
    "FrameError",
    "KIND_DELTA",
    "KIND_PAGE",
    "KIND_TRUNCATE",
    "PageStore",
    "RecoveryReport",
    "ScannedFrame",
    "ScanResult",
    "ScrubReport",
    "SEGMENT_BYTES",
    "SegmentedLog",
    "VolumeCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
]
