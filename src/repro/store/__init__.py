"""Durable signature-sealed storage plane (PR 5, parallelized PR 9).

An append-only segmented log of signature-sealed frames, a
:class:`PageStore` materializing page-addressed volumes from it, sealed
warm-state checkpoints, and certified crash recovery: scan, verify
every seal (Proposition 1), truncate the torn tail, fold only the
post-checkpoint delta (Proposition 3), and localize mid-prefix damage
to condemned pages via the persisted signature tree (Proposition 5).

The recovery pipeline (:mod:`repro.store.recovery`) shards the
certification scan by segment across the process signing backend and
streams certified frames into replay while later segments are still
being verified; the log's group-commit write path
(``flush="group"``) coalesces bursts of frames into one OS write +
one flush.
"""

from .checkpoint import Checkpoint, VolumeCheckpoint
from .checkpoint import load as load_checkpoint
from .checkpoint import save as save_checkpoint
from .disk import DurableDisk
from .frames import (
    KIND_DELTA,
    KIND_PAGE,
    KIND_TRUNCATE,
    Frame,
    FrameError,
)
from .log import (
    GROUP_BYTES,
    GROUP_LATENCY_S,
    SEGMENT_BYTES,
    CorruptRegion,
    ScannedFrame,
    ScanResult,
    SegmentedLog,
)
from .pagestore import (
    DEFAULT_PAGE_BYTES,
    PageStore,
    RecoveryReport,
    ScrubReport,
)
from .recovery import (
    MIN_PARALLEL_BYTES,
    RECOVERY_WORKERS_ENV,
    FrameVerdict,
    SegmentVerdict,
    effective_workers,
    resolve_recovery_workers,
    scan_segment,
)

__all__ = [
    "Checkpoint",
    "CorruptRegion",
    "DEFAULT_PAGE_BYTES",
    "DurableDisk",
    "Frame",
    "FrameError",
    "FrameVerdict",
    "GROUP_BYTES",
    "GROUP_LATENCY_S",
    "KIND_DELTA",
    "KIND_PAGE",
    "KIND_TRUNCATE",
    "MIN_PARALLEL_BYTES",
    "PageStore",
    "RECOVERY_WORKERS_ENV",
    "RecoveryReport",
    "ScannedFrame",
    "ScanResult",
    "ScrubReport",
    "SEGMENT_BYTES",
    "SegmentVerdict",
    "SegmentedLog",
    "VolumeCheckpoint",
    "effective_workers",
    "load_checkpoint",
    "resolve_recovery_workers",
    "save_checkpoint",
    "scan_segment",
]
