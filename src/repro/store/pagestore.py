"""The durable page store: materialized volumes over the sealed log.

A :class:`PageStore` owns a directory holding a
:class:`~repro.store.log.SegmentedLog` plus an optional sealed
checkpoint, and materializes named *volumes* -- contiguous byte images
sliced into fixed-size pages -- from the frames.  Every mutation is
logged first (full pages as ``PAGE`` frames, PR-4 journal regions as
``DELTA`` frames carrying only ``before XOR after``), then applied to
the in-RAM image, whose warm signature map and tree ride along via the
Proposition-3 incremental plane exactly as a
:class:`~repro.sync.Replica` does -- the store *is* one replica per
volume, with the log as its durable past.

Recovery (:meth:`PageStore.recover`) is the paper's signature calculus
applied to crash consistency:

1. load the sealed checkpoint (if valid) -- the certified warm
   signature map + tree and the log position they describe;
2. scan the log, batch-verifying every frame seal (Proposition 1
   certifies each frame against <= n corrupted symbols); truncate the
   torn tail after the last valid frame -- the durable state is
   exactly the **longest certified prefix**;
3. replay pre-checkpoint frames into the images *without* signature
   work, seed the checkpointed map/tree, and **fold** only the
   post-checkpoint tail through
   :class:`~repro.sig.incremental.IncrementalSignatureMap`
   (Proposition 3) -- never re-signing the world;
4. when any frame was rejected mid-prefix, a **scrub** compares the
   certified tree against a tree re-signed from the materialized bytes
   and localizes the damage to single pages (Proposition 5); those
   pages are *condemned* -- surfaced with their expected (certified)
   signatures so a consumer holding redundancy (a mirror, a parity
   group) can fetch and *verify* replacement content.

After a scrub the warm map is reset to match the materialized bytes,
so ``signature_map()`` always equals ``SignatureMap.compute`` over the
recovered image; the certified expectations for condemned pages live
in the report.  With a linear (plain) scheme the folded expectations
are exact regardless of what the corrupted bytes contained, because a
DELTA region's signature depends only on ``before XOR after``; twisted
schemes get the same detection but best-effort expectations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from ..errors import SignatureError, StoreError
from ..obs import get_registry, span_if_active
from ..sig.compound import SignatureMap
from ..sig.engine import BatchSigner, get_batch_signer
from ..sig.incremental import IncrementalSignatureMap, WriteJournal
from ..sig.locate import LocateDesign, LocatorMap, decode
from ..sig.scheme import AlgebraicSignatureScheme
from ..sig.signature import Signature
from ..sig.tree import SignatureTree
from ..sync.replica import Replica
from . import checkpoint as ckpt
from . import frames as fr
from .log import (GROUP_BYTES, GROUP_LATENCY_S, SEGMENT_BYTES, ScanResult,
                  SegmentedLog)

DEFAULT_PAGE_BYTES = 4096


@dataclass(slots=True)
class _Volume:
    """One materialized volume: its replica and fixed page size."""

    replica: Replica
    page_bytes: int


@dataclass(frozen=True, slots=True)
class ScrubReport:
    """Outcome of one Proposition-5 scrub of a volume."""

    volume: str
    condemned: tuple[int, ...]          #: page indices that failed
    expected: dict[int, Signature]      #: certified signatures for them
    nodes_compared: int                 #: tree/group comparisons spent
    method: str = "tree"                #: "tree", "map" or "locate"
    overflow: bool = False              #: a locate attempt overflowed
    #: Condemned pages with *no* certified expected signature -- the
    #: warm map did not cover them (it described a shorter image than
    #: the materialized bytes, e.g. a checkpoint that predates growth).
    #: They are damaged-or-unknown: a consumer must refetch them from
    #: redundancy rather than verify them against ``expected``.
    uncovered: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """Everything one certified recovery established."""

    seconds: float
    used_checkpoint: bool
    frames_valid: int                   #: certified frames in the log
    frames_folded: int                  #: post-checkpoint frames folded
    bytes_replayed: int                 #: payload bytes applied
    torn_bytes: int                     #: trailing garbage truncated
    corrupt_frames: int                 #: mid-prefix rejected frames
    condemned: dict[str, tuple[int, ...]]
    expected: dict[str, dict[int, Signature]]
    volumes: tuple[str, ...]
    log_bytes: int

    @property
    def clean(self) -> bool:
        """True when nothing was torn, rejected or condemned."""
        return not (self.torn_bytes or self.corrupt_frames
                    or any(self.condemned.values()))


class PageStore:
    """A durable, signature-sealed, page-addressed store.

    Construction creates a *new* store in ``directory`` (which must not
    already contain log segments); an existing store is only ever
    opened through :meth:`recover`, so an open store's in-RAM state is
    by construction the certified replay of its log.
    """

    def __init__(self, scheme: AlgebraicSignatureScheme,
                 directory: str | Path,
                 segment_bytes: int = SEGMENT_BYTES,
                 checkpoint_every: int | None = None,
                 fanout: int = 16,
                 flush: str = "frame",
                 group_bytes: int = GROUP_BYTES,
                 group_latency_s: float = GROUP_LATENCY_S,
                 verify_workers: int | None = None,
                 locate_d: int | None = None,
                 locate_seed: int = 0,
                 _adopt_log: SegmentedLog | None = None):
        self.scheme = scheme
        self.directory = Path(directory)
        self.fanout = fanout
        self.checkpoint_every = checkpoint_every
        self.verify_workers = verify_workers
        #: When set, scrubs condemn through a d-cover-free locator
        #: design (falling back to the tree on overflow) by default.
        self.locate_d = locate_d
        self.locate_seed = locate_seed
        self._worker_signer: BatchSigner | None = None
        self._volumes: dict[str, _Volume] = {}
        self._warm_from_checkpoint: set[str] = set()
        self._next_seq = 0
        self._frames_since_checkpoint = 0
        if _adopt_log is not None:
            self._log = _adopt_log
        else:
            self._log = SegmentedLog(self.directory, scheme, segment_bytes,
                                     flush=flush, group_bytes=group_bytes,
                                     group_latency_s=group_latency_s)
            if self._log.total_bytes:
                raise StoreError(
                    f"{self.directory} already holds a log; open it with "
                    "PageStore.recover() so its state is certified"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def log_bytes(self) -> int:
        """Current absolute log length."""
        return self._log.total_bytes

    def volumes(self) -> list[str]:
        """Sorted names of materialized volumes."""
        return sorted(self._volumes)

    def page_bytes_of(self, volume: str) -> int:
        """The fixed page size of a volume."""
        return self._require(volume).page_bytes

    def image(self, volume: str) -> bytes:
        """The volume's current byte image."""
        return bytes(self._require(volume).replica.data)

    def image_len(self, volume: str) -> int:
        """The volume's current length in bytes."""
        return len(self._require(volume).replica.data)

    def read_page(self, volume: str, index: int) -> bytes:
        """One page's bytes (the final page may be short)."""
        state = self._require(volume)
        if not 0 <= index < state.replica.page_count:
            raise StoreError(
                f"page {index} of volume {volume!r} was never written"
            )
        return state.replica.page(index)

    def has_page(self, volume: str, index: int) -> bool:
        """True when the volume covers page ``index``."""
        state = self._volumes.get(volume)
        return (state is not None and len(state.replica.data) > 0
                and 0 <= index < state.replica.page_count)

    def volume_pages(self, volume: str) -> list[int]:
        """Page indices present for a volume (contiguous from 0)."""
        state = self._volumes.get(volume)
        if state is None or not len(state.replica.data):
            return []
        return list(range(state.replica.page_count))

    def signature_map(self, volume: str) -> SignatureMap:
        """The volume's warm signature map (journal folded on demand)."""
        return self._require(volume).replica.signature_map()

    def signature_tree(self, volume: str,
                       fanout: int | None = None) -> SignatureTree:
        """The volume's warm signature tree."""
        return self._require(volume).replica.signature_tree(
            fanout if fanout is not None else self.fanout
        )

    def _require(self, volume: str) -> _Volume:
        state = self._volumes.get(volume)
        if state is None:
            raise StoreError(f"no volume named {volume!r}")
        return state

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _validated_page_bytes(self, page_bytes: int) -> int:
        symbol_bytes = self.scheme.scheme_id.symbol_bytes
        if page_bytes <= 0 or page_bytes % symbol_bytes:
            raise StoreError(
                f"page size {page_bytes} must be a positive multiple of "
                f"the {symbol_bytes}-byte symbol"
            )
        if page_bytes // symbol_bytes > self.scheme.max_page_symbols:
            raise StoreError(
                f"page size {page_bytes} exceeds the certainty bound of "
                f"GF(2^{self.scheme.field.f})"
            )
        return page_bytes

    def _take_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _append(self, frame_list: list[fr.Frame]) -> list[int]:
        """Log a burst of frames, apply them, maybe checkpoint.

        Single frames and bursts ride the same encode-many seal lane;
        under ``flush="group"`` the whole burst lands as one OS write +
        one flush instead of one pair per frame.
        """
        offsets = self._log.append_many(frame_list)
        for frame in frame_list:
            self._apply(frame)
        self._frames_since_checkpoint += len(frame_list)
        if (self.checkpoint_every is not None
                and self._frames_since_checkpoint >= self.checkpoint_every):
            self.checkpoint()
        return offsets

    def ensure_volume(self, volume: str,
                      page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
        """Declare a volume (logging its page size) if it is new."""
        state = self._volumes.get(volume)
        if state is not None:
            if state.page_bytes != page_bytes:
                raise StoreError(
                    f"volume {volume!r} uses {state.page_bytes}-byte pages, "
                    f"not {page_bytes}"
                )
            return
        self._validated_page_bytes(page_bytes)
        frame = fr.Frame(fr.KIND_TRUNCATE, self._take_seq(), volume,
                         fr.encode_truncate(0, page_bytes))
        self._append([frame])

    def write_page(self, volume: str, index: int, data: bytes,
                   page_size: int | None = None) -> int:
        """Durably write one page; returns the frame's log offset.

        Mirrors the sim disk's semantics: ``data`` may be short only as
        the volume's final page, in which case it sets the volume
        length.
        """
        if index < 0:
            raise StoreError("page index must be non-negative")
        state = self._volumes.get(volume)
        if page_size is None:
            page_size = state.page_bytes if state is not None \
                else DEFAULT_PAGE_BYTES
        if len(data) > page_size:
            raise StoreError(
                f"page data of {len(data)} bytes exceeds page size "
                f"{page_size}"
            )
        self.ensure_volume(volume, page_size)
        frame = fr.Frame(fr.KIND_PAGE, self._take_seq(), volume,
                         fr.encode_page(index, page_size, bytes(data)))
        return self._append([frame])[0]

    def write_image(self, volume: str, data: bytes,
                    page_bytes: int | None = None) -> int:
        """Durably (re)write a whole volume image; returns frames logged.

        All page frames are sealed in one batched signing pass.
        """
        state = self._volumes.get(volume)
        if page_bytes is None:
            page_bytes = state.page_bytes if state is not None \
                else DEFAULT_PAGE_BYTES
        self.ensure_volume(volume, page_bytes)
        frame_list = [
            fr.Frame(fr.KIND_PAGE, self._take_seq(), volume,
                     fr.encode_page(index, page_bytes,
                                    bytes(data[start:start + page_bytes])))
            for index, start in enumerate(range(0, len(data), page_bytes))
        ]
        if len(data) < self.image_len(volume):
            frame_list.append(
                fr.Frame(fr.KIND_TRUNCATE, self._take_seq(), volume,
                         fr.encode_truncate(len(data), page_bytes))
            )
        if frame_list:
            self._append(frame_list)
        return len(frame_list)

    def record_extent(self, volume: str, offset: int, before: bytes,
                      after: bytes, image_len: int) -> int | None:
        """Durably log one journaled write as a ``DELTA`` frame.

        ``before``/``after`` are the region's content around the write
        (as a :class:`~repro.sdds.heap.RecordHeap` capture listener or
        the cluster's extent differ produces); only their XOR travels
        to disk.  ``image_len`` is the volume's length after the write.
        Returns the frame's log offset (``None`` for an empty region).
        """
        width = max(len(before), len(after))
        if width == 0:
            return None
        with span_if_active("store.record_extent", volume=volume):
            self._require(volume)
            delta = (
                int.from_bytes(before, "little")
                ^ int.from_bytes(after, "little")
            ).to_bytes(width, "little")
            frame = fr.Frame(fr.KIND_DELTA, self._take_seq(), volume,
                             fr.encode_delta(image_len, offset, delta))
            return self._append([frame])[0]

    def append_journal(self, volume: str, journal: WriteJournal,
                       image_len: int) -> int:
        """Durably log a whole write journal (one batched sealing pass)."""
        self._require(volume)
        with span_if_active("store.append_journal", volume=volume):
            frame_list = [
                fr.Frame(fr.KIND_DELTA, self._take_seq(), volume,
                         fr.encode_delta(
                             image_len, entry.offset,
                             (int.from_bytes(entry.before, "little")
                              ^ int.from_bytes(entry.after, "little"))
                             .to_bytes(max(len(entry.before),
                                           len(entry.after)),
                                       "little")))
                for entry in journal.entries
                if max(len(entry.before), len(entry.after))
            ]
            if frame_list:
                self._append(frame_list)
            return len(frame_list)

    def truncate(self, volume: str, image_len: int) -> int:
        """Durably set a volume's length; returns the frame's offset."""
        state = self._require(volume)
        frame = fr.Frame(fr.KIND_TRUNCATE, self._take_seq(), volume,
                         fr.encode_truncate(image_len, state.page_bytes))
        return self._append([frame])[0]

    def commit(self) -> int:
        """Force any group-coalesced frames to disk; returns bytes landed."""
        return self._log.commit()

    def close(self) -> None:
        """Commit pending frames, flush and release the log's handle."""
        self._log.close()

    # ------------------------------------------------------------------
    # Frame application (single source of truth for replay semantics)
    # ------------------------------------------------------------------

    def _materialize(self, volume: str, page_bytes: int) -> _Volume:
        """Get-or-create a volume's in-RAM state (no logging)."""
        state = self._volumes.get(volume)
        if state is None:
            state = _Volume(
                Replica(f"store:{volume}", self.scheme, b"",
                        self._validated_page_bytes(page_bytes)),
                page_bytes,
            )
            self._volumes[volume] = state
        return state

    @staticmethod
    def _set_length(replica: Replica, image_len: int) -> None:
        if image_len < len(replica.data):
            replica.truncate(image_len)
        elif image_len > len(replica.data):
            # Pure zero growth: extended space is accounted
            # algebraically by the next fold, no journaling needed.
            replica.data.extend(bytes(image_len - len(replica.data)))

    def _apply(self, frame: fr.Frame) -> None:
        """Apply one (already logged / certified) frame to RAM state."""
        if frame.kind == fr.KIND_PAGE:
            index, page_size, data = fr.decode_page(frame.payload)
            state = self._materialize(frame.volume, page_size)
            offset = index * state.page_bytes
            replica = state.replica
            replica.write_at(offset, data)
            end = offset + len(data)
            if (offset + state.page_bytes >= len(replica.data)
                    and len(replica.data) > end):
                # A short write to the final page sets the length
                # (sim-disk semantics).
                replica.truncate(end)
        elif frame.kind == fr.KIND_DELTA:
            image_len, offset, delta = fr.decode_delta(frame.payload)
            state = self._materialize(frame.volume, DEFAULT_PAGE_BYTES)
            state.replica.apply_xor(offset, delta)
            self._set_length(state.replica, image_len)
        elif frame.kind == fr.KIND_TRUNCATE:
            image_len, page_size = fr.decode_truncate(frame.payload)
            state = self._materialize(frame.volume, page_size)
            self._set_length(state.replica, image_len)
        else:
            raise fr.FrameError(f"unknown frame kind {frame.kind}")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> Path:
        """Persist every volume's warm map + tree; returns the path."""
        with span_if_active("store.checkpoint",
                            volumes=str(len(self._volumes))):
            volumes = {}
            for name, state in self._volumes.items():
                volumes[name] = ckpt.VolumeCheckpoint(
                    state.page_bytes, len(state.replica.data),
                    state.replica.signature_map(),
                    state.replica.signature_tree(self.fanout),
                )
                self._warm_from_checkpoint.add(name)
            snapshot = ckpt.Checkpoint(self._log.total_bytes, self._next_seq,
                                       volumes)
            self._frames_since_checkpoint = 0
            return ckpt.save(self.directory, self.scheme, snapshot)

    # ------------------------------------------------------------------
    # Scrub (Proposition 5 localization)
    # ------------------------------------------------------------------

    def _scrub_signer(self) -> BatchSigner:
        """The signer scrub re-renders pages through.

        With ``verify_workers > 1`` pages are re-signed across the
        process backend (the shared-arena lane); otherwise the shared
        in-process signer is used.  The worker signer is built lazily
        and cached -- scrubs during one recovery share a pool.
        """
        workers = self.verify_workers
        if workers is not None and workers > 1:
            if self._worker_signer is None:
                self._worker_signer = BatchSigner(
                    self.scheme, workers=workers, backend="process")
            return self._worker_signer
        return get_batch_signer(self.scheme)

    def _default_design(self, page_count: int) -> LocateDesign | None:
        """The store's implied locate design, if ``locate_d`` is set."""
        if self.locate_d is None:
            return None
        capacity = 1 << max(0, (page_count - 1).bit_length()) \
            if page_count else 1
        return LocateDesign.build(capacity, self.locate_d, self.locate_seed)

    def scrub(self, volume: str,
              design: LocateDesign | None = None) -> ScrubReport:
        """Compare certified signature state against materialized bytes.

        Re-signs the volume through the batch engine (across worker
        processes when the store was opened with ``verify_workers``),
        condemns the differing pages, and resets the warm map/tree to
        the materialized content afterwards -- the certified *expected*
        signatures of condemned pages survive only in the returned
        report.

        With a ``design`` (or a store-level ``locate_d``), condemnation
        goes through the group-testing locator first: the certified
        side is summarized into ``design.group_count`` aggregate
        signatures and :func:`~repro.sig.locate.decode` certifies the
        <= d damaged pages from the failing groups alone.  An
        ``OVERFLOW`` decode (damage beyond the budget, or a warm map
        whose length drifted from the image) falls back to the
        tree/map comparison and is flagged on the report -- never a
        silently wrong page set.
        """
        with span_if_active("store.scrub", volume=volume) as span:
            state = self._require(volume)
            replica = state.replica
            expected_map = replica.signature_map()
            fanout = replica._tree.fanout if replica._tree is not None \
                else self.fanout
            expected_tree = replica.signature_tree(fanout)
            actual_map = self._scrub_signer().sign_map(
                bytes(replica.data), replica.page_symbols
            )
            actual_tree = SignatureTree.from_map(actual_map, fanout)
            registry = get_registry()
            if design is None:
                design = self._default_design(
                    max(len(expected_map.signatures),
                        len(actual_map.signatures))
                )
            condemned: tuple[int, ...] | None = None
            compared = 0
            method = "tree"
            overflow = False
            if design is not None:
                registry.counter("store.locate.scrubs",
                                 volume=volume).inc()
                try:
                    verdict = decode(LocatorMap.from_map(design, expected_map),
                                     LocatorMap.from_map(design, actual_map))
                except SignatureError:
                    verdict = None   # the volume outgrew the design
                if verdict is not None and not verdict.overflowed:
                    condemned = verdict.pages
                    compared = verdict.groups_compared
                    method = "locate"
                    registry.counter("store.locate.located").inc(
                        len(condemned)
                    )
                else:
                    overflow = True
                    registry.counter("store.locate.overflows").inc()
            if condemned is None:
                if expected_tree.leaf_count == actual_tree.leaf_count:
                    diff = expected_tree.diff(actual_tree)
                    condemned = tuple(diff.changed_leaves)
                    compared = diff.nodes_compared
                    method = "tree"
                else:  # length drifted: fall back to the flat map comparison
                    condemned = tuple(expected_map.changed_pages(actual_map))
                    compared = max(len(expected_map), len(actual_map))
                    method = "map"
            expected = {
                index: expected_map.signatures[index]
                for index in condemned if index < len(expected_map.signatures)
            }
            uncovered = tuple(
                index for index in condemned
                if index >= len(expected_map.signatures)
            )
            if uncovered:
                registry.counter("store.pages_uncovered").inc(len(uncovered))
            if condemned:
                # Reset warm state to the materialized bytes: from here on
                # folds track what *is*, the report records what *should be*.
                replica._incremental = IncrementalSignatureMap(actual_map)
                replica._tree = actual_tree
                replica._tree_fanout = fanout
                replica._locator = None
            if span is not None:
                span.event("condemned", pages=len(condemned))
            registry.counter("store.scrubs", volume=volume).inc()
            registry.counter("store.pages_condemned").inc(len(condemned))
            return ScrubReport(volume, condemned, expected, compared,
                               method=method, overflow=overflow,
                               uncovered=uncovered)

    # ------------------------------------------------------------------
    # Fault injection (tests, demos)
    # ------------------------------------------------------------------

    def crash_cut(self, offset: int) -> int:
        """Cut the log at byte ``offset`` (simulated torn write)."""
        return self._log.crash_cut(offset)

    def corrupt_log(self, offset: int, xor: bytes) -> None:
        """XOR bytes into the log (simulated bit rot)."""
        self._log.corrupt_bytes(offset, xor)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, scheme: AlgebraicSignatureScheme,
                directory: str | Path,
                segment_bytes: int = SEGMENT_BYTES,
                checkpoint_every: int | None = None,
                fanout: int = 16,
                use_checkpoint: bool = True,
                verify: str = "full",
                verify_workers: int | None = None,
                flush: str = "frame",
                group_bytes: int = GROUP_BYTES,
                group_latency_s: float = GROUP_LATENCY_S,
                locate_d: int | None = None,
                locate_seed: int = 0
                ) -> tuple["PageStore", RecoveryReport]:
        """Open an existing store by certified recovery.

        ``verify="full"`` checks every frame seal; ``verify="tail"``
        trusts the sealed checkpoint for the prefix it covers and
        verifies only the tail's seals -- the fast production path,
        with :meth:`scrub` available for deep audits.

        ``locate_d`` turns on group-testing condemnation: the scrubs
        recovery runs to certify condemned pages (and any later
        :meth:`scrub`) localize damage through a d-cover-free locator
        design instead of a full tree diff, falling back on overflow.

        ``verify_workers`` shards seal verification by segment across
        worker processes and is remembered on the opened store (scrub
        re-renders pages through the same fleet); the default resolves
        ``REPRO_RECOVERY_WORKERS`` / ``REPRO_SIGN_WORKERS`` and stays
        in-process for small logs.  Replay is *pipelined* either way:
        certified frames apply as each segment's verdict lands, while
        later segments are still being read and verified.
        """
        if verify not in ("full", "tail"):
            raise StoreError(f"unknown verify mode {verify!r}")
        started = time.perf_counter()
        registry = get_registry()
        directory = Path(directory)
        with span_if_active("store.recover", verify=verify):
            snapshot = ckpt.load(directory, scheme) if use_checkpoint \
                else None
            log = SegmentedLog(directory, scheme, segment_bytes,
                               flush=flush, group_bytes=group_bytes,
                               group_latency_s=group_latency_s)
            trusted = snapshot.position if (snapshot is not None
                                            and verify == "tail") else 0
            store, scan, replay = cls._certified_replay(
                scheme, directory, fanout, log, snapshot, trusted,
                verify_workers)
            if (snapshot is not None
                    and snapshot.position > scan.certified_end):
                # The checkpoint describes state the torn tail took with
                # it: restart cold on a fresh store (the streamed replay
                # above ran under assumptions the snapshot no longer
                # justifies).
                snapshot = None
                store, scan, replay = cls._certified_replay(
                    scheme, directory, fanout, log, None, 0,
                    verify_workers)
            store.locate_d = locate_d
            store.locate_seed = locate_seed
            report = store._finish_recovery(scan, snapshot, replay,
                                            registry)
            store.checkpoint_every = checkpoint_every
        seconds = time.perf_counter() - started
        registry.counter("store.recoveries").inc()
        registry.histogram("store.recovery_seconds").observe(seconds)
        report = RecoveryReport(
            seconds=seconds, used_checkpoint=report.used_checkpoint,
            frames_valid=report.frames_valid,
            frames_folded=report.frames_folded,
            bytes_replayed=report.bytes_replayed,
            torn_bytes=report.torn_bytes,
            corrupt_frames=report.corrupt_frames,
            condemned=report.condemned, expected=report.expected,
            volumes=report.volumes, log_bytes=log.total_bytes,
        )
        return store, report

    @classmethod
    def _certified_replay(cls, scheme, directory, fanout, log, snapshot,
                          trusted, verify_workers):
        """One scan-and-replay pass: certify + apply, overlapped."""
        store = cls(scheme, directory, checkpoint_every=None,
                    fanout=fanout, verify_workers=verify_workers,
                    _adopt_log=log)
        replay = _StreamingReplay(store, snapshot)
        scan = log.scan(trusted_bytes=trusted,
                        verify_workers=verify_workers,
                        on_frames=replay.feed)
        return store, scan, replay

    def _finish_recovery(self, scan: ScanResult,
                         snapshot: ckpt.Checkpoint | None,
                         replay: "_StreamingReplay",
                         registry) -> RecoveryReport:
        """Seal a streamed replay: truncate, warm, renumber, condemn."""
        replay.finish()
        if scan.torn_bytes:
            registry.counter("store.torn_writes_detected").inc()
            registry.counter("store.torn_bytes").inc(scan.torn_bytes)
            self._log.truncate_to(scan.torn_start)
        registry.counter("store.corrupt_frames_detected").inc(
            len(scan.corrupt)
        )
        registry.counter("store.frames_replayed").inc(len(scan.frames))
        for name in self._volumes:
            self.signature_map(name)
        self._next_seq = max(
            [snapshot.next_seq if snapshot is not None else 0]
            + [sf.frame.seq + 1 for sf in scan.frames]
        )
        # Condemnation: headers of rejected frames point at pages
        # (best effort), the Proposition-5 scrub certifies pre-tail
        # damage, later full-page writes exonerate.
        condemned, expected = self._condemn(scan)
        return RecoveryReport(
            seconds=0.0, used_checkpoint=snapshot is not None,
            frames_valid=len(scan.frames),
            frames_folded=replay.frames_folded,
            bytes_replayed=replay.bytes_replayed,
            torn_bytes=scan.torn_bytes,
            corrupt_frames=len(scan.corrupt),
            condemned=condemned, expected=expected,
            volumes=tuple(self.volumes()), log_bytes=self._log.total_bytes,
        )


    def _condemn(self, scan: ScanResult) -> tuple[
            dict[str, tuple[int, ...]], dict[str, dict[int, Signature]]]:
        if not scan.corrupt:
            return {}, {}
        registry = get_registry()
        # Last certified full-page write per (volume, page): a corrupt
        # frame's damage to a page is superseded by a later PAGE frame.
        last_page_write: dict[tuple[str, int], int] = {}
        for scanned in scan.frames:
            if scanned.frame.kind == fr.KIND_PAGE:
                try:
                    index, _size, _data = fr.decode_page(
                        scanned.frame.payload
                    )
                except fr.FrameError:
                    continue
                last_page_write[(scanned.frame.volume, index)] = scanned.start
        targeted: dict[str, set[int]] = {}
        blind = False   # a region without a parseable header
        for region in scan.corrupt:
            frame = region.frame
            if frame is None or frame.volume not in self._volumes:
                blind = True
                continue
            page_bytes = self._volumes[frame.volume].page_bytes
            pages: set[int] = set()
            try:
                if frame.kind == fr.KIND_PAGE:
                    index, _size, _data = fr.decode_page(frame.payload)
                    pages = {index}
                elif frame.kind == fr.KIND_DELTA:
                    _image_len, offset, delta = fr.decode_delta(frame.payload)
                    if delta:
                        pages = set(range(offset // page_bytes,
                                          (offset + len(delta) - 1)
                                          // page_bytes + 1))
                else:
                    blind = True   # a lost TRUNCATE: length uncertain
            except fr.FrameError:
                blind = True
            survivors = {
                page for page in pages
                if last_page_write.get((frame.volume, page), -1) < region.start
            }
            if survivors:
                targeted.setdefault(frame.volume, set()).update(survivors)
        # Scrub certifies the checkpoint-backed volumes the damage may
        # have touched (all of them when a region was unreadable).
        scrub_volumes = set(self._warm_from_checkpoint) if blind else {
            volume for volume in targeted if volume in
            self._warm_from_checkpoint
        }
        condemned: dict[str, set[int]] = {v: set(p) for v, p in
                                          targeted.items()}
        expected: dict[str, dict[int, Signature]] = {}
        for volume in sorted(scrub_volumes):
            scrubbed = self.scrub(volume)
            if scrubbed.condemned:
                condemned.setdefault(volume, set()).update(scrubbed.condemned)
                expected.setdefault(volume, {}).update(scrubbed.expected)
        # Drop pages beyond each volume's final extent and count the
        # targeted-only remainder (scrub counted its own findings).
        result: dict[str, tuple[int, ...]] = {}
        for volume, pages in condemned.items():
            page_count = self._require(volume).replica.page_count \
                if self.image_len(volume) else 0
            kept = tuple(sorted(p for p in pages if p < page_count))
            if kept:
                result[volume] = kept
                extra = [p for p in kept
                         if p not in expected.get(volume, {})]
                registry.counter("store.pages_condemned").inc(len(extra))
        expected = {volume: {page: sig for page, sig in pages.items()
                             if page in set(result.get(volume, ()))}
                    for volume, pages in expected.items()}
        expected = {volume: pages for volume, pages in expected.items()
                    if pages}
        return result, expected


class _StreamingReplay:
    """Applies certified frames as their segment verdicts land.

    The pipelined half of recovery: :func:`repro.store.recovery.
    scan_log` streams each segment's certified frames through
    :meth:`feed` while later segments are still being read and
    verified, so segment I/O, seal verification and ``Replica``
    application overlap instead of serializing.  Apply-during-scan is
    safe because the certified prefix is monotone -- a later segment
    can never invalidate an earlier certified frame.

    Frames ending at or before the checkpoint position replay *cold*
    (plain byte application, no signature work); crossing the position
    seeds the certified warm map/tree over the replayed images; frames
    after it fold through the Proposition-3 incremental plane -- the
    same three phases the sequential recovery always ran, folded into
    one streaming pass.
    """

    __slots__ = ("store", "snapshot", "position", "seeded",
                 "bytes_replayed", "frames_folded")

    def __init__(self, store: PageStore, snapshot):
        self.store = store
        self.snapshot = snapshot
        self.position = snapshot.position if snapshot is not None else 0
        self.seeded = snapshot is None
        self.bytes_replayed = 0
        self.frames_folded = 0

    def feed(self, scanned_frames) -> None:
        """Apply one segment's certified frames (in log order)."""
        store = self.store
        for scanned in scanned_frames:
            if not self.seeded and scanned.end > self.position:
                self._seed()
            store._apply(scanned.frame)
            self.bytes_replayed += len(scanned.frame.payload)
            if scanned.end > self.position:
                self.frames_folded += 1

    def _seed(self) -> None:
        """Seed the certified warm state over the replayed images."""
        store, snapshot = self.store, self.snapshot
        for name, volume_ckpt in snapshot.volumes.items():
            state = store._materialize(name, volume_ckpt.page_bytes)
            state.replica = Replica.from_warm(
                f"store:{name}", store.scheme,
                bytes(state.replica.data), volume_ckpt.page_bytes,
                volume_ckpt.map, volume_ckpt.tree,
            )
            store._warm_from_checkpoint.add(name)
        self.seeded = True

    def finish(self) -> None:
        """Seed the warm state even when no frame followed the position."""
        if not self.seeded:
            self._seed()
