"""The segmented append-only log under a durable page store.

Frames (:mod:`repro.store.frames`) are appended to numbered segment
files (``seg-00000042.log``); a segment is rolled when it reaches the
configured size, and a frame never spans two segments.  Positions are
*absolute* byte offsets into the logical concatenation of all segments
-- the natural coordinate for "cut the log at byte N" fault injection
and for the longest-certified-prefix arithmetic of recovery.

:meth:`SegmentedLog.scan` is the certification pass: it structurally
parses frame after frame, batch-verifies every seal through the shared
signing engine, and classifies every byte of the log as

* part of a **valid** frame (sealed, strictly increasing ``seq``),
* part of a **corrupt region** -- a frame whose seal fails (bit rot:
  detected with certainty for <= n corrupted symbols, Proposition 1)
  or bytes where no frame parses, with valid frames following, or
* the **torn tail**: everything after the last valid frame.  A torn
  write is indistinguishable from deliberate trailing garbage, so
  recovery truncates it -- the durable state is exactly the longest
  certified prefix.

After in-region corruption the scanner *resyncs* by searching for the
next offset where a structurally valid frame begins; stale bytes that
happen to look like old frames are rejected by the ``seq``
monotonicity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..errors import StoreError
from ..obs import get_registry
from ..sig.scheme import AlgebraicSignatureScheme
from . import frames as fr

#: Default segment roll size.
SEGMENT_BYTES = 1 << 20


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.log"


@dataclass(frozen=True, slots=True)
class ScannedFrame:
    """One certified frame and its absolute byte range in the log."""

    frame: fr.Frame
    start: int
    end: int


@dataclass(frozen=True, slots=True)
class CorruptRegion:
    """One rejected byte range (bad seal, stale seq, or garbage).

    ``frame`` carries the structurally parsed header/payload when the
    region still parsed as a frame -- recovery uses it to localize the
    damage to specific pages (best effort; the payload bytes are by
    definition untrustworthy).
    """

    start: int
    end: int
    reason: str                  #: "seal" | "stale_seq" | "garbage"
    frame: fr.Frame | None = None


@dataclass(frozen=True, slots=True)
class ScanResult:
    """Outcome of one certification scan over the whole log."""

    frames: list[ScannedFrame]
    corrupt: list[CorruptRegion]
    torn_start: int | None       #: absolute start of the torn tail
    total_bytes: int

    @property
    def certified_end(self) -> int:
        """End of the longest certified prefix (= torn-tail start)."""
        return self.torn_start if self.torn_start is not None \
            else self.total_bytes

    @property
    def torn_bytes(self) -> int:
        """Bytes of trailing garbage the recovery will truncate."""
        return 0 if self.torn_start is None \
            else self.total_bytes - self.torn_start


class SegmentedLog:
    """Append-only segmented frame log with certification scanning."""

    def __init__(self, directory: str | Path,
                 scheme: AlgebraicSignatureScheme,
                 segment_bytes: int = SEGMENT_BYTES):
        if segment_bytes < 4096:
            raise StoreError("segment size must be at least 4096 bytes")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.scheme = scheme
        self.segment_bytes = segment_bytes
        #: (segment index, size in bytes), ascending by index.
        self._segments: list[tuple[int, int]] = sorted(
            (int(path.stem.split("-")[1]), path.stat().st_size)
            for path in self.directory.glob("seg-*.log")
        )
        self._handle = None
        self._handle_index: int | None = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Logical log length (sum of all segment sizes)."""
        return sum(size for _index, size in self._segments)

    @property
    def segment_count(self) -> int:
        """Number of segment files."""
        return len(self._segments)

    def _path(self, index: int) -> Path:
        return self.directory / _segment_name(index)

    def _locate(self, offset: int) -> tuple[int, int, int]:
        """Map an absolute offset to (list position, segment index, local)."""
        base = 0
        for position, (index, size) in enumerate(self._segments):
            if offset < base + size:
                return position, index, offset - base
            base += size
        raise StoreError(f"offset {offset} beyond log end {self.total_bytes}")

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _writable(self, incoming: int):
        """The open handle of the segment the next frame lands in."""
        if not self._segments:
            self._segments.append((0, 0))
        index, size = self._segments[-1]
        if size and size + incoming > self.segment_bytes:
            index, size = index + 1, 0
            self._segments.append((index, 0))
        if self._handle_index != index:
            self.close()
            self._handle = open(self._path(index), "ab")
            self._handle_index = index
        return self._handle

    def append(self, frame: fr.Frame) -> int:
        """Seal and append one frame; returns its absolute start offset."""
        return self.append_encoded([fr.encode(self.scheme, frame)],
                                   [frame.kind])[0]

    def append_many(self, frame_list: list[fr.Frame]) -> list[int]:
        """Seal (one batched signing pass) and append a burst of frames."""
        return self.append_encoded(fr.encode_many(self.scheme, frame_list),
                                   [frame.kind for frame in frame_list])

    def append_encoded(self, encoded: list[bytes],
                       kinds: list[int]) -> list[int]:
        """Append pre-sealed frames; returns absolute start offsets."""
        registry = get_registry()
        offsets = []
        for data, kind in zip(encoded, kinds):
            handle = self._writable(len(data))
            index, size = self._segments[-1]
            offsets.append(self.total_bytes)  # frame starts at the log end
            handle.write(data)
            handle.flush()
            self._segments[-1] = (index, size + len(data))
            registry.counter("store.bytes_appended").inc(len(data))
            registry.counter("store.frames_sealed",
                             kind=fr.KIND_NAMES[kind]).inc()
        return offsets

    def close(self) -> None:
        """Flush and close the active segment handle."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._handle_index = None

    # ------------------------------------------------------------------
    # Certification scan
    # ------------------------------------------------------------------

    def scan(self, trusted_bytes: int = 0) -> ScanResult:
        """Parse and certify the whole log (see the module docstring).

        Frames ending at or before ``trusted_bytes`` are structurally
        parsed but their seals are *not* re-verified -- recovery passes
        the checkpoint position here in ``verify="tail"`` mode, trusting
        the state the sealed checkpoint already certifies.
        """
        from ..sig.engine import get_batch_signer

        seal_bytes = self.scheme.scheme_id.signature_bytes
        candidates: list[tuple[fr.Frame, int, int, memoryview, memoryview]] = []
        regions: list[CorruptRegion] = []
        base = 0
        for index, size in self._segments:
            buffer = self._path(index).read_bytes() if size else b""
            # Zero-copy certification: bodies, seals and frame payloads
            # are views into the segment read; nothing is re-sliced into
            # owned bytes on the scan path.
            view = memoryview(buffer)
            offset = 0
            while offset < len(buffer):
                parsed = fr.parse_at(buffer, offset, seal_bytes, copy=False)
                if parsed is not None:
                    frame, end, body_end = parsed
                    candidates.append((
                        frame, base + offset, base + end,
                        view[offset:body_end], view[body_end:end],
                    ))
                    offset = end
                    continue
                # Resync: find the next offset where a frame parses.
                bad_start = offset
                resync = None
                probe = buffer.find(fr.MAGIC, offset + 1)
                while probe != -1:
                    if fr.parse_at(buffer, probe, seal_bytes) is not None:
                        resync = probe
                        break
                    probe = buffer.find(fr.MAGIC, probe + 1)
                stop = resync if resync is not None else len(buffer)
                regions.append(CorruptRegion(base + bad_start, base + stop,
                                             "garbage"))
                offset = stop
            base += size
        # Batch-verify every untrusted candidate's seal in one pass; the
        # concat lane lands all bodies once, symbol-aligned, instead of
        # signing (frequently odd-length) bodies one coercion at a time.
        unverified = [c for c in candidates if c[2] > trusted_bytes]
        seals = get_batch_signer(self.scheme).sign_concat_many(
            [[c[3]] for c in unverified], strict=False,
        ) if unverified else []
        good_seal = {id(c): seal.to_bytes() == c[4]
                     for c, seal in zip(unverified, seals)}
        valid: list[ScannedFrame] = []
        last_seq = -1
        for candidate in candidates:
            frame, start, end, _body, _seal = candidate
            if not good_seal.get(id(candidate), True):
                regions.append(CorruptRegion(start, end, "seal", frame))
                continue
            if frame.seq <= last_seq:
                regions.append(CorruptRegion(start, end, "stale_seq", frame))
                continue
            last_seq = frame.seq
            valid.append(ScannedFrame(frame, start, end))
        # Everything after the last valid frame is the torn tail: a torn
        # write and trailing garbage are indistinguishable, so the
        # durable state ends at the last certified frame.
        total = self.total_bytes
        certified_end = valid[-1].end if valid else 0
        torn_start = certified_end if certified_end < total else None
        if torn_start is not None:
            regions = [r for r in regions if r.start < torn_start]
        regions.sort(key=lambda region: region.start)
        return ScanResult(valid, regions, torn_start, total)

    # ------------------------------------------------------------------
    # Truncation and fault injection
    # ------------------------------------------------------------------

    def truncate_to(self, offset: int) -> int:
        """Physically cut the log at absolute ``offset``; returns bytes cut."""
        if offset > self.total_bytes:
            raise StoreError(
                f"cannot truncate to {offset}: log is {self.total_bytes} bytes"
            )
        if offset == self.total_bytes:
            return 0
        self.close()
        dropped = self.total_bytes - offset
        position, index, local = self._locate(offset)
        for later_index, _size in self._segments[position + 1:]:
            self._path(later_index).unlink()
        del self._segments[position + 1:]
        with open(self._path(index), "r+b") as handle:
            handle.truncate(local)
        self._segments[position] = (index, local)
        if local == 0 and position > 0:
            self._path(index).unlink()
            del self._segments[position]
        return dropped

    def crash_cut(self, offset: int) -> int:
        """Simulate a crash mid-write: cut the log at byte ``offset``."""
        return self.truncate_to(offset)

    def corrupt_bytes(self, offset: int, xor: bytes) -> None:
        """XOR ``xor`` into the log at absolute ``offset`` (bit rot)."""
        if not xor:
            return
        if offset + len(xor) > self.total_bytes:
            raise StoreError("corruption extent beyond log end")
        self.close()
        _position, index, local = self._locate(offset)
        path = self._path(index)
        with open(path, "r+b") as handle:
            handle.seek(local)
            current = handle.read(len(xor))
            patched = bytes(a ^ b for a, b in zip(current, xor))
            handle.seek(local)
            handle.write(patched)
