"""The segmented append-only log under a durable page store.

Frames (:mod:`repro.store.frames`) are appended to numbered segment
files (``seg-00000042.log``); a segment is rolled when it reaches the
configured size, and a frame never spans two segments.  Positions are
*absolute* byte offsets into the logical concatenation of all segments
-- the natural coordinate for "cut the log at byte N" fault injection
and for the longest-certified-prefix arithmetic of recovery.

:meth:`SegmentedLog.scan` is the certification pass: it structurally
parses frame after frame, batch-verifies every seal through the shared
signing engine, and classifies every byte of the log as

* part of a **valid** frame (sealed, strictly increasing ``seq``),
* part of a **corrupt region** -- a frame whose seal fails (bit rot:
  detected with certainty for <= n corrupted symbols, Proposition 1)
  or bytes where no frame parses, with valid frames following, or
* the **torn tail**: everything after the last valid frame.  A torn
  write is indistinguishable from deliberate trailing garbage, so
  recovery truncates it -- the durable state is exactly the longest
  certified prefix.

After in-region corruption the scanner *resyncs* by searching for the
next offset where a structurally valid frame begins; stale bytes that
happen to look like old frames are rejected by the ``seq``
monotonicity check.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from itertools import accumulate, islice
from pathlib import Path

from ..errors import StoreError
from ..obs import get_registry
from ..sig.scheme import AlgebraicSignatureScheme
from . import frames as fr

#: Default segment roll size.
SEGMENT_BYTES = 1 << 20

#: Group-commit defaults: the pending buffer lands as one OS write +
#: one flush when it reaches this many bytes ...
GROUP_BYTES = 256 * 1024
#: ... or when the oldest pending byte is older than this.
GROUP_LATENCY_S = 0.010


def _segment_name(index: int) -> str:
    return f"seg-{index:08d}.log"


@dataclass(frozen=True, slots=True)
class ScannedFrame:
    """One certified frame and its absolute byte range in the log."""

    frame: fr.Frame
    start: int
    end: int


@dataclass(frozen=True, slots=True)
class CorruptRegion:
    """One rejected byte range (bad seal, stale seq, or garbage).

    ``frame`` carries the structurally parsed header/payload when the
    region still parsed as a frame -- recovery uses it to localize the
    damage to specific pages (best effort; the payload bytes are by
    definition untrustworthy).
    """

    start: int
    end: int
    reason: str                  #: "seal" | "stale_seq" | "garbage"
    frame: fr.Frame | None = None


@dataclass(frozen=True, slots=True)
class ScanResult:
    """Outcome of one certification scan over the whole log."""

    frames: list[ScannedFrame]
    corrupt: list[CorruptRegion]
    torn_start: int | None       #: absolute start of the torn tail
    total_bytes: int

    @property
    def certified_end(self) -> int:
        """End of the longest certified prefix (= torn-tail start)."""
        return self.torn_start if self.torn_start is not None \
            else self.total_bytes

    @property
    def torn_bytes(self) -> int:
        """Bytes of trailing garbage the recovery will truncate."""
        return 0 if self.torn_start is None \
            else self.total_bytes - self.torn_start


class SegmentedLog:
    """Append-only segmented frame log with certification scanning."""

    def __init__(self, directory: str | Path,
                 scheme: AlgebraicSignatureScheme,
                 segment_bytes: int = SEGMENT_BYTES,
                 flush: str = "frame",
                 group_bytes: int = GROUP_BYTES,
                 group_latency_s: float = GROUP_LATENCY_S):
        if segment_bytes < 4096:
            raise StoreError("segment size must be at least 4096 bytes")
        if flush not in ("frame", "group"):
            raise StoreError(f"unknown flush mode {flush!r}")
        if group_bytes < 1:
            raise StoreError("group_bytes must be positive")
        if group_latency_s < 0:
            raise StoreError("group_latency_s must be non-negative")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.scheme = scheme
        self.segment_bytes = segment_bytes
        self.flush = flush
        self.group_bytes = group_bytes
        self.group_latency_s = group_latency_s
        #: (segment index, size in bytes), ascending by index.
        self._segments: list[tuple[int, int]] = sorted(
            (int(path.stem.split("-")[1]), path.stat().st_size)
            for path in self.directory.glob("seg-*.log")
        )
        self._handle = None
        self._handle_index: int | None = None
        #: Coalesced frames awaiting their group commit.  Invariant:
        #: pending bytes always belong to the open handle's segment
        #: (a roll commits first) and are already counted in
        #: ``_segments`` -- ``total_bytes`` is the *logical* length.
        self._pending = bytearray()
        self._pending_since: float | None = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Logical log length (sum of all segment sizes)."""
        return sum(size for _index, size in self._segments)

    @property
    def segment_count(self) -> int:
        """Number of segment files."""
        return len(self._segments)

    def _path(self, index: int) -> Path:
        return self.directory / _segment_name(index)

    def segments(self) -> list[tuple[int, int]]:
        """``(segment index, size in bytes)`` pairs, ascending by index."""
        return list(self._segments)

    def segment_path(self, index: int) -> Path:
        """The file a segment lives in (recovery's shard unit)."""
        return self._path(index)

    def _locate(self, offset: int) -> tuple[int, int, int]:
        """Map an absolute offset to (list position, segment index, local)."""
        base = 0
        for position, (index, size) in enumerate(self._segments):
            if offset < base + size:
                return position, index, offset - base
            base += size
        raise StoreError(f"offset {offset} beyond log end {self.total_bytes}")

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _writable(self, incoming: int):
        """The open handle of the segment the next frame lands in."""
        if not self._segments:
            self._segments.append((0, 0))
        index, size = self._segments[-1]
        if size and size + incoming > self.segment_bytes:
            # Rolling commits first: pending frames belong to the old
            # segment and must land before its handle is dropped.
            self.close()
            index, size = index + 1, 0
            self._segments.append((index, 0))
        if self._handle_index != index:
            self.close()
            self._handle = open(self._path(index), "ab")
            self._handle_index = index
        return self._handle

    def append(self, frame: fr.Frame) -> int:
        """Seal and append one frame; returns its absolute start offset.

        Single frames ride the same batch path as bursts: one
        ``encode_many`` sealing pass, and under ``flush="group"`` no
        per-frame flush -- the frame coalesces into the pending group.
        """
        return self.append_many([frame])[0]

    def append_many(self, frame_list: list[fr.Frame]) -> list[int]:
        """Seal (one batched signing pass) and append a burst of frames."""
        return self.append_encoded(fr.encode_many(self.scheme, frame_list),
                                   [frame.kind for frame in frame_list])

    def append_encoded(self, encoded: list[bytes],
                       kinds: list[int]) -> list[int]:
        """Append pre-sealed frames; returns absolute start offsets.

        ``flush="frame"`` (the conservative default) writes and flushes
        every frame individually.  ``flush="group"`` coalesces frames in
        a pending buffer that lands as **one** OS write + **one** flush
        when it reaches ``group_bytes``, when the oldest pending byte is
        older than ``group_latency_s``, when a segment rolls, or at
        :meth:`commit`/:meth:`scan`/:meth:`close` time -- a burst of
        frames costs one syscall pair instead of one per frame.
        """
        grouped = self.flush == "group"
        offsets: list[int] = []
        total = self.total_bytes        # running log end; rolls keep it
        sizes = [len(data) for data in encoded]
        flushes = 0
        position, count = 0, len(encoded)
        while position < count:
            handle = self._writable(sizes[position])
            index, size = self._segments[-1]
            if grouped:
                if not self._pending:
                    self._pending_since = time.perf_counter()
                # Take the longest run of frames that fits the current
                # segment and land it as ONE buffer extension -- the
                # coalescing path does no per-frame write bookkeeping.
                run, seg_size = position, size
                while run < count:
                    step = sizes[run]
                    if seg_size and seg_size + step > self.segment_bytes:
                        break
                    seg_size += step
                    run += 1
                run_bytes = seg_size - size
                self._pending += b"".join(encoded[position:run])
                # Frame start offsets: a prefix-sum off the log end.
                offsets.extend(islice(
                    accumulate(sizes[position:run], initial=total),
                    run - position))
                total += run_bytes
                self._segments[-1] = (index, seg_size)
                position = run
                if len(self._pending) >= self.group_bytes:
                    self.commit()
            else:
                handle.write(encoded[position])
                handle.flush()
                flushes += 1
                step = sizes[position]
                self._segments[-1] = (index, size + step)
                offsets.append(total)   # frame starts at the log end
                total += step
                position += 1
        registry = get_registry()
        if flushes:
            registry.counter("store.log.fsyncs").inc(flushes)
        registry.counter("store.bytes_appended").inc(sum(sizes))
        for kind, kind_count in Counter(kinds).items():
            registry.counter("store.frames_sealed",
                             kind=fr.KIND_NAMES[kind]).inc(kind_count)
        if grouped and self._pending and (
                time.perf_counter() - self._pending_since
                >= self.group_latency_s):
            self.commit()
        return offsets

    def commit(self) -> int:
        """Land the coalesced pending frames: one write, one flush.

        Returns the bytes flushed (0 when nothing is pending -- always
        the case under ``flush="frame"``, where appends flush eagerly).
        """
        if not self._pending:
            return 0
        handle = self._handle
        if handle is None:     # pending implies an open handle; be safe
            handle = self._handle = open(
                self._path(self._handle_index), "ab")
        flushed = len(self._pending)
        handle.write(self._pending)
        handle.flush()
        self._pending = bytearray()
        self._pending_since = None
        registry = get_registry()
        registry.counter("store.log.group_commits").inc()
        registry.counter("store.log.fsyncs").inc()
        registry.counter("store.log.group_bytes").inc(flushed)
        return flushed

    def close(self) -> None:
        """Commit pending frames, then flush and close the segment handle."""
        self.commit()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._handle_index = None

    # ------------------------------------------------------------------
    # Certification scan
    # ------------------------------------------------------------------

    def scan(self, trusted_bytes: int = 0,
             verify_workers: int | None = None,
             on_frames=None) -> ScanResult:
        """Parse and certify the whole log (see the module docstring).

        Frames ending at or before ``trusted_bytes`` are structurally
        parsed but their seals are *not* re-verified -- recovery passes
        the checkpoint position here in ``verify="tail"`` mode, trusting
        the state the sealed checkpoint already certifies.

        ``verify_workers`` shards seal verification by segment across
        worker processes (:mod:`repro.store.recovery`); the default
        resolves ``REPRO_RECOVERY_WORKERS`` / ``REPRO_SIGN_WORKERS``
        and stays in-process for small logs.  The result is
        byte-identical for any worker count.  ``on_frames`` streams
        each segment's certified frames to the caller as soon as its
        verdict lands (the pipelined-replay hook).
        """
        from .recovery import scan_log

        self.commit()          # the scan reads files, not buffers
        return scan_log(self, trusted_bytes=trusted_bytes,
                        verify_workers=verify_workers, on_frames=on_frames)

    # ------------------------------------------------------------------
    # Truncation and fault injection
    # ------------------------------------------------------------------

    def truncate_to(self, offset: int) -> int:
        """Physically cut the log at absolute ``offset``; returns bytes cut."""
        if offset > self.total_bytes:
            raise StoreError(
                f"cannot truncate to {offset}: log is {self.total_bytes} bytes"
            )
        if offset == self.total_bytes:
            return 0
        self.close()
        dropped = self.total_bytes - offset
        position, index, local = self._locate(offset)
        for later_index, _size in self._segments[position + 1:]:
            self._path(later_index).unlink()
        del self._segments[position + 1:]
        with open(self._path(index), "r+b") as handle:
            handle.truncate(local)
        self._segments[position] = (index, local)
        if local == 0 and position > 0:
            self._path(index).unlink()
            del self._segments[position]
        return dropped

    def crash_cut(self, offset: int) -> int:
        """Simulate a crash mid-write: cut the log at byte ``offset``."""
        return self.truncate_to(offset)

    def corrupt_bytes(self, offset: int, xor: bytes) -> None:
        """XOR ``xor`` into the log at absolute ``offset`` (bit rot)."""
        if not xor:
            return
        if offset + len(xor) > self.total_bytes:
            raise StoreError("corruption extent beyond log end")
        self.close()
        _position, index, local = self._locate(offset)
        path = self._path(index)
        with open(path, "r+b") as handle:
            handle.seek(local)
            current = handle.read(len(xor))
            patched = bytes(a ^ b for a, b in zip(current, xor))
            handle.seek(local)
            handle.write(patched)
