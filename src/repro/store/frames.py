"""Signature-sealed log frames: the durable store's unit of writing.

Every mutation of a :class:`~repro.store.pagestore.PageStore` volume is
appended to the log as one *frame*::

    magic(2) | kind(1) | seq(8) | volume_len(2) | payload_len(4)
    | volume | payload | seal

where ``seal`` is the scheme's n-symbol algebraic signature of
everything before it.  By Proposition 1 a torn write or bit rot
touching at most ``n`` symbols of a frame is detected *with certainty*
-- 4 bytes of seal per frame under the paper's production GF(2^16),
n = 2 scheme.  Three frame kinds cover the write paths:

* ``PAGE`` (payload ``page_index(4) | page_size(4) | data``) -- a full
  page write, the backup engine's granule.  A short write to the final
  page sets the volume length, mirroring the sim disk's semantics.
* ``DELTA`` (payload ``image_len(8) | offset(8) | delta``) -- a PR-4
  journal region carrying only ``before XOR after``; the same layout
  as the cluster's ``c_mirror_delta`` wire frame, so delta-shipping
  replication and durable logging share one vocabulary.
* ``TRUNCATE`` (payload ``image_len(8) | page_size(4)``) -- declares a
  volume (fixing its page size) or sets its length.

Bodies are fixed little-endian layouts: corrupting a byte must yield a
*detected* bad frame, never an exception inside a deserializer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import StoreError
from ..sig.scheme import AlgebraicSignatureScheme

#: Frame preamble; a resync scan looks for this after corruption.
MAGIC = b"\xa5\x5a"

KIND_PAGE = 1
KIND_DELTA = 2
KIND_TRUNCATE = 3

KIND_NAMES = {KIND_PAGE: "page", KIND_DELTA: "delta",
              KIND_TRUNCATE: "truncate"}

_HEADER = struct.Struct("<2sBQHI")      # magic, kind, seq, vol_len, payload_len
_PAGE = struct.Struct("<II")            # page_index, page_size
_DELTA = struct.Struct("<QQ")           # image_len, offset
_TRUNCATE = struct.Struct("<QI")        # image_len, page_size

HEADER_BYTES = _HEADER.size


class FrameError(StoreError):
    """Malformed frame (structural -- distinct from a bad seal)."""


@dataclass(frozen=True, slots=True)
class Frame:
    """One decoded log frame (header + payload, seal already verified).

    ``payload`` may be ``bytes`` or a ``memoryview`` into a larger
    buffer (a scanned segment, an arena) -- the codecs below slice it
    without materializing either way.
    """

    kind: int
    seq: int
    volume: str
    payload: bytes | memoryview

    def header_volume(self) -> bytes:
        """The sealed prefix before the payload: header plus volume."""
        volume = self.volume.encode()
        if len(volume) > 0xFFFF:
            raise FrameError(f"volume name of {len(volume)} bytes too long")
        if self.kind not in KIND_NAMES:
            raise FrameError(f"unknown frame kind {self.kind}")
        header = _HEADER.pack(MAGIC, self.kind, self.seq, len(volume),
                              len(self.payload))
        return header + volume

    def body(self) -> bytes:
        """Everything the seal covers: header plus volume plus payload."""
        return self.header_volume() + bytes(self.payload)


def encode(scheme: AlgebraicSignatureScheme, frame: Frame) -> bytes:
    """Seal one frame: ``body || sig(body)``.

    The payload is signed as a view and lands exactly once -- in the
    final output join -- instead of once for the body and once more for
    the sealed result.
    """
    from ..sig.engine import get_batch_signer

    header_volume = frame.header_volume()
    seal = get_batch_signer(scheme).sign_concat(
        [header_volume, frame.payload], strict=False)
    return b"".join((header_volume, frame.payload, seal.to_bytes()))


def encode_many(scheme: AlgebraicSignatureScheme,
                frames: list[Frame]) -> list[bytes]:
    """Seal a burst of frames in one batched signing pass.

    Bulk writers (whole-image loads, journal flushes) seal every frame
    through the shared batch engine -- one 2-D kernel pass over a
    single symbol-aligned landing of all bodies -- instead of one
    signing dispatch (and one body join) per frame.  Each result equals
    ``encode(scheme, frame)``.
    """
    from ..sig.engine import get_batch_signer

    prefixes = [frame.header_volume() for frame in frames]
    seals = get_batch_signer(scheme).sign_concat_many(
        [[prefix, frame.payload]
         for prefix, frame in zip(prefixes, frames)],
        strict=False,
    )
    return [
        b"".join((prefix, frame.payload, seal.to_bytes()))
        for prefix, frame, seal in zip(prefixes, frames, seals)
    ]


def parse_at(buffer, offset: int, seal_bytes: int, copy: bool = True):
    """Structurally parse the frame starting at ``offset``.

    Returns ``(frame, end_offset, body_end)`` where ``buffer[offset:
    body_end]`` is the sealed region and ``buffer[body_end:end_offset]``
    the seal, or ``None`` when no structurally valid frame starts there
    (bad magic, impossible lengths, or the buffer ends mid-frame --
    the torn-write shape).  The seal is *not* checked here; callers
    batch-verify seals over all structurally valid frames at once.

    With ``copy=False`` the frame's payload is a ``memoryview`` into
    ``buffer`` (the scanner's zero-copy mode); the caller must keep the
    buffer alive for the frame's lifetime.
    """
    if offset + HEADER_BYTES > len(buffer):
        return None
    magic, kind, seq, volume_len, payload_len = _HEADER.unpack_from(
        buffer, offset
    )
    if magic != MAGIC or kind not in KIND_NAMES:
        return None
    body_end = offset + HEADER_BYTES + volume_len + payload_len
    end = body_end + seal_bytes
    if end > len(buffer):
        return None
    volume_raw = bytes(buffer[offset + HEADER_BYTES:
                              offset + HEADER_BYTES + volume_len])
    try:
        volume = volume_raw.decode()
    except UnicodeDecodeError:
        return None
    payload_start = offset + HEADER_BYTES + volume_len
    if copy:
        payload = bytes(buffer[payload_start:body_end])
    else:
        view = buffer if isinstance(buffer, memoryview) \
            else memoryview(buffer)
        payload = view[payload_start:body_end]
    return Frame(kind, seq, volume, payload), end, body_end


def scan_buffer(buffer, seal_bytes: int):
    """Structurally walk one contiguous buffer of appended frames.

    Returns ``(candidates, garbage)`` in *local* offsets: each candidate
    is ``(frame, start, end, body_end)`` with a zero-copy payload view
    into ``buffer``, each garbage span ``(start, end)`` covers bytes
    where no structurally valid frame begins.  After corruption the walk
    *resyncs* at the next offset where a frame parses.  Seals are not
    checked here -- callers batch-verify them over all candidates at
    once, which is what lets the sequential scan and the per-segment
    recovery workers share this exact walk.
    """
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    size = len(view)
    candidates = []
    garbage = []
    offset = 0
    haystack = None     # owned bytes for resync searches, built lazily
    while offset < size:
        parsed = parse_at(view, offset, seal_bytes, copy=False)
        if parsed is not None:
            frame, end, body_end = parsed
            candidates.append((frame, offset, end, body_end))
            offset = end
            continue
        if haystack is None:
            # Only the (rare) corrupt path pays a materialization; a
            # shared-memory segment view has no ``find``.
            haystack = buffer if isinstance(buffer, (bytes, bytearray)) \
                else bytes(view)
        bad_start = offset
        resync = None
        probe = haystack.find(MAGIC, offset + 1)
        while probe != -1:
            if parse_at(view, probe, seal_bytes, copy=False) is not None:
                resync = probe
                break
            probe = haystack.find(MAGIC, probe + 1)
        stop = resync if resync is not None else size
        garbage.append((bad_start, stop))
        offset = stop
    return candidates, garbage


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------

def encode_page(page_index: int, page_size: int, data: bytes) -> bytes:
    """PAGE payload: one full (or short final) page write."""
    return _PAGE.pack(page_index, page_size) + data


def decode_page(payload: bytes) -> tuple[int, int, bytes]:
    """Inverse of :func:`encode_page`; raises :class:`FrameError`."""
    if len(payload) < _PAGE.size:
        raise FrameError("truncated PAGE payload")
    page_index, page_size = _PAGE.unpack_from(payload)
    return page_index, page_size, payload[_PAGE.size:]


def encode_delta(image_len: int, offset: int, delta: bytes) -> bytes:
    """DELTA payload: ``before XOR after`` of one changed extent."""
    return _DELTA.pack(image_len, offset) + delta


def decode_delta(payload: bytes) -> tuple[int, int, bytes]:
    """Inverse of :func:`encode_delta`; raises :class:`FrameError`."""
    if len(payload) < _DELTA.size:
        raise FrameError("truncated DELTA payload")
    image_len, offset = _DELTA.unpack_from(payload)
    return image_len, offset, payload[_DELTA.size:]


def encode_truncate(image_len: int, page_size: int) -> bytes:
    """TRUNCATE payload: declare a volume / set its byte length."""
    return _TRUNCATE.pack(image_len, page_size)


def decode_truncate(payload: bytes) -> tuple[int, int]:
    """Inverse of :func:`encode_truncate`; raises :class:`FrameError`."""
    if len(payload) != _TRUNCATE.size:
        raise FrameError("malformed TRUNCATE payload")
    image_len, page_size = _TRUNCATE.unpack(payload)
    return image_len, page_size
