"""Sealed checkpoints: persisted warm signature state for fast recovery.

A checkpoint snapshots, for every volume, the byte length, the warm
:class:`~repro.sig.compound.SignatureMap` and the warm
:class:`~repro.sig.tree.SignatureTree` -- plus the absolute log
position and next frame sequence number.  Recovery then only *folds*
the log tail written after the checkpoint through the Proposition-3
incremental plane, instead of re-signing every volume from scratch;
the persisted tree is what localizes mid-prefix corruption to single
pages (Proposition 5) during the scrub.

Layout (little-endian throughout)::

    magic "ASCK" | version(1)
    | scheme_len(2) | scheme_id            (self-describing identity)
    | position(8) | next_seq(8)
    | volume_count(2)
    | per volume:
    |   name_len(2) | name | page_bytes(4) | image_len(8)
    |   map_len(4) | signature map
    |   fanout(2) | level_count(2)
    |   per level: node_count(4); per node: signature | symbols(8)
    | seal                                 (signature of all the above)

The file is written atomically (temp file + rename) and verified on
load: wrong magic, a foreign scheme identity, any truncation, or a
failing seal makes :func:`load` return ``None`` -- recovery then falls
back to a cold replay of the whole log.  A checkpoint whose position
lies beyond the certified log prefix (the tail it described was torn
off) is likewise rejected by the recovery logic.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

from ..obs import get_registry
from ..sig.compound import SignatureMap
from ..sig.scheme import AlgebraicSignatureScheme
from ..sig.signature import Signature
from ..sig.tree import SignatureTree, TreeNode

MAGIC = b"ASCK"
VERSION = 1
FILENAME = "checkpoint.ckpt"

_POSITIONS = struct.Struct("<QQ")


@dataclass(frozen=True, slots=True)
class VolumeCheckpoint:
    """One volume's persisted warm state."""

    page_bytes: int
    image_len: int
    map: SignatureMap
    tree: SignatureTree


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """A full persisted warm-state snapshot."""

    position: int                #: absolute log bytes covered
    next_seq: int                #: next frame sequence number
    volumes: dict[str, VolumeCheckpoint]


def _encode_tree(tree: SignatureTree) -> bytes:
    parts = [tree.fanout.to_bytes(2, "little"),
             len(tree.levels).to_bytes(2, "little")]
    for level in tree.levels:
        parts.append(len(level).to_bytes(4, "little"))
        for node in level:
            parts.append(node.signature.to_bytes())
            parts.append(node.symbols.to_bytes(8, "little"))
    return b"".join(parts)


class _Reader:
    """Cursor over the checkpoint body; any overrun raises ValueError."""

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.data):
            raise ValueError("truncated checkpoint")
        chunk = self.data[self.offset:self.offset + count]
        self.offset += count
        return chunk

    def integer(self, width: int) -> int:
        return int.from_bytes(self.take(width), "little")


def _decode_tree(reader: _Reader,
                 scheme: AlgebraicSignatureScheme) -> SignatureTree:
    sig_bytes = scheme.scheme_id.signature_bytes
    fanout = reader.integer(2)
    level_count = reader.integer(2)
    if fanout < 2 or not 1 <= level_count <= 64:
        raise ValueError("implausible checkpoint tree shape")
    levels = []
    for _ in range(level_count):
        node_count = reader.integer(4)
        levels.append([
            TreeNode(Signature.from_bytes(reader.take(sig_bytes),
                                          scheme.scheme_id),
                     reader.integer(8))
            for _ in range(node_count)
        ])
    return SignatureTree(scheme, fanout, levels)


def encode(scheme: AlgebraicSignatureScheme, checkpoint: Checkpoint) -> bytes:
    """Serialize and seal one checkpoint."""
    scheme_id = scheme.scheme_id.to_bytes()
    parts = [MAGIC, bytes([VERSION]),
             len(scheme_id).to_bytes(2, "little"), scheme_id,
             _POSITIONS.pack(checkpoint.position, checkpoint.next_seq),
             len(checkpoint.volumes).to_bytes(2, "little")]
    for name in sorted(checkpoint.volumes):
        state = checkpoint.volumes[name]
        encoded_name = name.encode()
        map_bytes = state.map.to_bytes()
        parts += [len(encoded_name).to_bytes(2, "little"), encoded_name,
                  state.page_bytes.to_bytes(4, "little"),
                  state.image_len.to_bytes(8, "little"),
                  len(map_bytes).to_bytes(4, "little"), map_bytes,
                  _encode_tree(state.tree)]
    body = b"".join(parts)
    return body + scheme.sign(body, strict=False).to_bytes()


def decode(data: bytes,
           scheme: AlgebraicSignatureScheme) -> Checkpoint | None:
    """Verify and deserialize; ``None`` on any damage or mismatch."""
    seal_bytes = scheme.scheme_id.signature_bytes
    if len(data) < len(MAGIC) + 1 + seal_bytes:
        return None
    body, seal = data[:-seal_bytes], data[-seal_bytes:]
    if scheme.sign(body, strict=False).to_bytes() != seal:
        return None
    try:
        reader = _Reader(body)
        if reader.take(4) != MAGIC or reader.integer(1) != VERSION:
            return None
        scheme_id = reader.take(reader.integer(2))
        if scheme_id != scheme.scheme_id.to_bytes():
            return None
        position = reader.integer(8)
        next_seq = reader.integer(8)
        volumes: dict[str, VolumeCheckpoint] = {}
        for _ in range(reader.integer(2)):
            name = reader.take(reader.integer(2)).decode()
            page_bytes = reader.integer(4)
            image_len = reader.integer(8)
            signature_map = SignatureMap.from_bytes(
                reader.take(reader.integer(4)), scheme
            )
            tree = _decode_tree(reader, scheme)
            volumes[name] = VolumeCheckpoint(page_bytes, image_len,
                                             signature_map, tree)
        if reader.offset != len(body):
            return None
    except Exception:
        # A verified seal makes damage here practically impossible, but
        # a foreign file must degrade to "no checkpoint", never crash.
        return None
    return Checkpoint(position, next_seq, volumes)


def save(directory: str | Path, scheme: AlgebraicSignatureScheme,
         checkpoint: Checkpoint) -> Path:
    """Atomically write the checkpoint file; returns its path."""
    directory = Path(directory)
    path = directory / FILENAME
    temporary = directory / (FILENAME + ".tmp")
    temporary.write_bytes(encode(scheme, checkpoint))
    os.replace(temporary, path)
    get_registry().counter("store.checkpoints").inc()
    return path


def load(directory: str | Path,
         scheme: AlgebraicSignatureScheme) -> Checkpoint | None:
    """Load and verify the checkpoint; ``None`` when absent or invalid."""
    path = Path(directory) / FILENAME
    if not path.is_file():
        return None
    checkpoint = decode(path.read_bytes(), scheme)
    if checkpoint is None:
        get_registry().counter("store.checkpoints_rejected").inc()
    return checkpoint
