"""Parallel certified recovery: segment-sharded scan, pipelined replay.

:meth:`~repro.store.log.SegmentedLog.scan` certifies the log by
verifying every frame seal -- the paper's Proposition 1 (any <= n
corrupted symbols detected with certainty) applied frame by frame.  On
one core that pass is the recovery bottleneck, growing linearly with
log size while PR 8's process signing backend sits idle.  This module
shards the pass by segment:

* the parent lands each segment file **once** (``readinto``) in a
  shared :class:`~repro.sig.arena.PageArena`;
* workers from :mod:`repro.sig.parallel` attach the arena by name,
  structurally walk their segment (:func:`repro.store.frames.
  scan_buffer` -- the same walk the sequential lane runs), and
  batch-verify the untrusted seals through the engine's
  ``sign_concat_many`` lane, zero copies of page content crossing the
  process boundary: a worker returns only compact
  :class:`FrameVerdict` coordinates;
* the parent *stitches* verdicts in segment order.  Validity is a
  left-to-right property -- a frame is certified iff its seal held and
  its ``seq`` exceeds every certified frame before it -- so the global
  longest-certified-prefix fold needs exactly one integer of carried
  state (the running max ``seq``), which is also what rejects
  cross-segment ``stale_seq`` replays and what makes the fold
  *streamable*.

Streaming is the pipelined replay: the parent reads segment ``k+1``
into the arena while workers verify earlier segments, and folds (and
via ``on_frames`` *applies*) segment ``k``'s certified frames the
moment its verdict lands -- reads, seal verification and ``Replica``
application overlap instead of serializing.  A frame never spans two
segments (the log rolls before that could happen), so per-segment walks
see exactly the byte ranges the sequential walk sees; would-be-spanning
bytes at a segment's end classify as garbage/torn identically in both
modes, and the per-frame seal is independent of which batch verified it
-- properties the parallel == sequential exactness tests pin.

Worker counts resolve ``REPRO_RECOVERY_WORKERS`` over
``REPRO_SIGN_WORKERS`` over ``cpu_count`` (:func:`resolve_recovery_
workers`); auto mode stays in-process for small logs where pool
dispatch costs more than it saves.  Cleanup is crash-safe: the shared
block's name is unlinked the moment the workers are done
(:meth:`~repro.sig.arena.PageArena.unlink`), while the mapping -- and
therefore every certified frame's zero-copy payload view -- stays
valid until the scan result is garbage collected.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import StoreError
from ..obs import get_registry, span_if_active
from ..sig.arena import PageArena
from ..sig.engine import get_batch_signer
from ..sig.parallel import (_cached_scheme, _discard_pool, get_pool,
                            resolve_workers, scheme_spec)
from . import frames as fr
from .log import CorruptRegion, ScanResult, ScannedFrame

#: Environment override for the recovery scan fleet.
RECOVERY_WORKERS_ENV = "REPRO_RECOVERY_WORKERS"

#: Fallback chain: recovery fleet > signing fleet > machine size.
_WORKERS_ENV_CHAIN = (RECOVERY_WORKERS_ENV, "REPRO_SIGN_WORKERS")

#: Below this log size auto mode stays in-process: forking dispatch
#: costs more than sharding a couple of segments saves.
MIN_PARALLEL_BYTES = 1 << 20


def resolve_recovery_workers(requested: int | None = None) -> int:
    """Scan worker count: explicit > ``REPRO_RECOVERY_WORKERS`` >
    ``REPRO_SIGN_WORKERS`` > cpu_count."""
    return resolve_workers(requested, env=_WORKERS_ENV_CHAIN)


def effective_workers(requested: int | None, total_bytes: int,
                      segment_count: int) -> int:
    """The worker count a scan actually uses.

    An explicit request is honoured (clamped to the segment count --
    there is one shard per segment); auto mode additionally gates on
    log size so tiny logs never pay pool dispatch.
    """
    if requested is not None:
        return min(resolve_recovery_workers(requested),
                   max(segment_count, 1))
    workers = resolve_recovery_workers(None)
    if (workers <= 1 or segment_count <= 1
            or total_bytes < MIN_PARALLEL_BYTES):
        return 1
    return min(workers, segment_count)


# ----------------------------------------------------------------------
# Per-segment verdicts (what crosses the process boundary)
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class FrameVerdict:
    """One structurally parsed frame: coordinates plus its seal verdict.

    All offsets are absolute log positions; the payload coordinates let
    the parent rebuild the frame as a zero-copy view into its own arena
    mapping, so a worker never pickles page content.  ``seal_ok`` is
    true for verified seals *and* for frames inside the trusted prefix
    (whose seals the sealed checkpoint already certifies).
    """

    kind: int
    seq: int
    volume: str
    start: int
    end: int
    payload_start: int
    body_end: int
    seal_ok: bool


@dataclass(frozen=True, slots=True)
class SegmentVerdict:
    """One segment's certified/corrupt partition, absolute coordinates."""

    index: int
    base: int
    size: int
    frames: tuple[FrameVerdict, ...]
    garbage: tuple[tuple[int, int], ...]


def scan_segment(scheme, buffer, index: int, base: int,
                 trusted_bytes: int) -> SegmentVerdict:
    """Structurally walk and seal-verify one segment's bytes.

    ``sign_concat_many`` signs every body in its own matrix row, so a
    frame's verdict is independent of which batch verified it: per-
    segment batches here produce seals byte-identical to the sequential
    scan's one global batch.
    """
    seal_bytes = scheme.scheme_id.signature_bytes
    candidates, garbage = fr.scan_buffer(buffer, seal_bytes)
    view = buffer if isinstance(buffer, memoryview) else memoryview(buffer)
    unverified = [c for c in candidates if base + c[2] > trusted_bytes]
    seals = get_batch_signer(scheme).sign_concat_many(
        [[view[c[1]:c[3]]] for c in unverified], strict=False,
    ) if unverified else []
    good = {id(c): seal.to_bytes() == view[c[3]:c[2]]
            for c, seal in zip(unverified, seals)}
    frames = []
    for candidate in candidates:
        frame, start, end, body_end = candidate
        frames.append(FrameVerdict(
            frame.kind, frame.seq, frame.volume,
            base + start, base + end,
            base + body_end - len(frame.payload), base + body_end,
            bool(good.get(id(candidate), True)),
        ))
    return SegmentVerdict(index, base, len(view), tuple(frames),
                          tuple((base + s, base + e) for s, e in garbage))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

def _scan_attached(scheme, buf, offset: int, length: int, index: int,
                   base: int, trusted_bytes: int) -> SegmentVerdict:
    """Scan in its own frame so arena views die before the detach."""
    view = memoryview(buf)[offset:offset + length]
    return scan_segment(scheme, view, index, base, trusted_bytes)


def _worker_scan(task) -> SegmentVerdict:
    """Pool entry point: attach by name, scan one segment, detach."""
    name, spec, offset, length, index, base, trusted_bytes = task
    from multiprocessing import shared_memory

    scheme = _cached_scheme(spec)
    shm = shared_memory.SharedMemory(name=name)
    try:
        return _scan_attached(scheme, shm.buf, offset, length, index,
                              base, trusted_bytes)
    finally:
        shm.close()


# ----------------------------------------------------------------------
# Stitching (the global longest-certified-prefix fold)
# ----------------------------------------------------------------------

class _Stitcher:
    """Folds per-segment verdicts into the global certified prefix.

    Carried state is one integer -- the running max certified ``seq``
    -- which is what rejects cross-segment ``stale_seq`` replays and
    what makes the fold streamable: a later segment can never
    invalidate an earlier certified frame, so ``on_frames`` may apply
    frames while later segments are still being verified.
    """

    __slots__ = ("frames", "corrupt", "last_seq", "on_frames")

    def __init__(self, on_frames=None):
        self.frames: list[ScannedFrame] = []
        self.corrupt: list[CorruptRegion] = []
        self.last_seq = -1
        self.on_frames = on_frames

    def fold(self, verdict: SegmentVerdict, view: memoryview) -> None:
        """Fold one segment's verdict; ``view`` holds its bytes."""
        base = verdict.base
        for start, end in verdict.garbage:
            self.corrupt.append(CorruptRegion(start, end, "garbage"))
        fresh: list[ScannedFrame] = []
        for meta in verdict.frames:
            frame = fr.Frame(meta.kind, meta.seq, meta.volume,
                             view[meta.payload_start - base:
                                  meta.body_end - base])
            if not meta.seal_ok:
                self.corrupt.append(
                    CorruptRegion(meta.start, meta.end, "seal", frame))
                continue
            if meta.seq <= self.last_seq:
                self.corrupt.append(
                    CorruptRegion(meta.start, meta.end, "stale_seq", frame))
                continue
            self.last_seq = meta.seq
            fresh.append(ScannedFrame(frame, meta.start, meta.end))
        self.frames.extend(fresh)
        if self.on_frames is not None and fresh:
            self.on_frames(fresh)

    def result(self, total_bytes: int) -> ScanResult:
        """Seal the fold: torn tail after the last certified frame."""
        certified_end = self.frames[-1].end if self.frames else 0
        torn_start = certified_end if certified_end < total_bytes else None
        regions = self.corrupt
        if torn_start is not None:
            regions = [r for r in regions if r.start < torn_start]
        regions.sort(key=lambda region: region.start)
        return ScanResult(self.frames, regions, torn_start, total_bytes)


# ----------------------------------------------------------------------
# Parent-side drivers
# ----------------------------------------------------------------------

def _serial_scan(log, trusted_bytes: int, stitcher: _Stitcher) -> None:
    """The in-process lane: read, walk and verify segment by segment."""
    base = 0
    for index, size in log.segments():
        buffer = log.segment_path(index).read_bytes() if size else b""
        verdict = scan_segment(log.scheme, buffer, index, base,
                               trusted_bytes)
        stitcher.fold(verdict, memoryview(buffer))
        base += size


def _parallel_scan(log, trusted_bytes: int, workers: int,
                   stitcher: _Stitcher) -> None:
    """The sharded lane: segments land in a shared arena, workers
    verify, the parent stitches (and streams) verdicts in order.

    The submit loop is the readahead: segment ``k+1`` is read into the
    arena while workers verify earlier segments, and the oldest
    completed verdict is folded opportunistically so replay overlaps
    both.  The arena's name is unlinked as soon as every worker is
    done; payload views stay valid until the scan result is collected.
    """
    segments = log.segments()
    arena = PageArena(max(log.total_bytes, 1) + 2 * len(segments),
                      shared=True, align=2)
    pool = get_pool(workers)
    spec = scheme_spec(log.scheme)
    pending: deque = deque()
    try:
        base = 0
        for index, size in segments:
            view = arena.reserve(size)
            if size:
                with open(log.segment_path(index), "rb") as handle:
                    landed = handle.readinto(view.memoryview())
                if landed != size:
                    raise StoreError(
                        f"segment {index} read {landed} of {size} bytes"
                    )
            pending.append((
                pool.submit(_worker_scan,
                            (arena.name, spec, view.offset, size,
                             index, base, trusted_bytes)),
                view,
            ))
            base += size
            while pending and pending[0][0].done():
                future, done_view = pending.popleft()
                stitcher.fold(future.result(), done_view.memoryview())
        while pending:
            future, done_view = pending.popleft()
            stitcher.fold(future.result(), done_view.memoryview())
    except BrokenProcessPool:
        _discard_pool(workers, pool)
        arena.close()
        raise
    except BaseException:
        arena.close()
        raise
    arena.unlink()


def scan_log(log, trusted_bytes: int = 0,
             verify_workers: int | None = None,
             on_frames=None) -> ScanResult:
    """Certify the whole log, optionally sharded across processes.

    ``on_frames`` is the pipelined-replay hook: it receives each
    segment's batch of certified frames (in log order) as soon as that
    segment's verdict lands, while later segments are still being read
    and verified.  The result is byte-identical to the sequential scan
    for any worker count.
    """
    workers = effective_workers(verify_workers, log.total_bytes,
                                log.segment_count)
    registry = get_registry()
    mode = "parallel" if workers > 1 else "sequential"
    with span_if_active("store.scan", workers=str(workers), mode=mode,
                        segments=str(log.segment_count)) as span:
        stitcher = _Stitcher(on_frames)
        if workers > 1:
            _parallel_scan(log, trusted_bytes, workers, stitcher)
        else:
            _serial_scan(log, trusted_bytes, stitcher)
        registry.counter("store.scans", mode=mode).inc()
        registry.gauge("store.recovery_workers").set(workers)
        result = stitcher.result(log.total_bytes)
        if span is not None:
            span.event("certified", frames=len(result.frames),
                       corrupt=len(result.corrupt),
                       torn_bytes=result.torn_bytes)
    return result
