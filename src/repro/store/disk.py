"""A durable drop-in for the simulated backup disk.

:class:`DurableDisk` speaks the exact interface of
:class:`~repro.sim.disk.SimDisk` -- ``write_page`` / ``read_page`` /
``has_page`` / ``volume_pages`` / ``read_volume`` / ``corrupt_page``
plus the shared clock, latency model and transfer stats -- but every
page write lands in a :class:`~repro.store.pagestore.PageStore`'s
sealed log instead of an in-RAM dict.  The backup engine and the
scheduler run unchanged on either backend; pointing them at a
``DurableDisk`` makes the backup store crash-recoverable with
certified replay.

``corrupt_page`` keeps its fault-injection role, but models *silent*
rot of the materialized image ("irrecoverable disk errors",
Section 2.1): the bytes change while the warm (certified) signature
state does not, so a subsequent
:meth:`~repro.store.pagestore.PageStore.scrub` localizes and condemns
exactly the rotted page against its certified signature
(Proposition 5).
"""

from __future__ import annotations

from ..errors import BackupError, StoreError
from ..obs import MetricsRegistry, get_registry
from ..sim.clock import SimClock
from ..sim.disk import DiskModel
from ..sim.stats import DiskStats
from .pagestore import PageStore


class DurableDisk:
    """SimDisk-compatible facade over a durable :class:`PageStore`."""

    def __init__(self, store: PageStore, clock: SimClock | None = None,
                 model: DiskModel | None = None,
                 registry: MetricsRegistry | None = None):
        self.store = store
        self.clock = clock if clock is not None else SimClock()
        self.model = model if model is not None else DiskModel()
        self.stats = DiskStats()
        #: Pinned metrics registry; None follows the process-wide one.
        self.registry = registry
        self._obs_registry: MetricsRegistry | None = None
        self._obs_handles: tuple = ()

    def _obs(self) -> tuple:
        """Cached ``disk.*`` counter handles on the active registry."""
        registry = self.registry if self.registry is not None \
            else get_registry()
        if registry is not self._obs_registry:
            self._obs_registry = registry
            self._obs_handles = (
                registry.counter("disk.writes", backend="durable"),
                registry.counter("disk.bytes_written", backend="durable"),
                registry.counter("disk.reads", backend="durable"),
                registry.counter("disk.bytes_read", backend="durable"),
            )
        return self._obs_handles

    # ------------------------------------------------------------------
    # SimDisk interface
    # ------------------------------------------------------------------

    def write_page(self, volume: str, index: int, data: bytes,
                   page_size: int) -> float:
        """Durably write one page; returns the modeled elapsed seconds."""
        if len(data) > page_size:
            raise BackupError(
                f"page data of {len(data)} bytes exceeds page size {page_size}"
            )
        try:
            self.store.write_page(volume, index, data, page_size)
        except StoreError as error:
            raise BackupError(str(error)) from error
        elapsed = self.model.write_time(len(data))
        self.clock.advance(elapsed)
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        writes, bytes_written, _reads, _bytes_read = self._obs()
        writes.inc()
        bytes_written.inc(len(data))
        return elapsed

    def read_page(self, volume: str, index: int) -> bytes:
        """Read one page back; raises if it was never written."""
        try:
            data = self.store.read_page(volume, index)
        except StoreError as error:
            raise BackupError(str(error)) from error
        self.clock.advance(self.model.read_time(len(data)))
        self.stats.reads += 1
        self.stats.bytes_read += len(data)
        _writes, _bytes_written, reads, bytes_read = self._obs()
        reads.inc()
        bytes_read.inc(len(data))
        return data

    def has_page(self, volume: str, index: int) -> bool:
        """True if the page exists in the store."""
        return self.store.has_page(volume, index)

    def volume_pages(self, volume: str) -> list[int]:
        """Sorted page indices present for a volume."""
        return self.store.volume_pages(volume)

    def read_volume(self, volume: str) -> bytes:
        """Concatenate all pages of a volume in index order."""
        return b"".join(self.read_page(volume, index)
                        for index in self.volume_pages(volume))

    def corrupt_page(self, volume: str, index: int, position: int = 0,
                     xor: int = 0xFF) -> None:
        """Silently rot one materialized byte (fault injection).

        The warm signature state is deliberately left untouched: the
        certified signatures now disagree with the bytes, which is what
        a :meth:`~repro.store.pagestore.PageStore.scrub` detects.
        """
        state = self.store._require(volume)
        at = index * state.page_bytes + position
        if not 0 <= index < state.replica.page_count \
                or at >= len(state.replica.data):
            raise BackupError(
                f"page {index} of volume {volume!r} was never written"
            )
        state.replica.data[at] ^= xor
