"""Distributed string search through signatures (Sections 2.3, 5.2)."""

from .scan import (
    ScanResult,
    build_record_field,
    scan_naive,
    scan_with_karp_rabin,
    scan_with_signatures,
    scan_with_xor,
)

__all__ = [
    "ScanResult",
    "build_record_field",
    "scan_with_signatures",
    "scan_with_xor",
    "scan_with_karp_rabin",
    "scan_naive",
]
