"""Single-buffer search harness behind the E7 experiment (Section 5.2).

The paper's search experiment slides a signature window over 8000
records with a 60 B non-key field, placing the 3-byte needle in the
third-last record, and compares against a Karp-Rabin-style byte-XOR
scan.  These helpers reproduce that setup as pure functions over an
in-memory bucket of records; the *distributed* version (client sends
length + signature, servers return candidates) is
:meth:`repro.sdds.client.BaseSDDSClient.scan`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.karp_rabin import KarpRabinFingerprint, xor_fold_search
from ..errors import SDDSError
from ..sig.rolling import find_signature_matches
from ..sig.scheme import AlgebraicSignatureScheme


@dataclass(frozen=True, slots=True)
class ScanResult:
    """Records hit plus the work accounting of one scan."""

    record_indices: tuple[int, ...]
    candidates: int        #: signature hits before verification
    verified: int          #: exact matches after verification


def build_record_field(record_count: int, field_bytes: int, needle: bytes,
                       needle_record: int, seed: int = 0) -> list[bytes]:
    """The paper's workload: ``record_count`` non-key fields, one planted needle.

    Fields are ASCII letters (the paper's records are 1 B ASCII chars);
    the needle replaces the start of record ``needle_record``.
    """
    if not 0 <= needle_record < record_count:
        raise SDDSError("needle record index out of range")
    if len(needle) > field_bytes:
        raise SDDSError("needle longer than the record field")
    rng = np.random.default_rng(seed)
    letters = rng.integers(ord("a"), ord("z") + 1,
                           size=(record_count, field_bytes), dtype=np.uint8)
    fields = [row.tobytes() for row in letters]
    fields[needle_record] = needle + fields[needle_record][len(needle):]
    return fields


def scan_with_signatures(scheme: AlgebraicSignatureScheme, fields: list[bytes],
                         needle: bytes) -> ScanResult:
    """Signature scan over every record, client-side verification.

    Handles the GF(2^16) byte-alignment problem exactly as the SDDS
    client does: search the even-length core on both byte alignments,
    verify the full needle in candidate records.
    """
    if not needle:
        raise SDDSError("cannot scan for an empty pattern")
    if scheme.field.f == 16:
        core = needle if len(needle) % 2 == 0 else needle[:-1]
        if len(core) < 2:
            raise SDDSError("GF(2^16) scans need patterns of at least 2 bytes")
        window = len(core) // 2
        alignments = 2
    else:
        core, window, alignments = needle, len(needle), 1
    target = scheme.sign(core)
    hits = []
    candidates = 0
    for index, value in enumerate(fields):
        found = False
        for shift in range(alignments):
            symbols = scheme.signable_symbols(value[shift:])
            if window <= symbols.size and find_signature_matches(
                scheme, symbols, target, window
            ):
                found = True
                break
        if found:
            candidates += 1
            if needle in value:
                hits.append(index)
    return ScanResult(tuple(hits), candidates, len(hits))


def scan_with_xor(fields: list[bytes], needle: bytes) -> ScanResult:
    """The byte-XOR control scan of Section 5.2."""
    hits = []
    candidates = 0
    for index, value in enumerate(fields):
        matches = xor_fold_search(value, needle)
        if matches or _xor_candidates(value, needle):
            candidates += 1
        if matches:
            hits.append(index)
    return ScanResult(tuple(hits), candidates, len(hits))


def _xor_candidates(value: bytes, needle: bytes) -> bool:
    """Whether the XOR fold produced any (possibly false) window hit."""
    m = len(needle)
    if m == 0 or m > len(value):
        return False
    hay = np.frombuffer(value, dtype=np.uint8).astype(np.int64)
    prefix = np.zeros(hay.size + 1, dtype=np.int64)
    np.bitwise_xor.accumulate(hay, out=prefix[1:])
    window_folds = prefix[m:] ^ prefix[:-m]
    target = 0
    for byte in needle:
        target ^= byte
    return bool((window_folds == target).any())


def scan_with_karp_rabin(fields: list[bytes], needle: bytes) -> ScanResult:
    """Classic integer-modulus Karp-Rabin scan over every record."""
    kr = KarpRabinFingerprint()
    hits = [index for index, value in enumerate(fields) if kr.search(value, needle)]
    return ScanResult(tuple(hits), len(hits), len(hits))


def scan_naive(fields: list[bytes], needle: bytes) -> ScanResult:
    """Plain ``in`` scan -- ground truth for all the others."""
    hits = [index for index, value in enumerate(fields) if needle in value]
    return ScanResult(tuple(hits), len(hits), len(hits))
