"""Signature-sealed wire format for cluster RPCs.

Every cluster message travels as ``body || sig(body)`` where the seal is
the scheme's algebraic signature -- 4 bytes under the paper's production
GF(2^16), n = 2 scheme.  This is Proposition 2's economics applied to
the transport itself: a one-byte corruption changes at most one symbol,
well inside the n-symbol certain-detection bound, so a receiver
verifying the 4-byte seal rejects every single-byte wire corruption
with certainty instead of trusting the link.

Bodies are fixed little-endian layouts (no pickling -- corrupting a
byte must yield a *detected* bad message, never an exception in a
deserializer):

* request:  ``op(1) || request_id(8) || key(4) || value_len(4) || value``
* reply:    ``status(1) || request_id(8) || value_len(4) || value``
* mirror:   ``image_len(8) || page_index(4) || page bytes``
* delta:    ``image_len(8) || offset(8) || delta bytes`` -- a mirror
  patch carrying only ``before XOR after`` of a changed extent; the
  seal covers the frame, so corrupt deltas are dropped, not applied.

Cluster frames additionally carry a 16-byte **trace envelope** ahead of
the body -- ``trace_id(8) || span_id(8)``, the
:class:`~repro.obs.trace.TraceContext` of the operation the frame
belongs to -- so a receiving node parents its handling span under the
sender's span and per-operation trace trees assemble across nodes.
The envelope sits *inside* the seal: a corrupted trace id is a
detected bad frame like any other corruption, never a mis-filed span.
A zero trace id means "untraced" (the all-zero envelope is what
non-traced senders emit).
"""

from __future__ import annotations

import struct

from ..errors import ReproError
from ..obs.trace import TraceContext
from ..sig.scheme import AlgebraicSignatureScheme

# Operation codes (request ``op`` byte).
OP_INSERT = 1
OP_SEARCH = 2
OP_UPDATE = 3
OP_DELETE = 4

OP_NAMES = {OP_INSERT: "insert", OP_SEARCH: "search",
            OP_UPDATE: "update", OP_DELETE: "delete"}

# Status codes (reply ``status`` byte); mirror OperationStatus values.
ST_INSERTED = 1
ST_DUPLICATE = 2
ST_FOUND = 3
ST_MISSING = 4
ST_APPLIED = 5
ST_DELETED = 6
#: Overload rejection (PR 7): the node refused admission; the client
#: must back off and retry within its budget -- never treat as done.
ST_SHED = 7

ST_NAMES = {ST_INSERTED: "inserted", ST_DUPLICATE: "duplicate",
            ST_FOUND: "found", ST_MISSING: "missing",
            ST_APPLIED: "applied", ST_DELETED: "deleted",
            ST_SHED: "shed"}

_REQUEST = struct.Struct("<BQII")
_REPLY = struct.Struct("<BQI")
_MIRROR = struct.Struct("<QI")
_DELTA = struct.Struct("<QQ")
_TRACED = struct.Struct("<QQ")


class WireError(ReproError):
    """Malformed (but correctly signed) cluster message body."""


# ----------------------------------------------------------------------
# Sealing: the 4-byte integrity check on every message
# ----------------------------------------------------------------------

def seal(scheme: AlgebraicSignatureScheme,
         body: bytes | memoryview) -> bytes:
    """Append the body's algebraic signature.

    The body is signed as an in-place view (the batch engine's zero-copy
    lane) and lands exactly once, in the sealed output.
    """
    from ..sig.engine import get_batch_signer

    signature = get_batch_signer(scheme).sign_concat([body], strict=False)
    return b"".join((body, signature.to_bytes()))


def seal_many(scheme: AlgebraicSignatureScheme,
              bodies: list[bytes]) -> list[bytes]:
    """Seal many message bodies in one batched signing pass.

    Burst senders (mirror page shipping, anti-entropy rounds) sign all
    their outgoing payloads through the batch engine -- one 2-D kernel
    pass over a single symbol-aligned landing -- instead of one
    dispatch per message.  Each result is exactly ``seal(scheme, body)``.
    """
    from ..sig.engine import get_batch_signer

    signatures = get_batch_signer(scheme).sign_concat_many(
        [[body] for body in bodies], strict=False)
    return [b"".join((body, signature.to_bytes()))
            for body, signature in zip(bodies, signatures)]


def unseal(scheme: AlgebraicSignatureScheme,
           data: bytes | memoryview) -> bytes | memoryview | None:
    """Verify and strip the seal; ``None`` flags a corrupted transfer.

    Verification happens over views -- no intermediate body/tail slice
    copies.  ``bytes`` in, ``bytes`` out (the historical contract);
    ``memoryview`` in, ``memoryview`` out (fully zero-copy).
    """
    from ..sig.engine import get_batch_signer

    width = scheme.signature_bytes
    if len(data) < width:
        return None
    view = data if isinstance(data, memoryview) else memoryview(data)
    body_view = view[:-width]
    signature = get_batch_signer(scheme).sign_concat([body_view],
                                                     strict=False)
    if signature.to_bytes() != bytes(view[-width:]):
        return None
    if isinstance(data, memoryview):
        return body_view
    return data[:-width]


# ----------------------------------------------------------------------
# The trace envelope: causality propagation inside the seal
# ----------------------------------------------------------------------

def encode_traced(context: TraceContext | None,
                  body: bytes | memoryview) -> bytes:
    """Prepend the trace envelope (all-zero when ``context`` is None)."""
    if context is None:
        return b"".join((_TRACED.pack(0, 0), body))
    return b"".join((_TRACED.pack(context.trace_id, context.span_id), body))


def decode_traced(body: bytes) -> tuple[TraceContext | None, bytes]:
    """Split a sealed-and-verified frame body into (context, inner body).

    Returns ``None`` for the context when the envelope is all zero
    (an untraced sender).  Only call this on bodies that passed
    :func:`unseal` -- the envelope has no integrity of its own.
    """
    if len(body) < _TRACED.size:
        raise WireError("truncated trace envelope")
    trace_id, span_id = _TRACED.unpack_from(body)
    inner = body[_TRACED.size:]
    if trace_id == 0:
        return None, inner
    return TraceContext(trace_id, span_id), inner


# ----------------------------------------------------------------------
# Request / reply / mirror bodies
# ----------------------------------------------------------------------

def encode_request(op: int, request_id: int, key: int,
                   value: bytes | memoryview = b"") -> bytes:
    """Serialize one client request body."""
    if op not in OP_NAMES:
        raise WireError(f"unknown operation code {op}")
    return b"".join((_REQUEST.pack(op, request_id, key, len(value)), value))


def decode_request(body: bytes) -> tuple[int, int, int, bytes]:
    """Inverse of :func:`encode_request`: (op, request_id, key, value)."""
    if len(body) < _REQUEST.size:
        raise WireError("truncated request body")
    op, request_id, key, value_len = _REQUEST.unpack_from(body)
    value = body[_REQUEST.size:]
    if op not in OP_NAMES or len(value) != value_len:
        raise WireError("inconsistent request body")
    return op, request_id, key, value


def encode_reply(status: int, request_id: int,
                 value: bytes | memoryview = b"") -> bytes:
    """Serialize one server reply body."""
    if status not in ST_NAMES:
        raise WireError(f"unknown status code {status}")
    return b"".join((_REPLY.pack(status, request_id, len(value)), value))


def decode_reply(body: bytes) -> tuple[int, int, bytes]:
    """Inverse of :func:`encode_reply`: (status, request_id, value)."""
    if len(body) < _REPLY.size:
        raise WireError("truncated reply body")
    status, request_id, value_len = _REPLY.unpack_from(body)
    value = body[_REPLY.size:]
    if status not in ST_NAMES or len(value) != value_len:
        raise WireError("inconsistent reply body")
    return status, request_id, value


def encode_mirror(image_len: int, page_index: int,
                  page: bytes | memoryview) -> bytes:
    """Serialize one best-effort mirror page update."""
    return b"".join((_MIRROR.pack(image_len, page_index), page))


def decode_mirror(body: bytes) -> tuple[int, int, bytes]:
    """Inverse of :func:`encode_mirror`: (image_len, page_index, page)."""
    if len(body) < _MIRROR.size:
        raise WireError("truncated mirror body")
    image_len, page_index = _MIRROR.unpack_from(body)
    return image_len, page_index, body[_MIRROR.size:]


def encode_delta(image_len: int, offset: int,
                 delta: bytes | memoryview) -> bytes:
    """Serialize one best-effort mirror *delta* patch.

    ``delta`` is ``before XOR after`` for the changed byte extent at
    ``offset`` -- typically a few symbols instead of a whole page.  The
    frame is sealed like every other message, and the seal is computed
    over the delta content itself, so the receiver applies a patch only
    when its ``sig(delta)`` verifies (a corrupted patch is certainly
    detected for <= n corrupted symbols, Proposition 1).
    """
    return b"".join((_DELTA.pack(image_len, offset), delta))


def decode_delta(body: bytes) -> tuple[int, int, bytes]:
    """Inverse of :func:`encode_delta`: (image_len, offset, delta)."""
    if len(body) < _DELTA.size:
        raise WireError("truncated delta body")
    image_len, offset = _DELTA.unpack_from(body)
    return image_len, offset, body[_DELTA.size:]
