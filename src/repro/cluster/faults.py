"""Seeded fault plans: what goes wrong, where, and when.

The fault taxonomy the SDDS cluster runtime injects -- the adversity
against which the paper's signatures earn their keep -- all
deterministic functions of a run seed:

* **link faults** (:class:`LinkFaults`) -- per-link probabilities for
  message drop, duplication, payload byte-corruption, delay jitter, and
  explicit reordering (an extra hold-back delay letting later messages
  overtake);
* **partitions** (:class:`Partition`) -- node groups that cannot reach
  each other during ``[start, heal_at)``; partitions heal at a
  scheduled time rather than lingering forever;
* **crashes** (:class:`Crash`) -- a node loses its volatile state at
  ``at`` and begins recovery at ``recover_at``.

:class:`FaultPlan` bundles the three and hands out per-link policies;
the per-link random streams themselves live in
:class:`~repro.cluster.network.FaultyNetwork`, seeded from the plan's
run seed plus the link name so that adding a link never perturbs the
draws of another.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Fault probabilities and delay noise for one directed link."""

    drop: float = 0.0        #: P(message silently lost)
    duplicate: float = 0.0   #: P(message delivered twice)
    corrupt: float = 0.0     #: P(one payload byte flipped in transit)
    jitter: float = 0.0      #: max uniform extra delay (s)
    reorder: float = 0.0     #: P(held back by ``reorder_delay``)
    reorder_delay: float = 2e-3  #: hold-back applied on a reorder hit (s)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability {value} outside [0, 1]")
        if self.jitter < 0 or self.reorder_delay < 0:
            raise ValueError("delays cannot be negative")

    @property
    def is_clean(self) -> bool:
        """True when this link never misbehaves (the fast path)."""
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.corrupt == 0.0 and self.jitter == 0.0
                and self.reorder == 0.0)


@dataclass(frozen=True, slots=True)
class Partition:
    """Node groups mutually unreachable during ``[start, heal_at)``.

    Nodes absent from every group form one implicit extra group, so a
    two-way split needs only the minority side spelled out.
    """

    start: float
    heal_at: float
    groups: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if self.heal_at <= self.start:
            raise ValueError("partition must heal after it starts")

    def _group_of(self, node: str) -> int:
        for index, group in enumerate(self.groups):
            if node in group:
                return index
        return -1

    def severs(self, now: float, a: str, b: str) -> bool:
        """True when the partition blocks ``a -> b`` traffic at ``now``."""
        if not self.start <= now < self.heal_at:
            return False
        return self._group_of(a) != self._group_of(b)


@dataclass(frozen=True, slots=True)
class Crash:
    """One scheduled node failure: volatile state lost at ``at``."""

    node: str
    at: float
    recover_at: float

    def __post_init__(self) -> None:
        if self.recover_at <= self.at:
            raise ValueError("a crash must recover after it happens")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one cluster run."""

    default: LinkFaults = field(default_factory=LinkFaults)
    #: Per-directed-link overrides, keyed by (source, destination).
    links: dict = field(default_factory=dict)
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[Crash, ...] = ()

    def link(self, source: str, destination: str) -> LinkFaults:
        """The fault policy governing ``source -> destination``."""
        return self.links.get((source, destination), self.default)

    def severed(self, now: float, source: str, destination: str) -> bool:
        """True when any partition blocks the link at ``now``."""
        return any(p.severs(now, source, destination)
                   for p in self.partitions)

    @classmethod
    def lossy(cls, drop: float = 0.1, corrupt: float = 0.001,
              jitter: float = 200e-6, duplicate: float = 0.0,
              reorder: float = 0.0) -> "FaultPlan":
        """The acceptance-scenario plan: every link equally unreliable."""
        return cls(default=LinkFaults(
            drop=drop, duplicate=duplicate, corrupt=corrupt,
            jitter=jitter, reorder=reorder,
        ))
