"""Fault-injecting cluster runtime: the SDDS under real adversity.

The rest of the reproduction runs on a perfectly reliable, synchronous
network, so the paper's detection machinery never fires in anger.  This
package supplies the adversity: a deterministic event loop over the
simulated clock, an unreliable network injecting seeded drops,
duplicates, reorderings, delay jitter, byte corruption, and healing
partitions, retry/timeout policies on the client paths, and a node
lifecycle where crashes trigger LH*RS parity reconstruction and
signature-tree anti-entropy -- the algebraic signatures catching every
corrupted transfer and localizing every diverged page, exactly the role
the paper assigns them.
"""

from .events import EventError, EventLoop, Timer
from .faults import Crash, FaultPlan, LinkFaults, Partition
from .network import FaultyNetwork
from .node import ClusterNode, NodeState, deserialize_bucket, serialize_bucket
from .retry import OpBudget, RetryExhaustedError, RetryPolicy
from .runtime import Cluster, ClusterClient, ClusterError, ClusterResult

__all__ = [
    "EventLoop",
    "EventError",
    "Timer",
    "LinkFaults",
    "Partition",
    "Crash",
    "FaultPlan",
    "FaultyNetwork",
    "RetryPolicy",
    "OpBudget",
    "RetryExhaustedError",
    "ClusterNode",
    "NodeState",
    "serialize_bucket",
    "deserialize_bucket",
    "Cluster",
    "ClusterClient",
    "ClusterError",
    "ClusterResult",
]
