"""Timeout and retry policy for cluster RPCs.

An SDDS operation on an unreliable network is a loop: send, wait up to
a timeout, retry with exponential backoff (plus deterministic jitter so
synchronized clients do not stampede a recovering server), give up
after a capped number of attempts.  The policy object is pure
arithmetic -- the event loop does the waiting -- so the timeout ladder
is unit-testable and identical across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ReproError


class RetryExhaustedError(ReproError):
    """Every attempt of an operation timed out."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with proportional jitter."""

    timeout: float = 5e-3       #: first-attempt timeout (s)
    backoff: float = 2.0        #: timeout multiplier per retry
    max_timeout: float = 0.25   #: ceiling on any single attempt (s)
    max_attempts: int = 8       #: total tries before giving up
    jitter: float = 0.1         #: extra fraction of the timeout, in [0, j)

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.max_timeout < self.timeout:
            raise ValueError("need 0 < timeout <= max_timeout")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter fraction outside [0, 1]")

    def timeout_for(self, attempt: int,
                    rng: random.Random | None = None) -> float:
        """Seconds to wait on the ``attempt``-th try (0-based)."""
        if attempt < 0:
            raise ValueError("attempt index cannot be negative")
        base = min(self.timeout * self.backoff ** attempt, self.max_timeout)
        if rng is None or not self.jitter:
            return base
        return base * (1.0 + self.jitter * rng.random())

    @classmethod
    def patient(cls, max_attempts: int = 25) -> "RetryPolicy":
        """A high-cap policy for adversarial fault plans (tests)."""
        return cls(timeout=5e-3, backoff=1.6, max_timeout=0.1,
                   max_attempts=max_attempts)
