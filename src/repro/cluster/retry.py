"""Timeout and retry policy for cluster RPCs.

An SDDS operation on an unreliable network is a loop: send, wait up to
a timeout, retry with exponential backoff (plus deterministic jitter so
synchronized clients do not stampede a recovering server), give up
after a capped number of attempts.  The policy object is pure
arithmetic -- the event loop does the waiting -- so the timeout ladder
is unit-testable and identical across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ReproError


class RetryExhaustedError(ReproError):
    """Every attempt of an operation timed out."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Capped exponential backoff with proportional jitter.

    Two optional overload-protection knobs (PR 7):

    * ``budget`` caps the number of *sends* per logical operation,
      independently of ``max_attempts``.  Timeouts and ``SHED``
      rejections both consume it, so a shedding cluster sees at most
      ``budget`` copies of an operation -- retries cannot amplify the
      very overload that caused the shedding.
    * ``op_deadline`` bounds the whole operation in simulated seconds;
      each attempt's wait is clamped to the time remaining, and no new
      attempt starts past the deadline.
    """

    timeout: float = 5e-3       #: first-attempt timeout (s)
    backoff: float = 2.0        #: timeout multiplier per retry
    max_timeout: float = 0.25   #: ceiling on any single attempt (s)
    max_attempts: int = 8       #: total tries before giving up
    jitter: float = 0.1         #: extra fraction of the timeout, in [0, j)
    budget: int | None = None   #: cap on sends per operation (None = off)
    op_deadline: float | None = None  #: whole-operation bound (s, None = off)

    def __post_init__(self) -> None:
        if self.timeout <= 0 or self.max_timeout < self.timeout:
            raise ValueError("need 0 < timeout <= max_timeout")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter fraction outside [0, 1]")
        if self.budget is not None and self.budget < 1:
            raise ValueError("retry budget must allow at least one send")
        if self.op_deadline is not None and self.op_deadline <= 0:
            raise ValueError("operation deadline must be positive")

    def timeout_for(self, attempt: int,
                    rng: random.Random | None = None) -> float:
        """Seconds to wait on the ``attempt``-th try (0-based)."""
        if attempt < 0:
            raise ValueError("attempt index cannot be negative")
        base = min(self.timeout * self.backoff ** attempt, self.max_timeout)
        if rng is None or not self.jitter:
            return base
        return base * (1.0 + self.jitter * rng.random())

    def begin(self, now: float) -> "OpBudget":
        """Open one operation's attempt ledger at simulated time ``now``."""
        allowed = self.max_attempts if self.budget is None \
            else min(self.budget, self.max_attempts)
        deadline = float("inf") if self.op_deadline is None \
            else now + self.op_deadline
        return OpBudget(self, allowed, deadline)

    @classmethod
    def patient(cls, max_attempts: int = 25) -> "RetryPolicy":
        """A high-cap policy for adversarial fault plans (tests)."""
        return cls(timeout=5e-3, backoff=1.6, max_timeout=0.1,
                   max_attempts=max_attempts)


class OpBudget:
    """The per-operation send ledger :meth:`RetryPolicy.begin` opens.

    Every transmission -- first try, timeout retry, or post-``SHED``
    retry -- must pass :meth:`allow` and then :meth:`spend`.  The
    ledger is the overload-control invariant: no operation puts more
    than ``budget`` frames on the wire or outlives ``op_deadline``.
    """

    __slots__ = ("policy", "allowed", "deadline", "spent")

    def __init__(self, policy: RetryPolicy, allowed: int, deadline: float):
        self.policy = policy
        self.allowed = allowed
        self.deadline = deadline
        self.spent = 0

    def allow(self, now: float) -> bool:
        """True while another send fits the budget and the deadline."""
        return self.spent < self.allowed and now < self.deadline

    def spend(self) -> int:
        """Record one send; returns its 0-based attempt index."""
        if self.spent >= self.allowed:
            raise ReproError("retry budget exhausted")
        attempt = self.spent
        self.spent += 1
        return attempt

    def attempt_timeout(self, attempt: int, rng: random.Random | None,
                        now: float) -> float:
        """The backoff ladder's wait, clamped to the time remaining."""
        wait = self.policy.timeout_for(attempt, rng)
        if self.deadline != float("inf"):
            wait = min(wait, max(self.deadline - now, 1e-9))
        return wait
