"""One cluster node: SDDS bucket, bucket image, hosted mirror, lifecycle.

A :class:`ClusterNode` owns three things:

* an :class:`~repro.sdds.server.SDDSServer` bucket holding the records
  whose keys hash to it -- the primary copy clients talk to;
* a page-image :class:`~repro.sync.Replica` of that bucket (the
  serialized record set), whose changed pages are shipped *best effort*
  to the next node's hosted mirror after every mutation -- lost or
  corrupted mirror updates are exactly the divergence the anti-entropy
  pass later detects and repairs by signature;
* the **hosted mirror**: the previous node's bucket image, kept so a
  crashed neighbour's state survives somewhere.

The node lifecycle is ``UP -> CRASHED -> RECOVERING -> UP``: a crash
wipes every volatile structure (bucket, image, mirror, RPC reply
cache); recovery is driven by the cluster runtime, which reconstructs
the bucket from the LH*RS parity group and re-converges both mirror
relationships with :func:`repro.sync.sync_by_tree`.

RPC handling is at-least-once with replay: requests are deduplicated by
``request_id`` and answered from a reply cache, so a retried operation
whose first attempt *did* execute returns its original answer instead
of executing twice.  Every incoming payload is signature-verified
before anything else -- a corrupted transfer is counted and discarded,
never half-parsed.
"""

from __future__ import annotations

import struct
from enum import Enum

from ..obs import get_registry
from ..sdds.record import Record
from ..sdds.server import SDDSServer
from ..sig.scheme import AlgebraicSignatureScheme
from ..sync import Replica
from . import wire

#: Bucket-image header: record count.  Keeps the image non-empty for
#: signature-tree building and makes truncation corruption detectable.
_IMAGE_HEADER = struct.Struct("<Q")
_RECORD_HEADER = struct.Struct("<II")  # value length, key

#: Message kinds on the cluster wire (TrafficStats / net.* categories).
REQUEST_KINDS = {wire.OP_INSERT: "c_insert", wire.OP_SEARCH: "c_search",
                 wire.OP_UPDATE: "c_update", wire.OP_DELETE: "c_delete"}
REPLY_KIND = "c_reply"
MIRROR_KIND = "c_mirror_page"


class NodeState(Enum):
    """Lifecycle state of a cluster node."""

    UP = "up"
    CRASHED = "crashed"
    RECOVERING = "recovering"


def serialize_bucket(server: SDDSServer) -> bytes:
    """The node's bucket as a canonical byte image (sorted by key)."""
    parts = []
    count = 0
    for key in sorted(server.bucket.keys()):
        record = server.bucket.get(key)
        parts.append(_RECORD_HEADER.pack(len(record.value), record.key))
        parts.append(record.value)
        count += 1
    return _IMAGE_HEADER.pack(count) + b"".join(parts)


def deserialize_bucket(image: bytes) -> list[Record]:
    """Inverse of :func:`serialize_bucket`."""
    count, = _IMAGE_HEADER.unpack_from(image)
    offset = _IMAGE_HEADER.size
    records = []
    for _ in range(count):
        value_len, key = _RECORD_HEADER.unpack_from(image, offset)
        offset += _RECORD_HEADER.size
        records.append(Record(key, image[offset:offset + value_len]))
        offset += value_len
    return records


class ClusterNode:
    """One server node of the fault-injected cluster."""

    def __init__(self, index: int, cluster, scheme: AlgebraicSignatureScheme,
                 page_bytes: int, capacity_records: int = 1 << 20):
        self.index = index
        self.cluster = cluster
        self.scheme = scheme
        self.page_bytes = page_bytes
        self.capacity_records = capacity_records
        self.state = NodeState.UP
        self.server = SDDSServer(index, scheme,
                                 capacity_records=capacity_records,
                                 store_signatures=True)
        self.image = Replica(f"{self.name}.image", scheme,
                             serialize_bucket(self.server), page_bytes)
        #: Hosted copy of the previous node's bucket image.
        self.mirror: Replica | None = None
        #: request_id -> sealed reply bytes (at-least-once replay).
        self._reply_cache: dict[int, bytes] = {}

    @property
    def name(self) -> str:
        """Network node name."""
        return f"node{self.index}"

    @property
    def is_up(self) -> bool:
        """True when the node serves traffic."""
        return self.state is NodeState.UP

    def make_mirror(self, source_name: str, data: bytes = b"") -> Replica:
        """(Re)create the hosted mirror replica, initially ``data``."""
        self.mirror = Replica(f"{self.name}.mirror[{source_name}]",
                              self.scheme, data or _IMAGE_HEADER.pack(0),
                              self.page_bytes)
        return self.mirror

    # ------------------------------------------------------------------
    # RPC handling
    # ------------------------------------------------------------------

    def receive_request(self, data: bytes) -> None:
        """Handle one delivered client request payload."""
        body = wire.unseal(self.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="request").inc()
            return
        if not self.is_up:
            registry.counter("cluster.down_drops", node=self.name).inc()
            return
        op, request_id, key, value = wire.decode_request(body)
        cached = self._reply_cache.get(request_id)
        if cached is None:
            status, reply_value = self._execute(op, key, value)
            reply = wire.encode_reply(status, request_id, reply_value)
            cached = wire.seal(self.scheme, reply)
            self._reply_cache[request_id] = cached
        else:
            registry.counter("cluster.rpc_replays", node=self.name).inc()
        client = self.cluster.client_for_request(request_id)
        self.cluster.faulty_network.transmit(
            self.name, client.name, REPLY_KIND, cached, client.receive_reply
        )

    def _execute(self, op: int, key: int, value: bytes) -> tuple[int, bytes]:
        """Apply one operation to bucket + parity; returns (status, value)."""
        if op == wire.OP_SEARCH:
            record = self.server.search(key)
            if record is None:
                return wire.ST_MISSING, b""
            return wire.ST_FOUND, record.value
        before = self.image_bytes()
        if op == wire.OP_INSERT:
            ok = self.server.insert(Record(key, value))
            if not ok:
                return wire.ST_DUPLICATE, b""
            self.cluster.parity.insert(key, value)
            status: tuple[int, bytes] = (wire.ST_INSERTED, b"")
        elif op == wire.OP_UPDATE:
            current = self.server.search(key)
            if current is None:
                return wire.ST_MISSING, b""
            # Pseudo-update filtering at the server (Section 2.2's
            # economics): identical signatures mean nothing to write,
            # no parity delta, no mirror traffic.
            if self.scheme.sign(current.value, strict=False) == \
                    self.scheme.sign(value, strict=False):
                get_registry().counter("cluster.pseudo_updates").inc()
                return wire.ST_APPLIED, b""
            self.server.bucket.update(key, value)
            self.cluster.parity.update(key, value)
            status = (wire.ST_APPLIED, b"")
        elif op == wire.OP_DELETE:
            record = self.server.delete(key)
            if record is None:
                return wire.ST_MISSING, b""
            self.cluster.parity.delete(key)
            status = (wire.ST_DELETED, b"")
        else:
            raise wire.WireError(f"unroutable operation {op}")
        self.refresh_image(send_mirror_updates=True, previous=before)
        return status

    # ------------------------------------------------------------------
    # Bucket image and mirror shipping
    # ------------------------------------------------------------------

    def image_bytes(self) -> bytes:
        """The current bucket image bytes."""
        return bytes(self.image.data)

    def refresh_image(self, send_mirror_updates: bool = False,
                      previous: bytes | None = None) -> None:
        """Re-serialize the bucket; optionally ship changed pages.

        Mirror updates are *best effort*: they ride the faulty network
        with no retry, so drops and detected corruptions leave the
        mirror stale until the next anti-entropy pass.
        """
        if previous is None:
            previous = self.image_bytes()
        current = serialize_bucket(self.server)
        self.image.data[:] = current
        if not send_mirror_updates or current == previous:
            return
        host = self.cluster.mirror_host(self.index)
        pages = max(len(current), len(previous))
        pages = (pages + self.page_bytes - 1) // self.page_bytes
        bodies = []
        for index in range(pages):
            lo, hi = index * self.page_bytes, (index + 1) * self.page_bytes
            if current[lo:hi] == previous[lo:hi]:
                continue
            bodies.append(wire.encode_mirror(len(current), index,
                                             current[lo:hi]))
        if not bodies:
            return
        # One batched signing pass seals the whole burst of page updates.
        for sealed in wire.seal_many(self.scheme, bodies):
            self.cluster.faulty_network.transmit(
                self.name, host.name, MIRROR_KIND, sealed,
                host.receive_mirror,
            )
        get_registry().counter("cluster.mirror_pages",
                               source=self.name).inc(len(bodies))

    def receive_mirror(self, data: bytes) -> None:
        """Apply one delivered mirror page update to the hosted mirror."""
        body = wire.unseal(self.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="mirror").inc()
            return
        if not self.is_up or self.mirror is None:
            registry.counter("cluster.down_drops", node=self.name).inc()
            return
        image_len, page_index, page = wire.decode_mirror(body)
        self.mirror.write_page(page_index, page)
        if len(self.mirror.data) > image_len:
            del self.mirror.data[image_len:]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; traffic is dropped until recovery."""
        self.state = NodeState.CRASHED
        self.server = SDDSServer(self.index, self.scheme,
                                 capacity_records=self.capacity_records,
                                 store_signatures=True)
        self.image = Replica(f"{self.name}.image", self.scheme,
                             serialize_bucket(self.server), self.page_bytes)
        self.mirror = None
        self._reply_cache.clear()

    def rebuild_from(self, records: list[Record]) -> None:
        """Repopulate the bucket (recovery path); refreshes the image."""
        for record in records:
            self.server.insert(record)
        self.refresh_image()
