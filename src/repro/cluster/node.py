"""One cluster node: SDDS bucket, bucket image, hosted mirror, lifecycle.

A :class:`ClusterNode` owns three things:

* an :class:`~repro.sdds.server.SDDSServer` bucket holding the records
  whose keys hash to it -- the primary copy clients talk to;
* a page-image :class:`~repro.sync.Replica` of that bucket (the
  serialized record set), whose changed pages are shipped *best effort*
  to the next node's hosted mirror after every mutation -- lost or
  corrupted mirror updates are exactly the divergence the anti-entropy
  pass later detects and repairs by signature;
* the **hosted mirror**: the previous node's bucket image, kept so a
  crashed neighbour's state survives somewhere.

The node lifecycle is ``UP -> CRASHED -> RECOVERING -> UP``: a crash
wipes every volatile structure (bucket, image, mirror, RPC reply
cache); recovery is driven by the cluster runtime, which reconstructs
the bucket from the LH*RS parity group and re-converges both mirror
relationships with :func:`repro.sync.sync_by_tree`.

RPC handling is at-least-once with replay: requests are deduplicated by
``request_id`` and answered from a reply cache, so a retried operation
whose first attempt *did* execute returns its original answer instead
of executing twice.  Every incoming payload is signature-verified
before anything else -- a corrupted transfer is counted and discarded,
never half-parsed.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from enum import Enum

from pathlib import Path

from ..obs import activate, get_registry, span_if_active
from ..obs.trace import TraceContext
from ..sdds.record import Record
from ..sdds.server import SDDSServer
from ..sig.scheme import AlgebraicSignatureScheme
from ..store.pagestore import PageStore
from ..sync import Replica
from . import wire

#: Bucket-image header: record count.  Keeps the image non-empty for
#: signature-tree building and makes truncation corruption detectable.
_IMAGE_HEADER = struct.Struct("<Q")
_RECORD_HEADER = struct.Struct("<II")  # value length, key

#: Message kinds on the cluster wire (TrafficStats / net.* categories).
REQUEST_KINDS = {wire.OP_INSERT: "c_insert", wire.OP_SEARCH: "c_search",
                 wire.OP_UPDATE: "c_update", wire.OP_DELETE: "c_delete"}
REPLY_KIND = "c_reply"
MIRROR_KIND = "c_mirror_page"
DELTA_KIND = "c_mirror_delta"


class NodeState(Enum):
    """Lifecycle state of a cluster node."""

    UP = "up"
    CRASHED = "crashed"
    RECOVERING = "recovering"


def serialize_bucket(server: SDDSServer) -> bytes:
    """The node's bucket as a canonical byte image (sorted by key)."""
    parts = []
    count = 0
    for key in sorted(server.bucket.keys()):
        record = server.bucket.get(key)
        parts.append(_RECORD_HEADER.pack(len(record.value), record.key))
        parts.append(record.value)
        count += 1
    return _IMAGE_HEADER.pack(count) + b"".join(parts)


def deserialize_bucket(image: bytes) -> list[Record]:
    """Inverse of :func:`serialize_bucket`."""
    count, = _IMAGE_HEADER.unpack_from(image)
    offset = _IMAGE_HEADER.size
    records = []
    for _ in range(count):
        value_len, key = _RECORD_HEADER.unpack_from(image, offset)
        offset += _RECORD_HEADER.size
        records.append(Record(key, image[offset:offset + value_len]))
        offset += value_len
    return records


class ClusterNode:
    """One server node of the fault-injected cluster."""

    def __init__(self, index: int, cluster, scheme: AlgebraicSignatureScheme,
                 page_bytes: int, capacity_records: int = 1 << 20,
                 policy: "ServicePolicy | None" = None):
        self.index = index
        self.cluster = cluster
        self.scheme = scheme
        self.page_bytes = page_bytes
        self.capacity_records = capacity_records
        self.state = NodeState.UP
        self.server = SDDSServer(index, scheme,
                                 capacity_records=capacity_records,
                                 store_signatures=True)
        #: Request admission and queueing (PR 7).  The default policy
        #: is *inline* -- synchronous execution at delivery, the
        #: original node semantics -- while a queued policy turns this
        #: node into a modelled single-CPU server with a bounded inbox
        #: that sheds overload with explicit ``SHED`` replies.
        self.policy = policy if policy is not None else ServicePolicy()
        self.service = RequestService(self.name, cluster.loop, self.policy,
                                      execute=self._service_execute,
                                      shed=self._service_shed)
        self.image = Replica(f"{self.name}.image", scheme,
                             serialize_bucket(self.server), page_bytes)
        #: Hosted copy of the previous node's bucket image.
        self.mirror: Replica | None = None
        #: request_id -> sealed reply bytes (at-least-once replay).
        self._reply_cache: dict[int, bytes] = {}
        #: request ids queued or executing (duplicate suppression for
        #: queued policies; always empty between events when inline).
        self._inflight: set[int] = set()
        #: Durable backend (PR 5): when attached, every image extent is
        #: also appended to a sealed local log that survives crashes.
        self.store: PageStore | None = None
        self.store_dir: Path | None = None

    #: Store volume name holding the node's bucket image.
    IMAGE_VOLUME = "image"

    def attach_store(self, store: PageStore) -> None:
        """Adopt a durable page store; seeds it with the current image."""
        self.store = store
        self.store_dir = store.directory
        store.write_image(self.IMAGE_VOLUME, self.image_bytes(),
                          self.page_bytes)

    @property
    def name(self) -> str:
        """Network node name."""
        return f"node{self.index}"

    @property
    def is_up(self) -> bool:
        """True when the node serves traffic."""
        return self.state is NodeState.UP

    def make_mirror(self, source_name: str, data: bytes = b"") -> Replica:
        """(Re)create the hosted mirror replica, initially ``data``."""
        self.mirror = Replica(f"{self.name}.mirror[{source_name}]",
                              self.scheme, data or _IMAGE_HEADER.pack(0),
                              self.page_bytes)
        return self.mirror

    # ------------------------------------------------------------------
    # RPC handling
    # ------------------------------------------------------------------

    @contextmanager
    def _traced(self, name: str, context: TraceContext | None, **labels):
        # Child span parented on the *frame's* context -- never the
        # ambient stack, which may belong to a different operation when
        # a duplicated or late frame arrives mid-handling.  Yields None
        # untraced, so callers work with or without an envelope.
        if context is None:
            yield None
            return
        traces = self.cluster.traces
        with activate(traces), \
                traces.child(name, context, node=self.name, **labels) as span:
            yield span

    def receive_request(self, data: bytes) -> None:
        """Handle one delivered client request payload."""
        body = wire.unseal(self.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="request").inc()
            self.cluster.report_seal_failure(self.name, "request", data)
            return
        recorder = self.cluster.recorder_for(self.name)
        if recorder is not None:
            recorder.record_frame("recv", "request", "", data)
        if not self.is_up:
            registry.counter("cluster.down_drops", node=self.name).inc()
            return
        context, inner = wire.decode_traced(body)
        op, request_id, key, value = wire.decode_request(inner)
        op_name = wire.OP_NAMES[op]
        cached = self._reply_cache.get(request_id)
        if cached is not None:
            registry.counter("cluster.rpc_replays", node=self.name).inc()
            with self._traced(f"node.replay.{op_name}", context,
                              key=str(key)):
                pass
            self._transmit_reply(request_id, cached)
            return
        if request_id in self._inflight:
            # Only possible under a queued policy: a retransmit raced
            # the queue.  The queued copy will answer; re-queueing the
            # duplicate would amplify the backlog the retry is fleeing.
            registry.counter("cluster.rpc_inflight_dups",
                             node=self.name).inc()
            return
        request = ServeRequest(op, key, value,
                               read=(op == wire.OP_SEARCH),
                               meta=(context, request_id))
        self._inflight.add(request_id)
        self.service.offer(request)

    def _service_execute(self, request: "ServeRequest") -> None:
        """Service completion callback: execute, reply, cache, answer."""
        context, request_id = request.meta
        if not self.is_up:
            # A queued request completing after a crash: the volatile
            # state it targeted is gone; drop like any in-flight frame.
            get_registry().counter("cluster.down_drops",
                                   node=self.name).inc()
            for member in (request, *request.riders):
                self._inflight.discard(member.meta[1])
            return
        op, key = request.op, request.key
        op_name = wire.OP_NAMES[op]
        with self._traced(f"node.handle.{op_name}", context,
                          key=str(key)) as span:
            status, reply_value = self._execute(op, key, request.value)
            if span is not None:
                span.event("executed", status=wire.ST_NAMES[status])
        reply_context = None if span is None else span.context
        for member in (request, *request.riders):
            _member_context, member_id = member.meta
            self._inflight.discard(member_id)
            reply = wire.encode_traced(
                reply_context, wire.encode_reply(status, member_id,
                                                 reply_value)
            )
            cached = wire.seal(self.scheme, reply)
            self._reply_cache[member_id] = cached
            self._transmit_reply(member_id, cached)

    def _service_shed(self, request: "ServeRequest", reason: str) -> None:
        """Admission refused: explicit SHED reply, never cached."""
        _context, request_id = request.meta
        self._inflight.discard(request_id)
        get_registry().counter("cluster.sheds", node=self.name,
                               reason=reason).inc()
        reply = wire.encode_traced(
            None, wire.encode_reply(wire.ST_SHED, request_id))
        self._transmit_reply(request_id, wire.seal(self.scheme, reply))

    def _transmit_reply(self, request_id: int, sealed: bytes) -> None:
        client = self.cluster.client_for_request(request_id)
        recorder = self.cluster.recorder_for(self.name)
        if recorder is not None:
            recorder.record_frame("send", "reply", client.name, sealed)
        self.cluster.faulty_network.transmit(
            self.name, client.name, REPLY_KIND, sealed, client.receive_reply
        )

    def _execute(self, op: int, key: int, value: bytes) -> tuple[int, bytes]:
        """Apply one operation to bucket + parity; returns (status, value)."""
        if op == wire.OP_SEARCH:
            status, reply_value, _effect = apply_operation(
                self.server, self.scheme, op, key, value)
            return status, reply_value
        before = self.image_bytes()
        status, reply_value, effect = apply_operation(
            self.server, self.scheme, op, key, value)
        if effect == EFFECT_PSEUDO:
            get_registry().counter("cluster.pseudo_updates").inc()
            return status, reply_value
        if effect == EFFECT_NONE:
            return status, reply_value
        if effect == EFFECT_INSERT:
            self.cluster.parity.insert(key, value)
        elif effect == EFFECT_UPDATE:
            self.cluster.parity.update(key, value)
        else:
            self.cluster.parity.delete(key)
        self.refresh_image(send_mirror_updates=True, previous=before)
        return status, reply_value

    # ------------------------------------------------------------------
    # Bucket image and mirror shipping
    # ------------------------------------------------------------------

    def image_bytes(self) -> bytes:
        """The current bucket image bytes."""
        return bytes(self.image.data)

    def _changed_extents(self, previous: bytes,
                         current: bytes) -> list[tuple[int, int]]:
        """Symbol-aligned byte extents where the two images differ.

        Computed page by page (bounding the extent scan to dirty pages);
        within a differing page the extent brackets the first and last
        differing byte, expanded to symbol boundaries.  Bytes past the
        shorter image count as differing.
        """
        from ..sig.incremental import aligned_span

        symbol_bytes = self.scheme.scheme_id.symbol_bytes
        longest = max(len(previous), len(current))
        extents: list[tuple[int, int]] = []
        page_bytes = self.page_bytes
        for lo in range(0, longest, page_bytes):
            hi = min(lo + page_bytes, longest)
            old_page = previous[lo:hi]
            new_page = current[lo:hi]
            if old_page == new_page:
                continue
            span = max(len(old_page), len(new_page))
            first = next(
                i for i in range(span)
                if (old_page[i:i + 1] or None) != (new_page[i:i + 1] or None)
            )
            last = next(
                i for i in range(span - 1, -1, -1)
                if (old_page[i:i + 1] or None) != (new_page[i:i + 1] or None)
            )
            a, b = aligned_span(lo + first, last - first + 1, symbol_bytes)
            extents.append((a, min(b, lo + span)))
        return extents

    def refresh_image(self, send_mirror_updates: bool = False,
                      previous: bytes | None = None) -> None:
        """Re-serialize the bucket; optionally ship the changed extents.

        The image replica is updated through journaled extent writes --
        O(|changed bytes|) signature work to keep its warm map current,
        never a whole-buffer rewrite.  Mirror updates ship as sealed
        ``(offset, delta, sig)`` frames carrying ``before XOR after`` of
        each extent, *best effort*: they ride the faulty network with no
        retry, so drops and detected corruptions leave the mirror stale
        until the next anti-entropy pass.
        """
        if previous is None:
            previous = self.image_bytes()
        current = serialize_bucket(self.server)
        extents = self._changed_extents(previous, current)
        for lo, hi in extents:
            if lo < len(current):
                self.image.write_at(lo, current[lo:min(hi, len(current))])
        if len(current) < len(self.image.data):
            self.image.truncate(len(current))
        if self.store is not None:
            # Durable mode: the same extents land in the sealed local
            # log as DELTA frames (before XOR after), so a crash replays
            # to exactly this image.
            for lo, hi in extents:
                self.store.record_extent(self.IMAGE_VOLUME, lo,
                                         previous[lo:hi], current[lo:hi],
                                         len(current))
        if not send_mirror_updates or not extents:
            return
        host = self.cluster.mirror_host(self.index)
        # Delta frames inherit the trace context of the operation that
        # dirtied the image (the ambient span during RPC handling), so
        # the mirror application on the host lands in the same tree.
        context = self.cluster.traces.current
        bodies = []
        delta_bytes = 0
        with span_if_active("node.mirror_ship", node=self.name,
                            extents=str(len(extents))):
            for lo, hi in extents:
                old_part = previous[lo:hi]
                new_part = current[lo:hi]
                width = max(len(old_part), len(new_part))
                delta = (
                    int.from_bytes(old_part, "little")
                    ^ int.from_bytes(new_part, "little")
                ).to_bytes(width, "little")
                bodies.append(wire.encode_traced(
                    context, wire.encode_delta(len(current), lo, delta)
                ))
                delta_bytes += len(delta)
            # One batched signing pass seals the whole burst of patches.
            for sealed in wire.seal_many(self.scheme, bodies):
                self.cluster.faulty_network.transmit(
                    self.name, host.name, DELTA_KIND, sealed,
                    host.receive_mirror_delta,
                )
        registry = get_registry()
        registry.counter("cluster.mirror_deltas",
                         source=self.name).inc(len(bodies))
        registry.counter("cluster.mirror_delta_bytes",
                         source=self.name).inc(delta_bytes)

    def receive_mirror(self, data: bytes) -> None:
        """Apply one delivered mirror page update to the hosted mirror."""
        body = wire.unseal(self.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="mirror").inc()
            self.cluster.report_seal_failure(self.name, "mirror", data)
            return
        if not self.is_up or self.mirror is None:
            registry.counter("cluster.down_drops", node=self.name).inc()
            return
        context, inner = wire.decode_traced(body)
        image_len, page_index, page = wire.decode_mirror(inner)
        with self._traced("node.mirror_page", context):
            self.mirror.write_page(page_index, page)
            if len(self.mirror.data) > image_len:
                self.mirror.truncate(image_len)

    def receive_mirror_delta(self, data: bytes) -> None:
        """XOR one delivered delta patch onto the hosted mirror.

        The seal covers the delta frame, so a corrupted patch is
        *detected and dropped* (certainly for <= n corrupted symbols,
        Proposition 1) rather than applied -- the mirror is then merely
        stale, which anti-entropy repairs.
        """
        body = wire.unseal(self.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="mirror").inc()
            self.cluster.report_seal_failure(self.name, "mirror", data)
            return
        recorder = self.cluster.recorder_for(self.name)
        if recorder is not None:
            recorder.record_frame("recv", "mirror_delta", "", data)
        if not self.is_up or self.mirror is None:
            registry.counter("cluster.down_drops", node=self.name).inc()
            return
        context, inner = wire.decode_traced(body)
        image_len, offset, delta = wire.decode_delta(inner)
        with self._traced("node.mirror_apply", context):
            self.mirror.apply_xor(offset, delta)
            if len(self.mirror.data) > image_len:
                self.mirror.truncate(image_len)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state; traffic is dropped until recovery.

        A durable node loses its RAM structures and its open store
        handle, but the sealed log directory survives on "disk" --
        that is what the certified-recovery path replays.
        """
        self.state = NodeState.CRASHED
        self.server = SDDSServer(self.index, self.scheme,
                                 capacity_records=self.capacity_records,
                                 store_signatures=True)
        self.image = Replica(f"{self.name}.image", self.scheme,
                             serialize_bucket(self.server), self.page_bytes)
        self.mirror = None
        self._reply_cache.clear()
        self._inflight.clear()
        self.service = RequestService(self.name, self.cluster.loop,
                                      self.policy,
                                      execute=self._service_execute,
                                      shed=self._service_shed)
        if self.store is not None:
            self.store.close()
            self.store = None

    def rebuild_from(self, records: list[Record]) -> None:
        """Repopulate the bucket (recovery path); refreshes the image."""
        for record in records:
            self.server.insert(record)
        self.refresh_image()


# Imported last, deliberately: the serve package builds on cluster
# primitives (wire, events) while the node builds on serve's service
# abstraction.  Everything node.py needs from serve is defined before
# serve imports anything from this module, so the bottom import breaks
# the cycle in both import directions.
from ..serve.ops import (  # noqa: E402
    EFFECT_INSERT,
    EFFECT_NONE,
    EFFECT_PSEUDO,
    EFFECT_UPDATE,
    apply_operation,
)
from ..serve.service import RequestService, ServeRequest, ServicePolicy  # noqa: E402
