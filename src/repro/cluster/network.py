"""An unreliable message transport over the accounted simulated network.

:class:`FaultyNetwork` is the adversary of the cluster runtime: it
carries real payload bytes (so corruption is a byte flip the receiver
must *detect*, not a flag it is told about), schedules deliveries on the
:class:`~repro.cluster.events.EventLoop` instead of advancing the world
clock synchronously, and perturbs every transfer according to the run's
:class:`~repro.cluster.faults.FaultPlan`:

* **drop** -- the delivery is never scheduled (the bytes still burn
  wire accounting: the sender transmitted them);
* **duplicate** -- two independent deliveries are scheduled;
* **corrupt** -- one payload byte is XOR-flipped with a non-zero mask,
  guaranteeing at least a one-symbol change that the algebraic seal
  detects with certainty (Proposition 2's n-symbol bound);
* **jitter / reorder** -- extra delivery delay, letting later messages
  overtake earlier ones;
* **partition** -- cross-partition sends are dropped until the
  partition's scheduled heal time.

Every random decision comes from a per-link ``random.Random`` stream
seeded by ``(run seed, source, destination)``, so runs are reproducible
and adding traffic on one link never perturbs another link's draws.
"""

from __future__ import annotations

import random
from typing import Callable

from ..obs import get_registry
from ..sim.network import SimNetwork
from .events import EventLoop
from .faults import FaultPlan, LinkFaults


class FaultyNetwork:
    """Fault-injecting, event-scheduled transport wrapping a SimNetwork."""

    def __init__(self, inner: SimNetwork, loop: EventLoop, plan: FaultPlan,
                 seed: int = 0):
        if inner.clock is not loop.clock:
            raise ValueError("network and event loop must share one clock")
        self.inner = inner
        self.loop = loop
        self.plan = plan
        self.seed = seed
        self._rngs: dict[tuple[str, str], random.Random] = {}
        #: Injected-fault counts by type (mirrors ``cluster.faults_injected``).
        self.injected: dict[str, int] = {}
        #: Fault listeners ``fn(kind, source, destination)`` -- the
        #: cluster runtime registers one that rings each injected fault
        #: into the destination node's flight recorder.
        self.listeners: list[Callable[[str, str, str], None]] = []

    def _rng(self, source: str, destination: str) -> random.Random:
        key = (source, destination)
        rng = self._rngs.get(key)
        if rng is None:
            # Seeding with a string hashes it with SHA-512 internally --
            # stable across processes, unlike hash().
            rng = random.Random(f"{self.seed}|{source}->{destination}")
            self._rngs[key] = rng
        return rng

    def _fault(self, kind: str, source: str, destination: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        get_registry().counter("cluster.faults_injected", type=kind).inc()
        for listener in self.listeners:
            listener(kind, source, destination)

    def transmit(self, source: str, destination: str, kind: str,
                 payload: bytes,
                 deliver: Callable[[bytes], None]) -> None:
        """Send ``payload``; ``deliver`` fires per surviving copy.

        Traffic is accounted at send time (the bytes went on the wire
        whether or not they arrive); the clock is *not* advanced here --
        each surviving copy's delivery is an event at
        ``now + transfer_time + noise``.
        """
        base_delay = self.inner.account(source, destination, kind,
                                        len(payload))
        now = self.loop.clock.now
        if self.plan.severed(now, source, destination):
            self._fault("partition_drop", source, destination)
            return
        faults = self.plan.link(source, destination)
        if faults.is_clean:
            self.loop.after(base_delay, lambda: deliver(payload))
            return
        rng = self._rng(source, destination)
        # Fixed draw order per message keeps the stream deterministic.
        if rng.random() < faults.drop:
            self._fault("drop", source, destination)
            return
        copies = 1
        if faults.duplicate and rng.random() < faults.duplicate:
            self._fault("duplicate", source, destination)
            copies = 2
        for _ in range(copies):
            delay = base_delay
            if faults.jitter:
                extra = rng.random() * faults.jitter
                if extra:
                    self._fault("delay", source, destination)
                delay += extra
            if faults.reorder and rng.random() < faults.reorder:
                self._fault("reorder", source, destination)
                delay += faults.reorder_delay
            body = payload
            if faults.corrupt and rng.random() < faults.corrupt and payload:
                position = rng.randrange(len(payload))
                mask = rng.randrange(1, 256)
                corrupted = bytearray(payload)
                corrupted[position] ^= mask
                body = bytes(corrupted)
                self._fault("corrupt", source, destination)
            self.loop.after(delay, lambda body=body: deliver(body))

    def link_faults(self, source: str, destination: str) -> LinkFaults:
        """The policy currently governing one directed link."""
        return self.plan.link(source, destination)
