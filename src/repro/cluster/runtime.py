"""The cluster runtime: nodes, parity group, clients, and self-healing.

:class:`Cluster` composes the existing subsystems into the multi-node
SDDS the paper envisions, running under injected failure:

* client operations route by ``key mod n`` to :class:`ClusterNode`
  buckets over the :class:`~repro.cluster.network.FaultyNetwork`, each
  payload sealed with a 4-byte algebraic signature and retried under a
  :class:`~repro.cluster.retry.RetryPolicy` until it lands;
* every mutation also feeds an :class:`~repro.parity.lhrs.LHRSStore`
  reliability group (k parity columns over the n node buckets), so a
  crashed node's records are reconstructible from the survivors;
* every node's bucket image is mirrored best-effort on its successor;
  divergence (dropped or corrupted mirror traffic, crashes) is healed
  by :func:`repro.sync.sync_by_tree` anti-entropy passes that ship only
  signature-detected differing pages;
* scheduled crashes trigger the self-healing pipeline: LH*RS
  reconstruction over the recovery channel, bucket rebuild, then
  anti-entropy to re-converge both mirror relationships.

Everything -- fault draws, event ordering, backoff jitter -- is a
deterministic function of the run seed, so identical seeds produce
byte-identical run-report JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from ..obs import (
    FlightRecorder,
    RecorderDump,
    TraceStore,
    activate,
    frame_digest,
    get_registry,
)
from ..parity import LHRSStore
from ..sdds.record import Record
from ..sig.engine import get_batch_signer
from ..sig.scheme import AlgebraicSignatureScheme, make_scheme
from ..sim.clock import SimClock
from ..sim.network import NetworkModel, SimNetwork
from ..store.pagestore import PageStore
from ..sync import Replica, sync_by_locator, sync_by_tree
from .events import EventLoop
from .faults import Crash, FaultPlan
from .network import FaultyNetwork
from .node import (
    REQUEST_KINDS,
    ClusterNode,
    NodeState,
    deserialize_bucket,
    serialize_bucket,
)
from .retry import RetryExhaustedError, RetryPolicy
from . import wire


class ClusterError(ReproError):
    """Cluster configuration or routing failure."""


#: Recovery-channel message kinds.
RECOVERY_SHARD = "c_recovery_shard"


@dataclass(frozen=True, slots=True)
class ClusterResult:
    """Outcome of one client operation against the cluster."""

    op: str
    status: str
    value: bytes = b""
    attempts: int = 1
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the operation took effect.

        At-least-once caveats: a retried insert answered ``duplicate``
        (or a retried delete answered ``missing``) means an earlier
        attempt already landed before its reply was lost.
        """
        if self.status in ("inserted", "applied", "deleted", "found"):
            return True
        if self.attempts > 1:
            return ((self.op == "insert" and self.status == "duplicate")
                    or (self.op == "delete" and self.status == "missing"))
        return False


class Cluster:
    """A seeded, fault-injected multi-node SDDS cluster."""

    def __init__(self, servers: int = 4, seed: int = 0,
                 plan: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 scheme: AlgebraicSignatureScheme | None = None,
                 parity_buckets: int = 2,
                 record_bytes: int = 256,
                 page_bytes: int = 128,
                 header_bytes: int = 16,
                 durable_dir: str | Path | None = None,
                 durable_checkpoint_every: int | None = 64,
                 durable_flush: str = "frame",
                 recovery_workers: int | None = None,
                 service: "ServicePolicy | None" = None,
                 sync_protocol: str = "tree"):
        if servers < 2:
            raise ClusterError("a cluster needs at least 2 server nodes")
        if sync_protocol not in ("tree", "locator"):
            raise ClusterError(
                f"unknown sync protocol {sync_protocol!r}; "
                "use 'tree' or 'locator'"
            )
        self.seed = seed
        #: Anti-entropy protocol for mirror repair: ``"tree"`` walks
        #: the signature tree; ``"locator"`` ships the O(d^2 log^2 N)
        #: group-testing locator first and falls back to the tree on
        #: decode overflow (PR 10).
        self.sync_protocol = sync_protocol
        #: Per-node request-service policy (PR 7).  ``None`` keeps the
        #: original inline semantics; a queued policy gives every node
        #: a bounded inbox with deadline/queue-depth load shedding.
        self.service = service
        self.scheme = scheme if scheme is not None else make_scheme()
        self.plan = plan if plan is not None else FaultPlan()
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock = SimClock()
        self.loop = EventLoop(self.clock)
        self.network = SimNetwork(
            clock=self.clock, model=NetworkModel(header_bytes=header_bytes)
        )
        self.faulty_network = FaultyNetwork(self.network, self.loop,
                                            self.plan, seed=seed)
        #: The telemetry plane: one trace store assembling per-op
        #: cross-node trees, one bounded flight recorder per node (and
        #: per client), and the run-level list of sealed post-mortem
        #: dumps every recorder drains into.
        self.traces = TraceStore(seed=seed, clock=self.clock)
        self.recorders: dict[str, FlightRecorder] = {}
        self.dumps: list[RecorderDump] = []
        self.traces.on_finish = self._on_span_finished
        self.faulty_network.listeners.append(self._on_link_fault)
        self.parity = LHRSStore(self.scheme, data_buckets=servers,
                                parity_buckets=parity_buckets,
                                record_bytes=record_bytes)
        self.nodes = [
            ClusterNode(index, self, self.scheme, page_bytes,
                        policy=service)
            for index in range(servers)
        ]
        for node in self.nodes:
            self._add_recorder(node.name)
        #: Durable mode (PR 5): every node appends its image extents to
        #: a sealed per-node log; a ``Crash`` then recovers by certified
        #: local replay instead of LH*RS reconstruction.
        self.durable_dir = Path(durable_dir) if durable_dir is not None \
            else None
        self.durable_checkpoint_every = durable_checkpoint_every
        #: Write-path flush policy for the per-node logs and the worker
        #: count for the segment-sharded certification scan (PR 9).
        self.durable_flush = durable_flush
        self.recovery_workers = recovery_workers
        if self.durable_dir is not None:
            for node in self.nodes:
                node.attach_store(self._fresh_store(node))
        for node in self.nodes:
            host = self.mirror_host(node.index)
            host.make_mirror(node.name, node.image_bytes())
        self.clients: list["ClusterClient"] = []
        for crash in self.plan.crashes:
            self._schedule_crash(crash)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def server_count(self) -> int:
        """Number of server nodes."""
        return len(self.nodes)

    @property
    def max_value_bytes(self) -> int:
        """Largest record value the parity slots accommodate."""
        return self.parity.max_value_bytes

    def node_for(self, key: int) -> ClusterNode:
        """The node owning ``key`` (static ``key mod n`` partitioning)."""
        return self.nodes[key % len(self.nodes)]

    def mirror_host(self, index: int) -> ClusterNode:
        """The node hosting ``index``'s bucket-image mirror."""
        return self.nodes[(index + 1) % len(self.nodes)]

    def mirror_of(self, index: int):
        """The hosted mirror replica of node ``index``'s image."""
        return self.mirror_host(index).mirror

    def client(self, name: str | None = None) -> "ClusterClient":
        """Create (and register) a new cluster client."""
        index = len(self.clients)
        client = ClusterClient(index, name or f"client{index}", self)
        self.clients.append(client)
        self._add_recorder(client.name)
        return client

    def client_for_request(self, request_id: int) -> "ClusterClient":
        """Resolve the client a request id belongs to (reply routing)."""
        index = request_id >> 32
        if index >= len(self.clients):
            raise ClusterError(f"request id {request_id} from unknown client")
        return self.clients[index]

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------

    def _add_recorder(self, name: str) -> FlightRecorder:
        """Create the participant's flight recorder, sunk into dumps."""
        recorder = FlightRecorder(name, self.scheme, clock=self.clock)
        recorder.sinks.append(self.dumps.append)
        self.recorders[name] = recorder
        return recorder

    def recorder_for(self, name: str) -> FlightRecorder | None:
        """The named participant's flight recorder (None if unknown)."""
        return self.recorders.get(name)

    def _on_span_finished(self, span) -> None:
        """Ring every finished span into its emitting node's recorder."""
        recorder = self.recorders.get(span.node)
        if recorder is not None:
            recorder.record_span(span)

    def _on_link_fault(self, kind: str, source: str,
                       destination: str) -> None:
        """Ring each injected network fault into the receiver's recorder.

        The receiver is the party that must *detect* the damage (or
        never learns the frame existed, for drops); its post-mortem
        bundle therefore carries the ground-truth injection alongside
        whatever its seal verification saw.
        """
        recorder = self.recorders.get(destination)
        if recorder is not None:
            recorder.record_fault(f"link_{kind}", source=source)

    def report_seal_failure(self, name: str, where: str,
                            frame: bytes) -> None:
        """Dump a post-mortem bundle for one failed seal verification.

        Called by nodes and clients the moment :func:`wire.unseal`
        rejects a frame: the bundle names the failing frame by its
        signature-tail digest, so every ``corruptions_detected``
        increment has matching sealed evidence.
        """
        recorder = self.recorders.get(name)
        if recorder is None:
            return
        digest = frame_digest(self.scheme, frame)
        recorder.record_fault("seal_failure", digest=digest, where=where)
        recorder.dump("seal_failure", digest=digest, where=where)

    # ------------------------------------------------------------------
    # Crashes and self-healing
    # ------------------------------------------------------------------

    def _schedule_crash(self, crash: Crash) -> None:
        node = self._node_by_name(crash.node)
        self.loop.at(crash.at, lambda: self._crash(node, crash))

    def _node_by_name(self, name: str) -> ClusterNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ClusterError(f"no node named {name!r}")

    def _fresh_store(self, node: ClusterNode) -> PageStore:
        """Create (wiping any leftovers) the node's durable page store."""
        directory = self.durable_dir / node.name
        directory.mkdir(parents=True, exist_ok=True)
        for leftover in list(directory.glob("seg-*.log")) \
                + list(directory.glob("*.ckpt")):
            leftover.unlink()
        return PageStore(self.scheme, directory,
                         checkpoint_every=self.durable_checkpoint_every,
                         flush=self.durable_flush,
                         verify_workers=self.recovery_workers)

    def _crash(self, node: ClusterNode, crash: Crash) -> None:
        if not node.is_up:
            return  # already down; overlapping plans are a no-op
        durable = node.store is not None
        node.crash()
        if not durable:
            # A durable node's bucket survives in its sealed log, so
            # the parity group's column is *not* lost; only a volatile
            # node's crash degrades the LH*RS store.
            self.parity.fail_bucket(node.index)
        get_registry().counter("cluster.crashes", node=node.name).inc()
        recorder = self.recorder_for(node.name)
        if recorder is not None:
            recorder.record_fault("crash", durable=str(durable).lower())
            recorder.dump("crash")
        self.loop.at(crash.recover_at,
                     lambda: self._recover(node, crashed_at=crash.at))

    def _recover(self, node: ClusterNode, crashed_at: float) -> None:
        """Recovery dispatch: certified local replay, else LH*RS.

        The whole pipeline runs inside a ``node.recover`` trace root,
        so the storage-plane and parity spans it triggers assemble into
        one recovery tree per crash.
        """
        registry = get_registry()
        node.state = NodeState.RECOVERING
        with activate(self.traces), \
                self.traces.begin("node.recover", node=node.name) as span:
            durable = node.store_dir is not None and \
                self._recover_durable(node)
            if not durable:
                if node.store_dir is not None:
                    # The local log could not certify the bucket: fall
                    # back to full LH*RS reconstruction.
                    self.parity.fail_bucket(node.index)
                    registry.counter("cluster.durable_fallbacks",
                                     node=node.name).inc()
                self._recover_parity(node)
                if node.store_dir is not None:
                    # Re-seed the durable log from the recovered state.
                    node.attach_store(self._fresh_store(node))
            span.event("bucket_rebuilt",
                       path="durable" if durable else "parity")
            predecessor = self.nodes[(node.index - 1) % len(self.nodes)]
            node.make_mirror(predecessor.name)
            node.state = NodeState.UP
            self._repair_pair(predecessor, phase="recovery")
            self._repair_pair(node, phase="recovery")
        registry.counter("cluster.recoveries", node=node.name).inc()
        registry.histogram("cluster.recovery_seconds").observe(
            self.clock.now - crashed_at
        )

    def _recover_durable(self, node: ClusterNode) -> bool:
        """Certified local replay of the node's sealed log.

        Returns True when the bucket was re-certified from local state:
        checkpoint + fold, torn tail truncated, and every condemned
        page patched from the hosted mirror with its replacement
        *verified* against the certified expected signature.  Any
        uncertainty (unverifiable patch, undecodable image) returns
        False and the caller falls back to LH*RS reconstruction.
        """
        registry = get_registry()
        try:
            store, report = PageStore.recover(
                self.scheme, node.store_dir,
                checkpoint_every=self.durable_checkpoint_every,
                verify_workers=self.recovery_workers,
                flush=self.durable_flush,
            )
        except (ReproError, OSError):
            return False
        recorder = self.recorder_for(node.name)
        if recorder is not None:
            for volume_name, pages in sorted(report.condemned.items()):
                if pages:
                    recorder.record_fault("page_condemned",
                                          pages=list(pages),
                                          volume=volume_name)
                    recorder.dump("page_condemned", pages=list(pages),
                                  volume=volume_name)
        volume = node.IMAGE_VOLUME
        if volume not in store.volumes():
            store.close()
            return False
        condemned = report.condemned.get(volume, ())
        if condemned:
            if not self._patch_condemned(node, store, condemned,
                                         report.expected.get(volume, {})):
                store.close()
                return False
        image = store.image(volume)
        try:
            records = deserialize_bucket(image)
        except Exception:
            store.close()
            return False
        for record in records:
            node.server.insert(record)
        if serialize_bucket(node.server) != image:
            store.close()
            return False
        node.image = Replica(f"{node.name}.image", self.scheme, image,
                             node.page_bytes)
        node.store = store
        node.store_dir = store.directory
        registry.counter("cluster.durable_recoveries", node=node.name).inc()
        registry.counter("cluster.durable_frames_folded").inc(
            report.frames_folded
        )
        return True

    def _patch_condemned(self, node: ClusterNode, store: PageStore,
                         condemned: tuple[int, ...],
                         expected: dict) -> bool:
        """Fetch condemned pages from the hosted mirror, verified.

        Each replacement page must re-sign to the *certified* expected
        signature from the recovery report -- a stale or damaged mirror
        page fails the check and the whole durable path is abandoned.
        """
        registry = get_registry()
        host = self.mirror_host(node.index)
        mirror = host.mirror if host.is_up else None
        if mirror is None:
            return False
        volume = node.IMAGE_VOLUME
        page_bytes = store.page_bytes_of(volume)
        signer = get_batch_signer(self.scheme)
        for page in condemned:
            certified = expected.get(page)
            if certified is None:
                return False
            patch = bytes(mirror.data[page * page_bytes:
                                      (page + 1) * page_bytes])
            if not patch:
                return False
            actual = signer.sign_map(patch,
                                     page_bytes // self.scheme.scheme_id
                                     .symbol_bytes).signatures[0]
            if actual != certified:
                return False
            self.network.send(host.name, node.name, RECOVERY_SHARD,
                              len(patch))
            store.write_page(volume, page, patch)
            registry.counter("cluster.condemned_pages_patched",
                             node=node.name).inc()
            registry.counter("cluster.repair_bytes", phase="condemned").inc(
                len(patch)
            )
        return True

    def _recover_parity(self, node: ClusterNode) -> None:
        """LH*RS reconstruction over the recovery channel."""
        registry = get_registry()
        # 1. LH*RS reconstruction: read one shard per surviving group
        #    member per rank over the (reliable, accounted) recovery
        #    channel, then solve the code for the lost column.
        shard_bytes = self.parity.rank_count * self.parity.record_bytes
        for survivor in self.nodes:
            if survivor is not node and survivor.is_up:
                self.network.send(survivor.name, node.name, RECOVERY_SHARD,
                                  shard_bytes)
        for parity_index in range(self.parity.k):
            self.network.send(f"parity{parity_index}", node.name,
                              RECOVERY_SHARD, shard_bytes)
        self.parity.recover()
        records = [
            Record(key, self.parity.get(key)) for key in self.parity.keys()
            if self.parity.bucket_of(key) == node.index
        ]
        node.rebuild_from(records)
        parity_bytes = shard_bytes * (self.server_count - 1 + self.parity.k)
        registry.counter("cluster.repair_bytes", phase="parity").inc(
            parity_bytes
        )

    def _repair_pair(self, source: ClusterNode, phase: str) -> int:
        """Anti-entropy one (source image, hosted mirror) pair."""
        host = self.mirror_host(source.index)
        if not (source.is_up and host.is_up) or host.mirror is None:
            return 0
        if self.sync_protocol == "locator":
            report = sync_by_locator(source.image, host.mirror,
                                     self.network)
        else:
            report = sync_by_tree(source.image, host.mirror, self.network)
        registry = get_registry()
        registry.counter("cluster.repair_bytes", phase=phase).inc(
            report.total_bytes
        )
        registry.counter("cluster.repair_pages", phase=phase).inc(
            report.pages_shipped
        )
        return report.pages_shipped

    def anti_entropy(self) -> int:
        """Run one full anti-entropy sweep; returns pages repaired."""
        return sum(self._repair_pair(node, phase="anti_entropy")
                   for node in self.nodes)

    # ------------------------------------------------------------------
    # Run control and invariants
    # ------------------------------------------------------------------

    def settle(self, max_seconds: float = 3600.0) -> None:
        """Drain in-flight events, then heal every replica."""
        self.loop.run_until_idle(max_seconds)
        self.anti_entropy()
        self.loop.run_until_idle(max_seconds)

    def converged(self) -> bool:
        """True when every up node's mirror matches its source image."""
        for node in self.nodes:
            mirror = self.mirror_of(node.index)
            if not (node.is_up and self.mirror_host(node.index).is_up):
                continue
            if mirror is None or bytes(mirror.data) != node.image_bytes():
                return False
        return True

    def check_replicas(self) -> None:
        """Assert convergence *and* that images decode to the buckets."""
        if not self.converged():
            raise ClusterError("mirror replicas diverge from their sources")
        for node in self.nodes:
            if not node.is_up:
                continue
            decoded = {r.key: r.value for r in
                       deserialize_bucket(node.image_bytes())}
            stored = {key: node.server.bucket.get(key).value
                      for key in node.server.bucket.keys()}
            if decoded != stored:
                raise ClusterError(
                    f"{node.name} image out of step with its bucket"
                )


class ClusterClient:
    """A client of the fault-injected cluster: retries + verification."""

    def __init__(self, index: int, name: str, cluster: Cluster):
        self.index = index
        self.name = name
        self.cluster = cluster
        self._seq = 0
        self._pending: set[int] = set()
        self._replies: dict[int, tuple[int, bytes]] = {}
        self._rng = random.Random(f"{cluster.seed}|{name}|retry")

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def insert(self, key: int, value: bytes) -> ClusterResult:
        """Insert a record."""
        return self._call(wire.OP_INSERT, key, value)

    def search(self, key: int) -> ClusterResult:
        """Fetch a record's value (in ``result.value``)."""
        return self._call(wire.OP_SEARCH, key)

    def update(self, key: int, value: bytes) -> ClusterResult:
        """Overwrite a record's value (pseudo-updates filtered server-side)."""
        return self._call(wire.OP_UPDATE, key, value)

    def delete(self, key: int) -> ClusterResult:
        """Remove a record."""
        return self._call(wire.OP_DELETE, key)

    # ------------------------------------------------------------------
    # The retry loop
    # ------------------------------------------------------------------

    def _call(self, op: int, key: int, value: bytes = b"") -> ClusterResult:
        if len(value) > self.cluster.max_value_bytes:
            raise ClusterError(
                f"value of {len(value)} bytes exceeds the "
                f"{self.cluster.max_value_bytes}-byte parity slot"
            )
        op_name = wire.OP_NAMES[op]
        node = self.cluster.node_for(key)
        request_id = (self.index << 32) | self._seq
        self._seq += 1
        registry = get_registry()
        policy = self.cluster.retry
        loop = self.cluster.loop
        traces = self.cluster.traces
        recorder = self.cluster.recorder_for(self.name)
        started = loop.clock.now
        self._pending.add(request_id)
        try:
            with activate(traces), \
                    traces.begin(f"rpc.{op_name}", node=self.name,
                                 key=str(key), target=node.name) as root:
                sealed = wire.seal(self.cluster.scheme, wire.encode_traced(
                    root.context,
                    wire.encode_request(op, request_id, key, value),
                ))
                budget = policy.begin(loop.clock.now)
                while True:
                    if not budget.allow(loop.clock.now):
                        # Budget or operation deadline exhausted -- the
                        # retry loop may not add pressure past either.
                        registry.counter("cluster.ops", op=op_name,
                                         status="gave_up").inc()
                        root.finish("gave_up")
                        raise RetryExhaustedError(
                            f"{op_name}({key}) failed after "
                            f"{budget.spent} attempts"
                        )
                    attempt = budget.spend()
                    if attempt:
                        registry.counter("cluster.retries",
                                         op=op_name).inc()
                        root.event("retry", attempt=attempt + 1)
                    if recorder is not None:
                        recorder.record_frame("send", "request", node.name,
                                              sealed)
                    self.cluster.faulty_network.transmit(
                        self.name, node.name, REQUEST_KINDS[op], sealed,
                        node.receive_request,
                    )
                    deadline = loop.clock.now + budget.attempt_timeout(
                        attempt, self._rng, loop.clock.now
                    )
                    if loop.run_until(
                            deadline,
                            stop=lambda: request_id in self._replies):
                        if self._replies[request_id][0] != wire.ST_SHED:
                            break
                        # An overloaded node refused admission.  Back
                        # off along the timeout ladder (spending the
                        # budget) before offering the request again.
                        self._replies.pop(request_id)
                        registry.counter("cluster.shed_replies",
                                         op=op_name).inc()
                        root.event("shed", attempt=attempt + 1)
                        loop.run_until(loop.clock.now
                                       + policy.timeout_for(attempt,
                                                            self._rng))
                        continue
                    registry.counter("cluster.timeouts", op=op_name).inc()
        finally:
            self._pending.discard(request_id)
        status_code, reply_value = self._replies.pop(request_id)
        status = wire.ST_NAMES[status_code]
        attempts = budget.spent
        elapsed = loop.clock.now - started
        registry.counter("cluster.ops", op=op_name, status=status).inc()
        registry.histogram("cluster.op_seconds", op=op_name).observe(elapsed)
        registry.histogram("cluster.op_attempts", op=op_name).observe(attempts)
        return ClusterResult(op=op_name, status=status, value=reply_value,
                             attempts=attempts, elapsed=elapsed)

    def receive_reply(self, data: bytes) -> None:
        """Handle one delivered reply payload (verify, then match)."""
        body = wire.unseal(self.cluster.scheme, data)
        registry = get_registry()
        if body is None:
            registry.counter("cluster.corruptions_detected",
                             where="reply").inc()
            self.cluster.report_seal_failure(self.name, "reply", data)
            return
        recorder = self.cluster.recorder_for(self.name)
        if recorder is not None:
            recorder.record_frame("recv", "reply", "", data)
        _context, inner = wire.decode_traced(body)
        status, request_id, value = wire.decode_reply(inner)
        if request_id not in self._pending or request_id in self._replies:
            # A late or duplicated reply for a settled operation.
            registry.counter("cluster.stale_replies").inc()
            return
        self._replies[request_id] = (status, value)
