"""Deterministic event-driven scheduler over the simulated clock.

The synchronous request/response world of :mod:`repro.sim` cannot
express the phenomena the SDDS cluster runtime exists to study -- messages in
flight that are dropped, duplicated, or overtaken; timeouts racing
replies; crashes scheduled for the future.  :class:`EventLoop` adds the
missing piece: a priority queue of timed callbacks over
:class:`~repro.sim.clock.SimClock`, with a monotonically increasing
sequence number breaking time ties so two runs of the same seeded
scenario execute events in byte-identical order.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from ..errors import ReproError
from ..sim.clock import SimClock


class EventError(ReproError):
    """Invalid event time or a mis-scheduled callback."""


class Timer:
    """Handle to one scheduled callback; ``cancel()`` prevents firing."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the timer dead; the loop discards it unfired."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Timer(t={self.time:.6f}s, seq={self.seq}, {state})"


class EventLoop:
    """A deterministic run-to-completion scheduler.

    Callbacks run with the clock advanced (monotonically, via
    :meth:`SimClock.sleep_until`) to their scheduled time; a callback
    may schedule further events, including at the current instant.
    Equal-time events fire in scheduling order -- the stable tie-break
    that makes whole-cluster runs reproducible.
    """

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[Timer] = []
        self._seq = 0
        self.fired = 0

    @property
    def pending(self) -> int:
        """Number of live (uncancelled) timers in the queue."""
        return sum(1 for timer in self._heap if not timer.cancelled)

    def at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` for absolute simulated ``time``."""
        if not math.isfinite(time):
            raise EventError(f"cannot schedule an event at t={time}")
        if time < self.clock.now:
            raise EventError(
                f"cannot schedule an event at t={time:.6f}s, "
                f"already at t={self.clock.now:.6f}s"
            )
        timer = Timer(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        return timer

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` for ``delay`` seconds from now."""
        if not math.isfinite(delay) or delay < 0:
            raise EventError(f"cannot schedule an event {delay}s from now")
        return self.at(self.clock.now + delay, callback)

    def run_until(self, deadline: float,
                  stop: Callable[[], bool] | None = None) -> bool:
        """Fire events due by ``deadline``; returns True if ``stop`` hit.

        Events with ``time <= deadline`` fire in (time, seq) order, the
        clock tracking each event's timestamp.  After every event the
        optional ``stop`` predicate is consulted -- the waiting-for-a-
        reply primitive the retry machinery is built on.  When the
        queue drains (or only later events remain) without ``stop``
        becoming true, the clock advances to ``deadline`` and the call
        returns False: a timeout.
        """
        if not math.isfinite(deadline):
            raise EventError(f"cannot run until t={deadline}")
        if stop is not None and stop():
            return True
        while self._heap and self._heap[0].time <= deadline:
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.clock.sleep_until(timer.time)
            self.fired += 1
            timer.callback()
            if stop is not None and stop():
                return True
        self.clock.sleep_until(deadline)
        return False

    def run_until_idle(self, max_seconds: float = 3600.0) -> int:
        """Fire every queued event (and their consequences); returns count.

        ``max_seconds`` bounds how far past *now* the loop will follow
        self-rescheduling event chains -- a safety net, not a timeout.
        """
        horizon = self.clock.now + max_seconds
        fired_before = self.fired
        while self._heap:
            if self._heap[0].time > horizon:
                raise EventError(
                    f"event chain still busy {max_seconds}s out; "
                    "likely a self-rescheduling loop"
                )
            self.run_until(self._heap[0].time)
        return self.fired - fired_before

    def __repr__(self) -> str:
        return (f"EventLoop(t={self.clock.now:.6f}s, "
                f"pending={self.pending}, fired={self.fired})")
