"""The traditional dirty-bit backup approach (Section 2.1's baseline).

Divide the bucket into pages, set a page's dirty bit on every write,
reset it when the page goes to disk, and copy only dirty pages.  The
paper could not retrofit this into SDDS-2000 ("the existing code ...
writes to the buckets in many places"); we *can* build it here because
:class:`~repro.sdds.heap.RecordHeap` exposes a write listener -- which
makes it the ground-truth comparator for the signature map: every page
the tracker marks dirty whose bytes actually changed must also be found
by the signatures, and the signatures additionally ignore writes that
restored identical bytes.
"""

from __future__ import annotations

from ..errors import BackupError
from ..sdds.heap import RecordHeap


class DirtyBitTracker:
    """Page-granular dirty bits fed by heap write notifications."""

    def __init__(self, heap: RecordHeap, page_bytes: int):
        if page_bytes <= 0:
            raise BackupError("page size must be positive")
        self.heap = heap
        self.page_bytes = page_bytes
        self._dirty: set[int] = set()
        heap.add_write_listener(self._on_write)
        # Everything is dirty until the first full backup.
        self.mark_all_dirty()

    def _on_write(self, offset: int, length: int) -> None:
        if length <= 0:
            return
        first = offset // self.page_bytes
        last = (offset + length - 1) // self.page_bytes
        self._dirty.update(range(first, last + 1))

    @property
    def page_count(self) -> int:
        """Pages covering the heap at its current size."""
        return (self.heap.size + self.page_bytes - 1) // self.page_bytes

    def mark_all_dirty(self) -> None:
        """Mark every current page dirty (initial state)."""
        self._dirty.update(range(self.page_count))

    def dirty_pages(self) -> list[int]:
        """Sorted indices of pages written since the last reset."""
        return sorted(index for index in self._dirty if index < self.page_count)

    def reset(self, pages: list[int] | None = None) -> None:
        """Clear dirty bits (all, or just the pages that went to disk)."""
        if pages is None:
            self._dirty.clear()
        else:
            self._dirty.difference_update(pages)

    def is_dirty(self, index: int) -> bool:
        """True if the page was written since the last reset."""
        return index in self._dirty
