"""The traditional dirty-bit backup approach (Section 2.1's baseline).

Divide the bucket into pages, set a page's dirty bit on every write,
reset it when the page goes to disk, and copy only dirty pages.  The
paper could not retrofit this into SDDS-2000 ("the existing code ...
writes to the buckets in many places"); we *can* build it here because
:class:`~repro.sdds.heap.RecordHeap` exposes a write listener -- which
makes it the ground-truth comparator for the signature map: every page
the tracker marks dirty whose bytes actually changed must also be found
by the signatures, and the signatures additionally ignore writes that
restored identical bytes.

The tracker also keeps a per-page dirty byte *extent* -- the first and
last written offset since the last reset.  The incremental signature
plane uses it to decide between the O(|delta|) Proposition-3 fold and a
full-page re-sign: once writes have smeared across most of a page, the
extent covers it and re-signing the page outright is cheaper than
folding many journal regions (:meth:`DirtyBitTracker.fallback_pages`).
"""

from __future__ import annotations

from ..errors import BackupError
from ..sdds.heap import RecordHeap

#: Default dirty fraction beyond which a full-page re-sign beats folding.
FULL_RESIGN_FRACTION = 0.5


class DirtyBitTracker:
    """Page-granular dirty bits (plus byte extents) fed by heap writes."""

    def __init__(self, heap: RecordHeap, page_bytes: int,
                 full_resign_fraction: float = FULL_RESIGN_FRACTION):
        if page_bytes <= 0:
            raise BackupError("page size must be positive")
        if not 0.0 < full_resign_fraction <= 1.0:
            raise BackupError("full re-sign fraction must be in (0, 1]")
        self.heap = heap
        self.page_bytes = page_bytes
        self.full_resign_fraction = full_resign_fraction
        self._dirty: set[int] = set()
        #: page -> (lo, hi): half-open absolute byte extent written since
        #: the last reset.  Pages dirtied without offset information
        #: (mark_all_dirty) carry their full page span.
        self._extents: dict[int, tuple[int, int]] = {}
        heap.add_write_listener(self._on_write)
        # Everything is dirty until the first full backup.
        self.mark_all_dirty()

    def _on_write(self, offset: int, length: int) -> None:
        if length <= 0:
            return
        first = offset // self.page_bytes
        last = (offset + length - 1) // self.page_bytes
        for page in range(first, last + 1):
            page_lo = page * self.page_bytes
            page_hi = page_lo + self.page_bytes
            lo = max(offset, page_lo)
            hi = min(offset + length, page_hi)
            known = self._extents.get(page)
            if known is not None:
                lo = min(lo, known[0])
                hi = max(hi, known[1])
            self._extents[page] = (lo, hi)
        self._dirty.update(range(first, last + 1))

    @property
    def page_count(self) -> int:
        """Pages covering the heap at its current size."""
        return (self.heap.size + self.page_bytes - 1) // self.page_bytes

    def mark_all_dirty(self) -> None:
        """Mark every current page dirty (initial state)."""
        for page in range(self.page_count):
            self._dirty.add(page)
            self._extents[page] = (
                page * self.page_bytes,
                min((page + 1) * self.page_bytes, self.heap.size),
            )

    def dirty_pages(self) -> list[int]:
        """Sorted indices of pages written since the last reset."""
        return sorted(index for index in self._dirty if index < self.page_count)

    def dirty_extent(self, index: int) -> tuple[int, int] | None:
        """Half-open absolute byte extent written on ``index``, or None.

        The extent brackets every write to the page since the last
        reset: bytes outside ``[lo, hi)`` are certainly clean, so an
        incremental re-sign only needs to fold that span.
        """
        if index not in self._dirty or index >= self.page_count:
            return None
        return self._extents.get(index)

    def dirty_fraction(self, index: int) -> float:
        """Fraction of page ``index`` covered by its dirty extent."""
        extent = self.dirty_extent(index)
        if extent is None:
            return 0.0
        return (extent[1] - extent[0]) / self.page_bytes

    def fallback_pages(self) -> list[int]:
        """Dirty pages whose extent warrants a full-page re-sign.

        A page whose dirty span covers at least
        :attr:`full_resign_fraction` of it gains little from the
        Proposition-3 fold -- one contiguous re-sign of the page is
        simpler and at most a small constant factor more work.
        """
        return [
            index for index in self.dirty_pages()
            if self.dirty_fraction(index) >= self.full_resign_fraction
        ]

    def reset(self, pages: list[int] | None = None) -> None:
        """Clear dirty bits (all, or just the pages that went to disk)."""
        if pages is None:
            self._dirty.clear()
            self._extents.clear()
        else:
            self._dirty.difference_update(pages)
            for page in pages:
                self._extents.pop(page, None)

    def is_dirty(self, index: int) -> bool:
        """True if the page was written since the last reset."""
        return index in self._dirty
