"""Bucket backup through algebraic signatures (Section 2.1).

* :class:`BackupEngine` -- the paper's approach: per-page signature map,
  write only pages whose recomputed signature changed; optional
  signature-tree change localization (Section 4.2).
* :class:`DirtyBitBackupEngine` + :class:`DirtyBitTracker` -- the
  traditional baseline the paper could not retrofit into SDDS-2000.
"""

from .dirty_bits import DirtyBitTracker
from .eviction import (
    EvictionManager,
    EvictionStats,
    deserialize_bucket,
    serialize_bucket,
)
from .engine import (
    PAPER_SIG_SECONDS_PER_BYTE,
    BackupEngine,
    BackupReport,
    CpuModel,
    DirtyBitBackupEngine,
)
from .orchestrator import FileBackupOrchestrator, FileBackupReport

__all__ = [
    "BackupEngine",
    "BackupReport",
    "CpuModel",
    "DirtyBitBackupEngine",
    "DirtyBitTracker",
    "PAPER_SIG_SECONDS_PER_BYTE",
    "EvictionManager",
    "EvictionStats",
    "serialize_bucket",
    "deserialize_bucket",
    "FileBackupOrchestrator",
    "FileBackupReport",
]
