"""Signature-map bucket backup (Section 2.1).

The engine keeps, per backed-up volume, the *signature map* of the disk
copy.  A backup pass recomputes each page's signature from the RAM
image; only pages whose signature differs from the map entry are written
(and the map entry refreshed).  The computation is independent of the
bucket's write history -- the crucial advantage over dirty bits -- and
misses a real change only with probability 2^-nf per page, with changes
of up to n symbols detected with certainty (Proposition 1).

Cost model: signature calculus at ``cpu.sig_seconds_per_byte`` against
disk writes at ``disk.model.seconds_per_byte`` (the paper's 20-30 ms/MB
vs ~300 ms/MB -- the 10x gap that makes skipping writes worthwhile).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BackupError, SignatureError
from ..obs import get_registry
from ..sdds.bucket import Bucket
from ..sig.compound import SignatureMap
from ..sig.engine import BatchSigner
from ..sig.incremental import IncrementalSignatureMap, WriteJournal
from ..sig.locate import LocateDesign, LocatorMap, decode
from ..sig.scheme import AlgebraicSignatureScheme
from ..sig.tree import SignatureTree
from ..sim.disk import SimDisk
from .dirty_bits import DirtyBitTracker

#: The paper's measured sig_{alpha,2} rate: 20-30 ms per MB; use the midpoint.
PAPER_SIG_SECONDS_PER_BYTE = 0.025 / (1 << 20)


@dataclass(frozen=True, slots=True)
class CpuModel:
    """Cost model for the signature calculus on the backed-up node."""

    sig_seconds_per_byte: float = PAPER_SIG_SECONDS_PER_BYTE

    def sig_time(self, nbytes: int) -> float:
        """Modeled seconds to sign ``nbytes``."""
        return nbytes * self.sig_seconds_per_byte


@dataclass(frozen=True, slots=True)
class BackupReport:
    """Outcome of one backup pass."""

    volume: str
    pages_total: int
    pages_written: int
    bytes_written: int
    sig_seconds: float       #: modeled signature-calculus time
    write_seconds: float     #: modeled disk-write time
    tree_comparisons: int = 0  #: node comparisons when a tree located changes

    @property
    def pages_skipped(self) -> int:
        """Pages proven unchanged by their signatures."""
        return self.pages_total - self.pages_written

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end time of the pass."""
        return self.sig_seconds + self.write_seconds


class BackupEngine:
    """Backs up bucket images to a simulated disk using signature maps."""

    def __init__(self, scheme: AlgebraicSignatureScheme, disk: SimDisk,
                 page_bytes: int = 16 * 1024, cpu: CpuModel | None = None,
                 use_tree: bool = False, tree_fanout: int = 16,
                 workers: int | None = None, backend: str = "thread"):
        symbol_bytes = scheme.scheme_id.symbol_bytes
        if page_bytes % symbol_bytes:
            raise BackupError(
                f"page size {page_bytes} not a multiple of the {symbol_bytes}-byte symbol"
            )
        self.scheme = scheme
        self.disk = disk
        self.page_bytes = page_bytes
        self.page_symbols = page_bytes // symbol_bytes
        if self.page_symbols > scheme.max_page_symbols:
            raise BackupError(
                f"{page_bytes}-byte pages exceed the certainty bound for "
                f"GF(2^{scheme.field.f}); the paper uses 16 KB pages with f=16"
            )
        self.cpu = cpu if cpu is not None else CpuModel()
        self.use_tree = use_tree
        self.tree_fanout = tree_fanout
        #: All page signing goes through one batch signer; ``workers``
        #: chunks large scans by page ranges onto a thread pool, or --
        #: with ``backend="process"`` -- a shared-memory process pool
        #: (multi-bucket backup passes sign buckets per batch call).
        self.workers = workers
        self.backend = backend
        self._signer = BatchSigner(scheme, workers=workers, backend=backend)
        self._maps: dict[str, SignatureMap] = {}
        self._trees: dict[str, SignatureTree] = {}

    # ------------------------------------------------------------------
    # Backup
    # ------------------------------------------------------------------

    def backup(self, volume: str, image: bytes | memoryview) -> BackupReport:
        """Back up one RAM image; writes only pages with changed signatures.

        The whole bucket is signed in one batched kernel pass (the
        engine's signer), not page by page.
        """
        image = bytes(image)
        new_map = self._signer.sign_map(image, self.page_symbols)
        sig_seconds = self.cpu.sig_time(len(image))
        self.disk.clock.advance(sig_seconds)
        old_map = self._maps.get(volume)
        tree_comparisons = 0
        if old_map is None:
            changed = list(range(new_map.page_count))
        elif self.use_tree and old_map.page_count == new_map.page_count:
            old_tree = self._trees[volume]
            new_tree = SignatureTree.from_map(new_map, self.tree_fanout)
            diff = old_tree.diff(new_tree)
            changed, tree_comparisons = diff.changed_leaves, diff.nodes_compared
        else:
            changed = old_map.changed_pages(new_map)
        write_seconds = 0.0
        bytes_written = 0
        for index in changed:
            page = image[index * self.page_bytes:(index + 1) * self.page_bytes]
            write_seconds += self.disk.write_page(
                volume, index, page, self.page_bytes
            )
            bytes_written += len(page)
        self._maps[volume] = new_map
        if self.use_tree:
            tree = SignatureTree.from_map(new_map, self.tree_fanout)
            self._trees[volume] = tree
            if old_map is not None and tree_comparisons:
                # Each changed page is located by one root-to-leaf
                # descent; the depth distribution is the E9 cost shape.
                depths = get_registry().histogram("backup.tree_depth")
                for _ in changed:
                    depths.observe(tree.height)
                get_registry().histogram(
                    "backup.tree_nodes_compared"
                ).observe(tree_comparisons)
        registry = get_registry()
        registry.counter("backup.passes", engine="signature").inc()
        registry.counter("backup.pages_scanned",
                         engine="signature").inc(new_map.page_count)
        registry.counter("backup.pages_written",
                         engine="signature").inc(len(changed))
        registry.counter("backup.pages_skipped", engine="signature").inc(
            # A grown volume can have more changed pages than the old
            # map had entries; skipped never goes below zero.
            max(0, new_map.page_count - len(changed))
        )
        registry.counter("backup.bytes_written",
                         engine="signature").inc(bytes_written)
        return BackupReport(
            volume=volume,
            pages_total=new_map.page_count,
            pages_written=len(changed),
            bytes_written=bytes_written,
            sig_seconds=sig_seconds,
            write_seconds=write_seconds,
            tree_comparisons=tree_comparisons,
        )

    def backup_incremental(self, volume: str, image: bytes | memoryview,
                           journal: WriteJournal,
                           tracker: DirtyBitTracker | None = None) -> BackupReport:
        """Back up from a write journal in O(|journal|) signature work.

        Instead of re-signing the whole image (:meth:`backup`), the
        journaled ``(offset, before, after)`` regions are folded into
        the volume's stored map via the batched Proposition-3 kernel,
        and only pages whose signature actually changed are written --
        pseudo-writes that restored identical bytes cost nothing, same
        as in the full pass.  The resulting map is byte-identical to a
        from-scratch :meth:`backup` of the same image.

        ``tracker``, when given, supplies per-page dirty byte extents:
        pages whose extent exceeds the tracker's full-re-sign fraction
        are re-signed whole from ``image`` (cheaper than folding many
        smeared regions) and their journal regions are dropped.  Growth
        beyond the previous image must have started zero-filled before
        the journaled writes landed (RecordHeap growth guarantees this).

        The first pass on a volume falls back to a full :meth:`backup`
        (there is no stored map to fold into); the journal is consumed
        either way.
        """
        image = bytes(image)
        old_map = self._maps.get(volume)
        if journal.symbol_bytes != self.scheme.scheme_id.symbol_bytes:
            raise BackupError(
                f"journal is {journal.symbol_bytes}-byte aligned but the "
                f"scheme uses {self.scheme.scheme_id.symbol_bytes}-byte symbols"
            )
        if old_map is None:
            journal.clear()
            if tracker is not None:
                tracker.reset()
            return self.backup(volume, image)
        if tracker is not None and tracker.page_bytes != self.page_bytes:
            raise BackupError(
                f"tracker pages ({tracker.page_bytes} B) differ from "
                f"engine pages ({self.page_bytes} B)"
            )
        journaled_bytes = journal.byte_count
        fallback = set(tracker.fallback_pages()) if tracker is not None else set()
        incremental = IncrementalSignatureMap(old_map)
        old_count = old_map.page_count
        page_bytes = self.page_bytes
        work = incremental.new_journal()
        fallback_hit: set[int] = set()
        for entry in journal.entries:
            offset, cursor, length = entry.offset, 0, len(entry.after)
            while cursor < length:
                at = offset + cursor
                page = at // page_bytes
                take = min(length - cursor, (page + 1) * page_bytes - at)
                if page in fallback:
                    fallback_hit.add(page)
                else:
                    work.record(at, entry.before[cursor:cursor + take],
                                entry.after[cursor:cursor + take])
                cursor += take
        journal.clear()
        fold = incremental.apply_journal(work, total_bytes=len(image))
        leaf_deltas = dict(fold.leaf_deltas)
        changed = set(leaf_deltas)
        # Full-page re-sign fallback for smeared pages.
        fallback_list = sorted(
            page for page in fallback_hit if page < incremental.map.page_count
        )
        fallback_bytes = 0
        if fallback_list:
            pages = [image[page * page_bytes:(page + 1) * page_bytes]
                     for page in fallback_list]
            fallback_bytes = sum(len(page) for page in pages)
            for page, signature in zip(
                fallback_list, self._signer.sign_many(pages, strict=False)
            ):
                old_sig = incremental.map.signatures[page]
                if old_sig != signature:
                    incremental.map.signatures[page] = signature
                    leaf_deltas[page] = old_sig ^ signature
                    changed.add(page)
        # Pages beyond the previous image never reached disk at all.
        changed.update(range(old_count, incremental.map.page_count))
        sig_seconds = self.cpu.sig_time(fold.bytes_folded + fallback_bytes)
        self.disk.clock.advance(sig_seconds)
        write_seconds = 0.0
        bytes_written = 0
        for index in sorted(changed):
            page = image[index * page_bytes:(index + 1) * page_bytes]
            write_seconds += self.disk.write_page(
                volume, index, page, page_bytes
            )
            bytes_written += len(page)
        if self.use_tree:
            tree = self._trees.get(volume)
            if tree is None or fold.resized:
                self._trees[volume] = SignatureTree.from_map(
                    incremental.map, self.tree_fanout
                )
            else:
                tree.apply_leaf_deltas(leaf_deltas)
        if tracker is not None:
            tracker.reset()
        registry = get_registry()
        registry.counter("backup.passes", engine="incremental").inc()
        registry.counter("backup.pages_scanned",
                         engine="incremental").inc(len(changed))
        registry.counter("backup.pages_written",
                         engine="incremental").inc(len(changed))
        registry.counter("backup.pages_skipped", engine="incremental").inc(
            max(0, incremental.map.page_count - len(changed))
        )
        registry.counter("backup.bytes_written",
                         engine="incremental").inc(bytes_written)
        registry.counter("backup.bytes_journaled").inc(journaled_bytes)
        registry.counter("backup.incremental_fallbacks").inc(len(fallback_list))
        return BackupReport(
            volume=volume,
            pages_total=incremental.map.page_count,
            pages_written=len(changed),
            bytes_written=bytes_written,
            sig_seconds=sig_seconds,
            write_seconds=write_seconds,
        )

    def attach_heap(self, heap, journal: WriteJournal | None = None) -> WriteJournal:
        """Wire a :class:`~repro.sdds.heap.RecordHeap` into a journal.

        Registers a symbol-aligned capture listener so every heap write
        (including the zeroing done by ``free``) lands in the returned
        journal, ready for :meth:`backup_incremental`.
        """
        symbol_bytes = self.scheme.scheme_id.symbol_bytes
        if journal is None:
            journal = WriteJournal(symbol_bytes=symbol_bytes)
        elif journal.symbol_bytes != symbol_bytes:
            raise BackupError(
                f"journal is {journal.symbol_bytes}-byte aligned but the "
                f"scheme uses {symbol_bytes}-byte symbols"
            )
        heap.add_capture_listener(journal.record, align=symbol_bytes)
        return journal

    def backup_bucket(self, volume: str, bucket: Bucket,
                      index_page_bytes: int = 128) -> tuple[BackupReport, BackupReport]:
        """Back up a bucket: the record heap image plus its RAM index.

        The paper signs the B-tree index at its own small granularity
        (128 B pages) since slicing the few-KB index into bucket-sized
        pages "does not make sense".
        """
        heap_report = self.backup(volume, bucket.image)
        index_stream = b"".join(bucket.index_pages(index_page_bytes))
        index_engine = BackupEngine(
            self.scheme, self.disk, page_bytes=index_page_bytes, cpu=self.cpu,
            workers=self.workers, backend=self.backend,
        )
        index_engine._maps = self._maps  # share map storage across granularities
        index_report = index_engine.backup(f"{volume}.index", index_stream)
        return heap_report, index_report

    # ------------------------------------------------------------------
    # Restore / verification
    # ------------------------------------------------------------------

    def restore(self, volume: str, verify: bool = False) -> bytes:
        """Read the full disk copy of a volume back.

        With ``verify``, every page read from disk is re-signed and
        checked against the signature map -- silent media corruption
        ("irrecoverable disk errors", Section 2.1) surfaces as a
        :class:`~repro.errors.BackupError` instead of bad data.
        """
        if volume not in self._maps:
            raise BackupError(f"volume {volume!r} was never backed up")
        if verify:
            corrupted = self.scrub(volume)
            if corrupted:
                raise BackupError(
                    f"volume {volume!r} corrupted on disk: pages {corrupted}"
                )
        return self.disk.read_volume(volume)

    def scrub(self, volume: str,
              design: LocateDesign | None = None) -> list[int]:
        """Verify every disk page of a volume against its map entry.

        Returns the indices of corrupted pages (signature mismatch);
        an empty list certifies the disk copy with confidence 1 - 2^-nf
        per page, and with certainty against any <= n-symbol rot.

        With a ``design``, condemnation goes through the same
        d-cover-free locator as :meth:`repro.store.PageStore.scrub`:
        the per-page comparison is replaced by a
        :func:`~repro.sig.locate.decode` over ``design.group_count``
        aggregates, falling back to the flat comparison on overflow or
        when the disk copy does not cover the map exactly.
        """
        if volume not in self._maps:
            raise BackupError(f"volume {volume!r} was never backed up")
        signature_map = self._maps[volume]
        indices = [index for index in self.disk.volume_pages(volume)
                   if index < signature_map.page_count]
        # Batch-sign every disk page in one engine pass (worker-chunked
        # for large volumes) instead of a sign call per page.
        pages = [self.disk.read_page(volume, index) for index in indices]
        signatures = self._signer.sign_many(pages, strict=False)
        scanned = len(indices)
        registry = get_registry()
        corrupted: list[int] | None = None
        if design is not None and indices == list(range(
                signature_map.page_count)):
            actual_map = SignatureMap(
                self.scheme, signature_map.page_symbols,
                list(signatures), signature_map.total_symbols,
            )
            registry.counter("backup.locate.scrubs").inc()
            try:
                verdict = decode(
                    LocatorMap.from_map(design, signature_map),
                    LocatorMap.from_map(design, actual_map),
                )
            except SignatureError:
                verdict = None
            if verdict is not None and not verdict.overflowed:
                corrupted = list(verdict.pages)
            else:
                registry.counter("backup.locate.overflows").inc()
        if corrupted is None:
            corrupted = [
                index for index, signature in zip(indices, signatures)
                if signature != signature_map[index]
            ]
        registry.counter("backup.scrub_pages").inc(scanned)
        registry.counter("backup.scrub_corrupt").inc(len(corrupted))
        return corrupted

    # ------------------------------------------------------------------
    # Map persistence (cold-restart incremental backups)
    # ------------------------------------------------------------------

    def export_maps(self) -> bytes:
        """Serialize every volume's signature map.

        Stored next to the disk images, this lets a *new* engine process
        resume incremental backups: Section 2.1's point that the scheme
        is independent of any in-RAM write history.
        """
        identity = self.scheme.scheme_id.to_bytes()
        parts = [
            len(identity).to_bytes(2, "little"), identity,
            len(self._maps).to_bytes(4, "little"),
        ]
        for volume, signature_map in sorted(self._maps.items()):
            name = volume.encode()
            body = signature_map.to_bytes()
            parts.append(len(name).to_bytes(2, "little"))
            parts.append(name)
            parts.append(len(body).to_bytes(8, "little"))
            parts.append(body)
        return b"".join(parts)

    def import_maps(self, data: bytes) -> None:
        """Load maps exported by :meth:`export_maps` (replaces state)."""
        from ..sig.compound import SignatureMap
        from ..sig.signature import SchemeId

        maps: dict[str, SignatureMap] = {}
        if len(data) < 6:
            raise BackupError("truncated signature-map archive")
        identity_len = int.from_bytes(data[0:2], "little")
        offset = 2
        identity = SchemeId.from_bytes(data[offset:offset + identity_len])
        if identity != self.scheme.scheme_id:
            raise BackupError(
                "signature-map archive was written by a different scheme: "
                f"{identity} vs {self.scheme.scheme_id}"
            )
        offset += identity_len
        count = int.from_bytes(data[offset:offset + 4], "little")
        offset += 4
        for _ in range(count):
            name_len = int.from_bytes(data[offset:offset + 2], "little")
            offset += 2
            volume = data[offset:offset + name_len].decode()
            offset += name_len
            body_len = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
            body = data[offset:offset + body_len]
            if len(body) != body_len:
                raise BackupError("truncated signature-map archive body")
            offset += body_len
            maps[volume] = SignatureMap.from_bytes(body, self.scheme)
        self._maps = maps
        if self.use_tree:
            self._trees = {
                volume: SignatureTree.from_map(signature_map, self.tree_fanout)
                for volume, signature_map in maps.items()
            }

    def signature_map(self, volume: str) -> SignatureMap:
        """The stored signature map of a volume's disk copy."""
        if volume not in self._maps:
            raise BackupError(f"volume {volume!r} was never backed up")
        return self._maps[volume]


class DirtyBitBackupEngine:
    """The traditional baseline: copy pages whose dirty bit is set.

    Requires write hooks in the data structure (the retrofit the paper
    found impractical); kept for the E5 comparison -- it writes every
    *touched* page, including pages rewritten with identical bytes that
    the signature map proves unchanged.
    """

    def __init__(self, tracker: DirtyBitTracker, disk: SimDisk):
        self.tracker = tracker
        self.disk = disk

    def backup(self, volume: str, image: bytes | memoryview) -> BackupReport:
        """Write every dirty page and reset its bit."""
        image = bytes(image)
        page_bytes = self.tracker.page_bytes
        dirty = self.tracker.dirty_pages()
        write_seconds = 0.0
        bytes_written = 0
        for index in dirty:
            page = image[index * page_bytes:(index + 1) * page_bytes]
            write_seconds += self.disk.write_page(volume, index, page, page_bytes)
            bytes_written += len(page)
        self.tracker.reset(dirty)
        pages_total = (len(image) + page_bytes - 1) // page_bytes
        registry = get_registry()
        registry.counter("backup.passes", engine="dirty").inc()
        registry.counter("backup.pages_scanned", engine="dirty").inc(pages_total)
        registry.counter("backup.pages_written", engine="dirty").inc(len(dirty))
        registry.counter("backup.pages_skipped", engine="dirty").inc(
            max(0, pages_total - len(dirty))
        )
        registry.counter("backup.bytes_written",
                         engine="dirty").inc(bytes_written)
        return BackupReport(
            volume=volume,
            pages_total=pages_total,
            pages_written=len(dirty),
            bytes_written=bytes_written,
            sig_seconds=0.0,
            write_seconds=write_seconds,
        )
