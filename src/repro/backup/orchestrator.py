"""Whole-file backup: every bucket of an LH* file, plus its metadata.

Section 2.1 discusses backing up *a* bucket; an operator backs up the
*file*.  The orchestrator walks every server, backs its bucket's
canonical image up through the signature-map engine (so quiet buckets
cost nothing), and stores the LH* file state -- level, split pointer,
per-bucket levels -- so :meth:`restore_file` can rebuild a working file
from disk alone: same records, same bucket placement, same addressing
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BackupError
from ..obs import get_registry
from ..sdds.file import LHFile
from .engine import BackupEngine, BackupReport
from .eviction import deserialize_bucket, serialize_bucket

#: Volume name of the metadata blob for a file label.
_META_SUFFIX = ".meta"


@dataclass(frozen=True, slots=True)
class FileBackupReport:
    """Outcome of one whole-file backup pass."""

    label: str
    bucket_reports: tuple[BackupReport, ...]

    @property
    def pages_written(self) -> int:
        """Pages written across all buckets (0 for a quiet file)."""
        return sum(report.pages_written for report in self.bucket_reports)

    @property
    def pages_total(self) -> int:
        """Total pages across all buckets."""
        return sum(report.pages_total for report in self.bucket_reports)

    @property
    def total_seconds(self) -> float:
        """Modeled end-to-end time of the pass."""
        return sum(report.total_seconds for report in self.bucket_reports)


class FileBackupOrchestrator:
    """Backs up and restores entire LH* files through one engine."""

    def __init__(self, engine: BackupEngine):
        self.engine = engine

    # ------------------------------------------------------------------
    # Backup
    # ------------------------------------------------------------------

    def backup_file(self, file: LHFile, label: str) -> FileBackupReport:
        """Back up every bucket and the file metadata under ``label``."""
        reports = []
        for server in file.servers:
            image = serialize_bucket(server.bucket)
            reports.append(
                self.engine.backup(self._bucket_volume(label, server.server_id),
                                   image)
            )
        metadata = self._encode_metadata(file)
        self.engine.backup(label + _META_SUFFIX, metadata)
        registry = get_registry()
        registry.counter("backup.file_passes").inc()
        registry.gauge("backup.file_buckets").set(len(reports))
        return FileBackupReport(label, tuple(reports))

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def restore_file(self, label: str, capacity_records: int = 256,
                     **file_kwargs) -> LHFile:
        """Rebuild a working LH* file from the ``label`` backup.

        The restored file has the same bucket count, the same per-bucket
        record placement, and the same (level, pointer) state, so client
        addressing behaves identically to the original.
        """
        metadata = self.engine.restore(label + _META_SUFFIX)
        level, pointer, bucket_count, bucket_levels = \
            self._decode_metadata(metadata)
        file = LHFile(self.engine.scheme, capacity_records=capacity_records,
                      **file_kwargs)
        # Grow the server list without rehashing: restore places records
        # exactly where the original file held them.
        while len(file.servers) < bucket_count:
            file.servers.append(file._new_server(len(file.servers)))
        file.state.level = level
        file.state.pointer = pointer
        for server in file.servers:
            image = self.engine.restore(self._bucket_volume(label,
                                                            server.server_id))
            restored = deserialize_bucket(image, server.server_id,
                                          capacity_records=capacity_records)
            server.bucket = restored
            server.bucket.level = bucket_levels[server.server_id]
        file.check_placement()
        return file

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _bucket_volume(label: str, bucket_id: int) -> str:
        return f"{label}.bucket{bucket_id}"

    @staticmethod
    def _encode_metadata(file: LHFile) -> bytes:
        parts = [
            file.state.level.to_bytes(4, "little"),
            file.state.pointer.to_bytes(4, "little"),
            len(file.servers).to_bytes(4, "little"),
        ]
        parts += [
            server.bucket.level.to_bytes(4, "little")
            for server in file.servers
        ]
        return b"".join(parts)

    @staticmethod
    def _decode_metadata(data: bytes) -> tuple[int, int, int, list[int]]:
        if len(data) < 12:
            raise BackupError("truncated file-backup metadata")
        level = int.from_bytes(data[0:4], "little")
        pointer = int.from_bytes(data[4:8], "little")
        bucket_count = int.from_bytes(data[8:12], "little")
        if len(data) < 12 + 4 * bucket_count:
            raise BackupError("truncated file-backup bucket levels")
        bucket_levels = [
            int.from_bytes(data[12 + 4 * i:16 + 4 * i], "little")
            for i in range(bucket_count)
        ]
        return level, pointer, bucket_count, bucket_levels
