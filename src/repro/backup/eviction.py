"""RAM-pressure bucket eviction to disk (Section 6.2, [LSS02]).

"We can apply our scheme to the automatic eviction of SDDS files when
several files share an SDDS server whose RAM became insufficient for
all the files simultaneously."

:class:`EvictionManager` keeps a set of buckets under a RAM budget.
When the budget is exceeded, least-recently-used buckets are *evicted*:
their canonical serialization goes to disk through the signature-map
backup engine -- so re-evicting a bucket whose content barely changed
since its last eviction writes only the changed pages -- and the RAM
copy is dropped.  Accessing an evicted bucket restores it from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BackupError
from ..sdds.bucket import Bucket
from ..sdds.record import Record
from .engine import BackupEngine


def serialize_bucket(bucket: Bucket) -> bytes:
    """Canonical bucket image: records in key order, length-prefixed.

    Deterministic for a given record set, so unchanged buckets serialize
    to identical bytes and their page signatures match the disk map.
    """
    parts = [len(bucket).to_bytes(4, "little")]
    for record in bucket.records():
        payload = record.to_bytes()
        parts.append(len(payload).to_bytes(4, "little"))
        parts.append(payload)
    return b"".join(parts)


def deserialize_bucket(data: bytes, bucket_id: int,
                       capacity_records: int = 1 << 30) -> Bucket:
    """Rebuild a bucket from :func:`serialize_bucket` output."""
    if len(data) < 4:
        raise BackupError("truncated bucket image")
    count = int.from_bytes(data[0:4], "little")
    bucket = Bucket(bucket_id, capacity_records=capacity_records)
    offset = 4
    for _ in range(count):
        if offset + 4 > len(data):
            raise BackupError("truncated bucket image record header")
        length = int.from_bytes(data[offset:offset + 4], "little")
        offset += 4
        if offset + length > len(data):
            raise BackupError("truncated bucket image record body")
        bucket.insert(Record.from_bytes(data[offset:offset + length]))
        offset += length
    return bucket


@dataclass
class EvictionStats:
    """Eviction-manager counters."""

    evictions: int = 0
    restores: int = 0
    pages_written: int = 0      #: total backup pages actually written
    pages_skipped: int = 0      #: pages the signature map proved unchanged
    extra: dict = field(default_factory=dict)


class EvictionManager:
    """LRU bucket residency under a RAM budget, evicting via signatures."""

    def __init__(self, engine: BackupEngine, ram_budget_bytes: int):
        if ram_budget_bytes <= 0:
            raise BackupError("RAM budget must be positive")
        self.engine = engine
        self.ram_budget_bytes = ram_budget_bytes
        #: bucket_id -> Bucket for resident buckets, LRU order (oldest first).
        self._resident: dict[int, Bucket] = {}
        #: ids of buckets currently on disk only.
        self._evicted: set[int] = set()
        self.stats = EvictionStats()

    # ------------------------------------------------------------------
    # Residency management
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """RAM currently held by resident buckets (heap sizes)."""
        return sum(bucket.image_bytes for bucket in self._resident.values())

    @property
    def resident_ids(self) -> list[int]:
        """Ids of resident buckets in LRU order (oldest first)."""
        return list(self._resident)

    def add(self, bucket: Bucket) -> None:
        """Register a bucket as resident (evicts others if needed)."""
        if bucket.bucket_id in self._resident or bucket.bucket_id in self._evicted:
            raise BackupError(f"bucket {bucket.bucket_id} already managed")
        self._resident[bucket.bucket_id] = bucket
        self._enforce_budget(protect=bucket.bucket_id)

    def access(self, bucket_id: int) -> Bucket:
        """Return the bucket, restoring it from disk if evicted."""
        if bucket_id in self._resident:
            bucket = self._resident.pop(bucket_id)
            self._resident[bucket_id] = bucket  # LRU touch
            return bucket
        if bucket_id not in self._evicted:
            raise BackupError(f"bucket {bucket_id} is not managed")
        bucket = self._restore(bucket_id)
        self._resident[bucket_id] = bucket
        self._evicted.discard(bucket_id)
        self.stats.restores += 1
        self._enforce_budget(protect=bucket_id)
        return bucket

    def evict(self, bucket_id: int) -> None:
        """Explicitly evict one resident bucket to disk."""
        if bucket_id not in self._resident:
            raise BackupError(f"bucket {bucket_id} is not resident")
        bucket = self._resident.pop(bucket_id)
        report = self.engine.backup(self._volume(bucket_id),
                                    serialize_bucket(bucket))
        self.stats.evictions += 1
        self.stats.pages_written += report.pages_written
        self.stats.pages_skipped += report.pages_skipped
        self._evicted.add(bucket_id)

    def _enforce_budget(self, protect: int) -> None:
        while self.resident_bytes > self.ram_budget_bytes and len(self._resident) > 1:
            victim = next(
                (bucket_id for bucket_id in self._resident if bucket_id != protect),
                None,
            )
            if victim is None:
                break
            self.evict(victim)

    def _restore(self, bucket_id: int) -> Bucket:
        image = self.engine.restore(self._volume(bucket_id))
        return deserialize_bucket(image, bucket_id)

    def _volume(self, bucket_id: int) -> str:
        return f"evicted-bucket-{bucket_id}"
