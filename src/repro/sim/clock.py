"""Simulated clock for the SDDS multicomputer.

The paper's absolute timings (0.1 ms key search, 0.237 ms record
transfer, 300 ms/MB disk writes) are properties of 2004 hardware.  We
reproduce the *cost structure* with a simulated clock that protocol
components advance explicitly; experiments then report model time, and
the benchmark harness reports wall-clock separately for the pure
computation parts.
"""

from __future__ import annotations

import math


class SimClock:
    """A monotonically advancing simulated clock (seconds as floats)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time.

        Negative, NaN, and infinite advances are rejected: simulated
        time never rewinds, and a single bad timeout computation must
        not silently poison every later timestamp.
        """
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds} s")
        self._now += seconds
        return self._now

    def sleep_until(self, deadline: float) -> float:
        """Advance to ``deadline`` if it lies ahead; returns the new time.

        The monotonic-deadline helper event schedulers need: a deadline
        already in the past is a no-op (time never rewinds), and
        NaN/infinite deadlines are rejected rather than absorbed.
        """
        if not math.isfinite(deadline):
            raise ValueError(f"cannot sleep until t={deadline} s")
        if deadline > self._now:
            self._now = deadline
        return self._now

    def reset(self) -> None:
        """Rewind to time zero (for experiment repetition)."""
        self._now = 0.0

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f}s)"
